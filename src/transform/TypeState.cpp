//===- transform/TypeState.cpp - Type propagation for fast legality ------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "transform/TypeState.h"

#include "support/Casting.h"
#include "support/MathUtils.h"
#include "support/Printing.h"
#include "transform/Templates.h"

#include <cassert>

using namespace irlt;

//===----------------------------------------------------------------------===
// ExprTypes
//===----------------------------------------------------------------------===

ExprTypes ExprTypes::joinedWith(const ExprTypes &O) const {
  ExprTypes R = *this;
  if (!O.IsConst)
    R.IsConst = false;
  for (const auto &[Pos, T] : O.PerLoop)
    R.raise(Pos, T);
  return R;
}

ExprTypes
ExprTypes::remapped(const std::vector<std::optional<unsigned>> &Remap) const {
  ExprTypes R;
  R.IsConst = IsConst;
  for (const auto &[Pos, T] : PerLoop) {
    assert(Pos < Remap.size() && "position outside remap table");
    if (Remap[Pos])
      R.raise(*Remap[Pos], T);
  }
  return R;
}

//===----------------------------------------------------------------------===
// fromNest
//===----------------------------------------------------------------------===

NestTypeState NestTypeState::fromNest(const LoopNest &Nest) {
  NestTypeState S;
  unsigned N = Nest.numLoops();
  S.Loops.resize(N);
  for (unsigned K = 0; K < N; ++K) {
    const Loop &L = Nest.Loops[K];
    LoopTypeInfo &Info = S.Loops[K];
    Info.Kind = L.Kind;
    Info.StepConst = L.Step->constValue();
    int SSign =
        Info.StepConst ? (*Info.StepConst > 0 ? 1 : -1) : 0;

    Expr::Kind StartSplit = Expr::Kind::Call;
    Expr::Kind EndSplit = Expr::Kind::Call;
    if (SSign > 0) {
      StartSplit = Expr::Kind::Max;
      EndSplit = Expr::Kind::Min;
    } else if (SSign < 0) {
      StartSplit = Expr::Kind::Min;
      EndSplit = Expr::Kind::Max;
    }
    Info.StartComposite = L.Lower->kind() == StartSplit;
    Info.EndComposite = L.Upper->kind() == EndSplit;

    if (isCompileTimeConst(L.Lower))
      Info.LB = ExprTypes::constant();
    if (isCompileTimeConst(L.Upper))
      Info.UB = ExprTypes::constant();
    if (Info.StepConst)
      Info.Step = ExprTypes::constant();
    for (unsigned I = 0; I < K; ++I) {
      const std::string &Xi = Nest.Loops[I].IndexVar;
      Info.LB.raise(I, typeOfBound(L.Lower, Xi, BoundSide::Lower, SSign));
      Info.UB.raise(I, typeOfBound(L.Upper, Xi, BoundSide::Upper, SSign));
      Info.Step.raise(I, typeOf(L.Step, Xi));
    }
  }
  return S;
}

//===----------------------------------------------------------------------===
// Per-template type rules
//===----------------------------------------------------------------------===

namespace {

using MaybeState = std::optional<ErrorOr<NestTypeState>>;

ErrorOr<NestTypeState> fail(std::string Msg) {
  return ErrorOr<NestTypeState>(Failure(std::move(Msg)));
}

ErrorOr<NestTypeState> mapReversePermute(const ReversePermuteTemplate &T,
                                         const NestTypeState &S) {
  unsigned N = S.numLoops();
  if (N != T.inputSize())
    return fail(formatStr("ReversePermute: state has %u loops, template "
                          "expects %u",
                          N, T.inputSize()));
  // Preconditions: reordered pairs must be invariant.
  for (unsigned K = 0; K < N; ++K)
    for (unsigned I = 0; I < K; ++I) {
      if (T.perm()[I] < T.perm()[K])
        continue;
      for (const ExprTypes *E :
           {&S.Loops[K].LB, &S.Loops[K].UB, &S.Loops[K].Step})
        if (!typeLE(E->wrt(I), BoundType::Invar))
          return fail(formatStr(
              "ReversePermute: loops %u and %u are reordered but a bound of "
              "loop %u is %s in the loop-%u variable",
              I + 1, K + 1, K + 1, typeName(E->wrt(I)), I + 1));
    }

  std::vector<std::optional<unsigned>> Remap(N);
  for (unsigned K = 0; K < N; ++K)
    Remap[K] = T.perm()[K];

  NestTypeState Out;
  Out.Loops.resize(N);
  for (unsigned K = 0; K < N; ++K) {
    const LoopTypeInfo &In = S.Loops[K];
    LoopTypeInfo &O = Out.Loops[T.perm()[K]];
    O.Kind = In.Kind;
    if (!T.rev()[K]) {
      O.LB = In.LB.remapped(Remap);
      O.UB = In.UB.remapped(Remap);
      O.Step = In.Step.remapped(Remap);
      O.StepConst = In.StepConst;
      O.StartComposite = In.StartComposite;
      O.EndComposite = In.EndComposite;
      continue;
    }
    // Reversal: unit steps swap the bounds exactly; otherwise the new
    // start is l + floor((u-l)/s)*s, whose linear dependences degrade to
    // nonlinear under the flooring division.
    bool UnitStep = In.StepConst && (*In.StepConst == 1 || *In.StepConst == -1);
    if (UnitStep) {
      O.LB = In.UB.remapped(Remap);
      // The old end bound becomes the new start: a min/max list there
      // survives the swap as a composite start.
      O.StartComposite = In.EndComposite;
    } else {
      ExprTypes J = In.LB.joinedWith(In.UB).joinedWith(In.Step);
      ExprTypes Degraded = ExprTypes::invariant();
      if (J.isConst())
        Degraded = ExprTypes::constant();
      for (unsigned I = 0; I < N; ++I) {
        BoundType W = J.wrt(I);
        if (typeLE(W, BoundType::Invar))
          continue;
        Degraded.raise(I, BoundType::Nonlinear);
      }
      O.LB = Degraded.remapped(Remap);
      O.StartComposite = false; // l + floor((u-l)/s)*s is a single term
    }
    O.UB = In.LB.remapped(Remap);
    O.Step = In.Step.remapped(Remap);
    O.StepConst = In.StepConst
                      ? std::optional<int64_t>(negChecked(*In.StepConst))
                      : std::nullopt;
    O.EndComposite = In.StartComposite; // old start becomes the new end
  }
  return Out;
}

ErrorOr<NestTypeState> mapUnimodular(const UnimodularTemplate &T,
                                     const NestTypeState &S) {
  unsigned N = S.numLoops();
  if (N != T.inputSize())
    return fail(formatStr("Unimodular: state has %u loops, template "
                          "expects %u",
                          N, T.inputSize()));
  bool AllConst = true;
  for (unsigned K = 0; K < N; ++K) {
    const LoopTypeInfo &In = S.Loops[K];
    if (In.Kind != LoopKind::Do)
      return fail(formatStr("Unimodular: loop %u is parallel", K + 1));
    if (!In.StepConst || *In.StepConst == 0)
      return fail(formatStr(
          "Unimodular: step of loop %u is not a non-zero constant", K + 1));
    if (*In.StepConst != 1 && In.StartComposite)
      return fail(formatStr(
          "Unimodular: loop %u has a non-unit step with a composite start "
          "bound",
          K + 1));
    for (unsigned I = 0; I < K; ++I) {
      if (!typeLE(In.LB.wrt(I), BoundType::Linear))
        return fail(formatStr("Unimodular: type(l_%u, x_%u) = %s exceeds "
                              "linear",
                              K + 1, I + 1, typeName(In.LB.wrt(I))));
      if (!typeLE(In.UB.wrt(I), BoundType::Linear))
        return fail(formatStr("Unimodular: type(u_%u, x_%u) = %s exceeds "
                              "linear",
                              K + 1, I + 1, typeName(In.UB.wrt(I))));
    }
    AllConst &= In.LB.isConst() && In.UB.isConst();
  }

  // Which output variables can each generated bound reference? Mirror the
  // Fourier-Motzkin pipeline on *variable masks*: every input inequality
  // touches its own loop variable plus the variables its bound is linear
  // in; the basis change x = Minv y rewrites masks; eliminating y_k fuses
  // mask pairs that share it. The per-mask Sym flag tracks non-constant
  // invariant parts.
  struct Mask {
    std::vector<bool> Vars;
    bool HasSym;
    /// Some coefficient of this (abstract) inequality may have magnitude
    /// > 1. When such a row bounds a variable, the generated bound
    /// divides by the coefficient - a flooring division that degrades
    /// every variable reference to nonlinear.
    bool NonUnit;
    bool operator==(const Mask &O) const {
      return Vars == O.Vars && HasSym == O.HasSym && NonUnit == O.NonUnit;
    }
  };
  UnimodularMatrix Minv = T.matrix().inverse();
  std::vector<Mask> Masks;
  constexpr size_t MaskCap = 512; // blow-up guard; fall back when exceeded
  bool Overflow = false;
  // Resolution closure: apply() normalizes every loop whose step is not
  // the constant 1 to a 0-based counter xh_i with x_i = l_i + s_i*xh_i,
  // and *resolves* references to x_i in later bounds through that
  // substitution. A reference to x_i therefore pulls in l_i's own
  // (recursively resolved) references and symbols. Precompute, per loop,
  // the variable set and symbol flag a reference to it expands to.
  std::vector<std::vector<bool>> RRefs(N, std::vector<bool>(N, false));
  std::vector<bool> RSym(N, false);
  for (unsigned I = 0; I < N; ++I) {
    RRefs[I][I] = true;
    bool NormI = !S.Loops[I].StepConst || *S.Loops[I].StepConst != 1;
    if (!NormI)
      continue;
    RSym[I] = !S.Loops[I].LB.isConst();
    for (unsigned H = 0; H < I; ++H)
      if (S.Loops[I].LB.wrt(H) == BoundType::Linear) {
        for (unsigned G = 0; G <= H; ++G)
          RRefs[I][G] = RRefs[I][G] || RRefs[H][G];
        RSym[I] = RSym[I] || RSym[H];
      }
  }

  for (unsigned K = 0; K < N && !Overflow; ++K) {
    const LoopTypeInfo &In = S.Loops[K];
    // Non-unit-step loops are normalized by apply() to a 0-based counter
    // xh_k with x_k = l_k + s_k*xh_k, so the rows entering FM are
    //   xh_k >= 0                      (constant lower row)
    //   s_k * xh_k <= u_k - l_k        (end row: u's AND l's references,
    //                                   coefficient s_k)
    // StepConst == -1 is normalized too, but with a unit coefficient.
    bool Normalized = !In.StepConst || *In.StepConst != 1;
    bool StepDivides =
        In.StepConst && *In.StepConst != 1 && *In.StepConst != -1;
    for (const ExprTypes *E : {&In.LB, &In.UB}) {
      bool IsLBRow = E == &In.LB;
      Mask M;
      M.Vars.assign(N, false);
      M.HasSym = false;
      // x-space involvement: own variable + resolved linear references.
      std::vector<bool> XVars(N, false);
      XVars[K] = true;
      bool AnyLinearRef = false;
      auto foldRefs = [&](const ExprTypes &Src) {
        for (unsigned I = 0; I < K; ++I)
          if (Src.wrt(I) == BoundType::Linear) {
            for (unsigned G = 0; G <= I; ++G)
              if (RRefs[I][G])
                XVars[G] = true;
            M.HasSym = M.HasSym || RSym[I];
            AnyLinearRef = true;
          }
      };
      if (Normalized && IsLBRow) {
        // Lower row of a normalized loop: xh_k >= 0, nothing else.
      } else if (Normalized) {
        // End row of a normalized loop: references from both original
        // bounds, and the step coefficient divides on elimination.
        M.HasSym = !In.UB.isConst() || !In.LB.isConst();
        foldRefs(In.UB);
        foldRefs(In.LB);
        if (StepDivides)
          AnyLinearRef = true; // forces NonUnit below
      } else {
        M.HasSym = !E->isConst();
        foldRefs(*E);
      }
      // y-space: x_r = sum Minv[r][c] y_c. Coefficient magnitudes are
      // exact only when the row involves just its own variable (then the
      // y-coefficients are the Minv entries); a linear reference has an
      // unknown coefficient, so the row may be non-unit.
      M.NonUnit = AnyLinearRef;
      for (unsigned R = 0; R < N; ++R)
        if (XVars[R])
          for (unsigned C = 0; C < N; ++C)
            if (Minv.at(R, C) != 0) {
              M.Vars[C] = true;
              if (Minv.at(R, C) != 1 && Minv.at(R, C) != -1)
                M.NonUnit = true;
            }
      Masks.push_back(std::move(M));
    }
  }

  NestTypeState Out;
  Out.Loops.resize(N);
  for (unsigned K = N; K-- > 0;) {
    // Bounds of y_k come from the masks still mentioning it.
    std::vector<bool> Refs(N, false);
    bool RefSym = false;
    bool Any = false;
    bool AnyNonUnit = false;
    unsigned TouchCount = 0;
    for (const Mask &M : Masks) {
      if (!M.Vars[K])
        continue;
      Any = true;
      ++TouchCount;
      RefSym |= M.HasSym;
      AnyNonUnit |= M.NonUnit;
      for (unsigned I = 0; I < K; ++I)
        if (M.Vars[I])
          Refs[I] = true;
    }
    LoopTypeInfo &O = Out.Loops[K];
    O.Kind = LoopKind::Do;
    O.StepConst = 1;
    O.Step = ExprTypes::constant();
    (void)AllConst;
    ExprTypes B =
        (!RefSym && Any) ? ExprTypes::constant() : ExprTypes::invariant();
    bool AnyRef = false;
    // A non-unit row bounds y_k through a flooring division, which
    // degrades every variable reference in the generated bound beyond
    // linear (the fast path found accepting such bounds as linear while
    // the materialized nest classifies them nonlinear).
    BoundType RefType = AnyNonUnit ? BoundType::Nonlinear : BoundType::Linear;
    for (unsigned I = 0; I < K; ++I)
      if (Refs[I]) {
        B.raise(I, RefType);
        AnyRef = true;
      }
    if (Overflow || !Any) {
      // Blow-up guard (or a one-sided system the real FM would reject):
      // fall back to the coarse blanket rule.
      B = ExprTypes::invariant();
      for (unsigned I = 0; I < K; ++I)
        B.raise(I, BoundType::Nonlinear);
      AnyRef = K > 0;
    }
    O.LB = B;
    O.UB = B;
    // With exactly two constraints touching y_k (one lower, one upper in
    // any bounded system), the generated bounds are single terms; more
    // constraints may form max/min lists on either side.
    O.StartComposite = Overflow || !Any || TouchCount > 2;
    O.EndComposite = O.StartComposite;
    (void)AnyRef;
    // Eliminate y_k: fuse mask pairs sharing it.
    std::vector<Mask> Next;
    std::vector<Mask> WithK;
    for (Mask &M : Masks) {
      if (M.Vars[K])
        WithK.push_back(std::move(M));
      else
        Next.push_back(std::move(M));
    }
    for (size_t A = 0; A < WithK.size() && !Overflow; ++A)
      for (size_t Bb = A + 1; Bb < WithK.size(); ++Bb) {
        Mask F;
        F.Vars.assign(N, false);
        bool NonEmpty = false;
        bool Shared = false;
        for (unsigned I = 0; I < N; ++I) {
          F.Vars[I] = (WithK[A].Vars[I] || WithK[Bb].Vars[I]) && I != K;
          NonEmpty |= F.Vars[I];
          Shared |= I != K && WithK[A].Vars[I] && WithK[Bb].Vars[I];
        }
        F.HasSym = WithK[A].HasSym || WithK[Bb].HasSym;
        // Fusing two unit rows that share a surviving variable can sum
        // its coefficients to +-2; fusing anything non-unit stays
        // non-unit (the multipliers are the eliminated coefficients).
        F.NonUnit = WithK[A].NonUnit || WithK[Bb].NonUnit || Shared;
        if (!NonEmpty)
          continue;
        bool Dup = false;
        for (const Mask &Seen : Next)
          if (Seen == F) {
            Dup = true;
            break;
          }
        if (!Dup)
          Next.push_back(std::move(F));
        if (Next.size() > MaskCap) {
          Overflow = true;
          break;
        }
      }
    Masks = std::move(Next);
  }
  return Out;
}

ErrorOr<NestTypeState> mapParallelize(const ParallelizeTemplate &T,
                                      const NestTypeState &S) {
  if (S.numLoops() != T.inputSize())
    return fail(formatStr("Parallelize: state has %u loops, template "
                          "expects %u",
                          S.numLoops(), T.inputSize()));
  NestTypeState Out = S;
  for (unsigned K = 0; K < Out.numLoops(); ++K)
    if (T.parFlag()[K])
      Out.Loops[K].Kind = LoopKind::ParDo;
  return Out;
}

/// The [lo..hi] -> block/element position remaps shared by Block and
/// Interleave: outer vars keep their position; range vars move to the
/// element positions; trailing vars shift by the span.
std::vector<std::optional<unsigned>> elementRemap(unsigned N, unsigned Lo,
                                                  unsigned Hi) {
  unsigned Span = Hi - Lo + 1;
  std::vector<std::optional<unsigned>> Remap(N);
  for (unsigned P = 0; P < N; ++P) {
    if (P < Lo)
      Remap[P] = P;
    else if (P <= Hi)
      Remap[P] = Hi + 1 + (P - Lo);
    else
      Remap[P] = P + Span;
  }
  return Remap;
}

ErrorOr<NestTypeState> mapBlock(const BlockTemplate &T,
                                const NestTypeState &S) {
  unsigned N = S.numLoops();
  if (N != T.inputSize())
    return fail(formatStr("Block: state has %u loops, template expects %u", N,
                          T.inputSize()));
  unsigned Lo = T.rangeBegin() - 1, Hi = T.rangeEnd() - 1;
  for (unsigned K = Lo; K <= Hi; ++K) {
    const LoopTypeInfo &In = S.Loops[K];
    if (!In.StepConst || *In.StepConst == 0)
      return fail(formatStr(
          "Block: step of loop %u is not a non-zero constant", K + 1));
    if (*In.StepConst != 1 && *In.StepConst != -1)
      for (unsigned H = Lo; H < K; ++H)
        if (!typeLE(In.LB.wrt(H), BoundType::Invar))
          return fail(formatStr(
              "Block: loop %u has a non-unit stride and a start bound "
              "varying in blocked variable at position %u",
              K + 1, H + 1));
    for (unsigned H = Lo; H < K; ++H) {
      if (!typeLE(In.LB.wrt(H), BoundType::Linear) ||
          !typeLE(In.UB.wrt(H), BoundType::Linear))
        return fail(formatStr("Block: bounds of loop %u exceed linear in "
                              "blocked variable at position %u",
                              K + 1, H + 1));
      if (!typeLE(In.Step.wrt(H), BoundType::Const))
        return fail(formatStr("Block: step of loop %u exceeds const in "
                              "blocked variable at position %u",
                              K + 1, H + 1));
    }
  }

  unsigned Span = Hi - Lo + 1;
  bool BsizeConst = true;
  for (const ExprRef &B : T.bsize())
    BsizeConst &= isCompileTimeConst(B);

  std::vector<std::optional<unsigned>> RemapElem = elementRemap(N, Lo, Hi);
  // Block rows see the substituted range variables at the *block*
  // positions, which coincide with the original positions.
  std::vector<std::optional<unsigned>> RemapBlockRow(N);
  for (unsigned P = 0; P < N; ++P)
    RemapBlockRow[P] = P <= Hi ? std::optional<unsigned>(P)
                               : std::optional<unsigned>(P + Span);

  NestTypeState Out;
  Out.Loops.resize(N + Span);
  for (unsigned K = 0; K < Lo; ++K) {
    const LoopTypeInfo &In = S.Loops[K];
    LoopTypeInfo &O = Out.Loops[K];
    O = In;
    O.LB = In.LB.remapped(RemapElem);
    O.UB = In.UB.remapped(RemapElem);
    O.Step = In.Step.remapped(RemapElem);
  }
  for (unsigned K = Lo; K <= Hi; ++K) {
    const LoopTypeInfo &In = S.Loops[K];
    // Block loop at position K.
    LoopTypeInfo &B = Out.Loops[K];
    B.Kind = In.Kind;
    B.LB = In.LB.remapped(RemapBlockRow);
    B.UB = In.UB.remapped(RemapBlockRow);
    if (!BsizeConst) {
      B.LB.clearConst();
      B.UB.clearConst();
    }
    B.StartComposite = In.StartComposite;
    B.EndComposite = In.EndComposite;
    std::optional<int64_t> BV = T.bsize()[K - Lo]->constValue();
    if (In.StepConst && BV) {
      B.StepConst = *In.StepConst * *BV;
      B.Step = ExprTypes::constant();
    } else {
      B.StepConst = std::nullopt;
      B.Step = ExprTypes::invariant();
    }
    // Element loop at position Hi + 1 + (K - Lo): clamped to its block.
    LoopTypeInfo &E = Out.Loops[Hi + 1 + (K - Lo)];
    E.Kind = In.Kind;
    E.LB = In.LB.remapped(RemapElem);
    E.LB.raise(K, BoundType::Linear); // max(x''_k, l_k)
    E.LB.clearConst();
    E.UB = In.UB.remapped(RemapElem);
    E.UB.raise(K, BoundType::Linear);
    E.UB.clearConst();
    E.Step = In.Step.remapped(RemapElem);
    E.StepConst = In.StepConst;
    E.StartComposite = true; // the clamp is a max/min list
    E.EndComposite = true;
  }
  for (unsigned K = Hi + 1; K < N; ++K) {
    const LoopTypeInfo &In = S.Loops[K];
    LoopTypeInfo &O = Out.Loops[K + Span];
    O = In;
    O.LB = In.LB.remapped(RemapElem);
    O.UB = In.UB.remapped(RemapElem);
    O.Step = In.Step.remapped(RemapElem);
  }
  return Out;
}

ErrorOr<NestTypeState> mapCoalesce(const CoalesceTemplate &T,
                                   const NestTypeState &S) {
  unsigned N = S.numLoops();
  if (N != T.inputSize())
    return fail(formatStr("Coalesce: state has %u loops, template expects %u",
                          N, T.inputSize()));
  unsigned Lo = T.rangeBegin() - 1, Hi = T.rangeEnd() - 1;
  for (unsigned K = Lo; K <= Hi; ++K)
    for (unsigned Mm = K + 1; Mm <= Hi; ++Mm)
      for (const ExprTypes *E :
           {&S.Loops[Mm].LB, &S.Loops[Mm].UB, &S.Loops[Mm].Step})
        if (!typeLE(E->wrt(K), BoundType::Invar))
          return fail(formatStr("Coalesce: a bound of loop %u is %s in the "
                                "coalesced variable at position %u",
                                Mm + 1, typeName(E->wrt(K)), K + 1));

  unsigned Span = Hi - Lo + 1;
  std::vector<std::optional<unsigned>> Remap(N);
  for (unsigned P = 0; P < N; ++P) {
    if (P < Lo)
      Remap[P] = P;
    else if (P <= Hi)
      Remap[P] = std::nullopt; // substituted by recovery expressions
    else
      Remap[P] = P - (Span - 1);
  }

  NestTypeState Out;
  Out.Loops.resize(N - (Span - 1));
  for (unsigned K = 0; K < Lo; ++K) {
    Out.Loops[K] = S.Loops[K];
    Out.Loops[K].LB = S.Loops[K].LB.remapped(Remap);
    Out.Loops[K].UB = S.Loops[K].UB.remapped(Remap);
    Out.Loops[K].Step = S.Loops[K].Step.remapped(Remap);
  }

  // The coalesced loop. Its upper bound is the product of the band's trip
  // counts N_k = (u_k - l_k)/s_k + 1:
  //  - a unit step keeps the count as linear as its bounds; other steps
  //    floor-divide (nonlinear in anything the bounds vary with);
  //  - the product is linear in v only while at most one factor varies
  //    with v and every other factor is a compile-time constant.
  LoopTypeInfo &C = Out.Loops[Lo];
  C.Kind = LoopKind::ParDo;
  bool AllConst = true;
  std::vector<ExprTypes> CountTypes;
  std::vector<bool> CountConst;
  for (unsigned K = Lo; K <= Hi; ++K) {
    const LoopTypeInfo &In = S.Loops[K];
    if (In.Kind != LoopKind::ParDo)
      C.Kind = LoopKind::Do;
    bool UnitStep =
        In.StepConst && (*In.StepConst == 1 || *In.StepConst == -1);
    ExprTypes CT = In.LB.joinedWith(In.UB).joinedWith(In.Step);
    if (!UnitStep) {
      // Flooring division degrades every varying position to nonlinear.
      ExprTypes D2 = CT.isConst() ? ExprTypes::constant()
                                  : ExprTypes::invariant();
      for (unsigned V = 0; V < N; ++V)
        if (!typeLE(CT.wrt(V), BoundType::Invar))
          D2.raise(V, BoundType::Nonlinear);
      CT = D2;
    }
    bool IsC = CT.isConst();
    AllConst &= IsC;
    CountConst.push_back(IsC);
    CountTypes.push_back(std::move(CT));
  }
  ExprTypes UB = AllConst ? ExprTypes::constant() : ExprTypes::invariant();
  for (unsigned V = 0; V < Lo; ++V) {
    // Factors varying with v, and whether all *other* factors are const.
    unsigned Varying = 0;
    BoundType VType = BoundType::Const;
    bool OthersConst = true;
    for (size_t F = 0; F < CountTypes.size(); ++F) {
      BoundType W = CountTypes[F].wrt(V);
      if (!typeLE(W, BoundType::Invar)) {
        ++Varying;
        VType = typeJoin(VType, W);
      } else if (!CountConst[F]) {
        OthersConst = false;
      }
    }
    if (Varying == 0)
      continue;
    if (Varying == 1 && OthersConst)
      UB.raise(V, VType);
    else
      UB.raise(V, BoundType::Nonlinear);
  }
  C.LB = ExprTypes::constant();
  C.UB = UB.remapped(Remap);
  C.Step = ExprTypes::constant();
  C.StepConst = 1;
  C.StartComposite = false;
  C.EndComposite = false; // the trip-count product is a single term

  // Trailing loops: references to coalesced variables become div/mod of
  // the new variable - except for a single-loop band with a constant
  // step, whose recovery x = l + (c - 1)*s is affine (codegen simplifies
  // it), so linear references stay linear (and inherit l's own
  // dependences).
  bool AffineRecovery = Span == 1 && S.Loops[Lo].StepConst.has_value();
  const ExprTypes &BandLB = S.Loops[Lo].LB;
  for (unsigned K = Hi + 1; K < N; ++K) {
    const LoopTypeInfo &In = S.Loops[K];
    LoopTypeInfo &O = Out.Loops[K - (Span - 1)];
    O = In;
    auto degrade = [&](const ExprTypes &E) {
      ExprTypes R = E.remapped(Remap);
      for (unsigned P = Lo; P <= Hi; ++P) {
        BoundType RT = E.wrt(P);
        if (typeLE(RT, BoundType::Invar))
          continue;
        R.clearConst();
        if (AffineRecovery && RT == BoundType::Linear) {
          R.raise(Lo, BoundType::Linear);
          for (unsigned V = 0; V < Lo; ++V) {
            BoundType LV = BandLB.wrt(V);
            if (!typeLE(LV, BoundType::Invar))
              R.raise(V, LV);
          }
        } else {
          R.raise(Lo, BoundType::Nonlinear);
        }
      }
      return R;
    };
    O.LB = degrade(In.LB);
    O.UB = degrade(In.UB);
    O.Step = degrade(In.Step);
  }
  return Out;
}

ErrorOr<NestTypeState> mapInterleave(const InterleaveTemplate &T,
                                     const NestTypeState &S) {
  unsigned N = S.numLoops();
  if (N != T.inputSize())
    return fail(formatStr("Interleave: state has %u loops, template "
                          "expects %u",
                          N, T.inputSize()));
  unsigned Lo = T.rangeBegin() - 1, Hi = T.rangeEnd() - 1;
  for (unsigned K = Lo; K <= Hi; ++K)
    for (unsigned Mm = K + 1; Mm <= Hi; ++Mm) {
      const LoopTypeInfo &In = S.Loops[Mm];
      if (!typeLE(In.LB.wrt(K), BoundType::Linear) ||
          !typeLE(In.UB.wrt(K), BoundType::Linear))
        return fail(formatStr("Interleave: bounds of loop %u exceed linear "
                              "in variable at position %u",
                              Mm + 1, K + 1));
      if (!typeLE(In.Step.wrt(K), BoundType::Const))
        return fail(formatStr("Interleave: step of loop %u exceeds const in "
                              "variable at position %u",
                              Mm + 1, K + 1));
    }

  unsigned Span = Hi - Lo + 1;
  bool IsizeConst = true;
  for (const ExprRef &I : T.isize())
    IsizeConst &= isCompileTimeConst(I);

  std::vector<std::optional<unsigned>> RemapElem = elementRemap(N, Lo, Hi);

  NestTypeState Out;
  Out.Loops.resize(N + Span);
  for (unsigned K = 0; K < Lo; ++K) {
    Out.Loops[K] = S.Loops[K];
    Out.Loops[K].LB = S.Loops[K].LB.remapped(RemapElem);
    Out.Loops[K].UB = S.Loops[K].UB.remapped(RemapElem);
    Out.Loops[K].Step = S.Loops[K].Step.remapped(RemapElem);
  }
  for (unsigned K = Lo; K <= Hi; ++K) {
    const LoopTypeInfo &In = S.Loops[K];
    // Phase loop at position K: 0 .. isize-1 step 1.
    LoopTypeInfo &P = Out.Loops[K];
    P.Kind = In.Kind;
    P.LB = ExprTypes::constant();
    P.UB = IsizeConst ? ExprTypes::constant() : ExprTypes::invariant();
    P.Step = ExprTypes::constant();
    P.StepConst = 1;
    // Element loop: l_k + x'_k * s_k .. u_k step isize*s_k.
    LoopTypeInfo &E = Out.Loops[Hi + 1 + (K - Lo)];
    E.Kind = In.Kind;
    E.LB = In.LB.remapped(RemapElem).joinedWith(In.Step.remapped(RemapElem));
    E.LB.raise(K, BoundType::Linear); // the phase variable
    E.LB.clearConst();
    E.UB = In.UB.remapped(RemapElem);
    E.Step = In.Step.remapped(RemapElem);
    std::optional<int64_t> IV = T.isize()[K - Lo]->constValue();
    if (In.StepConst && IV) {
      E.StepConst = *In.StepConst * *IV;
    } else {
      E.StepConst = std::nullopt;
      E.Step.clearConst();
    }
    E.StartComposite = false;
    E.EndComposite = In.EndComposite; // the end bound is carried over
  }
  for (unsigned K = Hi + 1; K < N; ++K) {
    const LoopTypeInfo &In = S.Loops[K];
    LoopTypeInfo &O = Out.Loops[K + Span];
    O = In;
    O.LB = In.LB.remapped(RemapElem);
    O.UB = In.UB.remapped(RemapElem);
    O.Step = In.Step.remapped(RemapElem);
  }
  return Out;
}

} // namespace

std::string irlt::checkAnchorDependence(const TransformTemplate &T,
                                        const NestTypeState &State,
                                        const DepSet &D) {
  // Which loops' anchor expressions matter, and which expressions.
  unsigned Lo = 0, Hi = 0;
  bool CheckUB = false, CheckStep = false;
  switch (T.kind()) {
  case TransformTemplate::Kind::Block: {
    const auto &B = cast<BlockTemplate>(T);
    Lo = B.rangeBegin() - 1;
    Hi = B.rangeEnd() - 1;
    CheckStep = true;
    break;
  }
  case TransformTemplate::Kind::Interleave: {
    const auto &I = cast<InterleaveTemplate>(T);
    Lo = I.rangeBegin() - 1;
    Hi = I.rangeEnd() - 1;
    CheckStep = true;
    break;
  }
  case TransformTemplate::Kind::Coalesce: {
    const auto &C = cast<CoalesceTemplate>(T);
    Lo = C.rangeBegin() - 1;
    Hi = C.rangeEnd() - 1;
    CheckUB = true; // the radix (trip counts) uses l, u, and s
    CheckStep = true;
    break;
  }
  case TransformTemplate::Kind::Custom: {
    if (const auto *SM = dyn_cast<StripMineTemplate>(&T)) {
      Lo = Hi = SM->position() - 1;
      break;
    }
    return std::string(); // unknown extension: nothing to check here
  }
  default:
    return std::string(); // value-space maps have no anchors
  }

  if (State.numLoops() != T.inputSize() || D.empty())
    return std::string();

  // Position h can carry a dependence unless every vector is exactly 0
  // there.
  auto mayCarry = [&D](unsigned H) {
    for (const DepVector &V : D.vectors()) {
      const DepElem &E = V[H];
      if (!(E.isDistance() && E.dist() == 0))
        return true;
    }
    return false;
  };

  for (unsigned K = Lo; K <= Hi && K < State.numLoops(); ++K) {
    const LoopTypeInfo &In = State.Loops[K];
    for (unsigned H = 0; H < K; ++H) {
      bool Varies = !typeLE(In.LB.wrt(H), BoundType::Invar);
      if (CheckUB)
        Varies |= !typeLE(In.UB.wrt(H), BoundType::Invar);
      if (CheckStep)
        Varies |= !typeLE(In.Step.wrt(H), BoundType::Invar);
      if (!Varies || !mayCarry(H))
        continue;
      return formatStr(
          "%s: the anchor bound of loop %u varies with the loop at "
          "position %u, which carries a dependence - the Table 2 mapping "
          "rule would under-cover the transformed dependences",
          T.name().c_str(), K + 1, H + 1);
    }
  }
  return std::string();
}

MaybeState irlt::mapTypes(const TransformTemplate &T,
                          const NestTypeState &State) {
  switch (T.kind()) {
  case TransformTemplate::Kind::ReversePermute:
    return mapReversePermute(cast<ReversePermuteTemplate>(T), State);
  case TransformTemplate::Kind::Unimodular:
    return mapUnimodular(cast<UnimodularTemplate>(T), State);
  case TransformTemplate::Kind::Parallelize:
    return mapParallelize(cast<ParallelizeTemplate>(T), State);
  case TransformTemplate::Kind::Block:
    return mapBlock(cast<BlockTemplate>(T), State);
  case TransformTemplate::Kind::Coalesce:
    return mapCoalesce(cast<CoalesceTemplate>(T), State);
  case TransformTemplate::Kind::Interleave:
    return mapInterleave(cast<InterleaveTemplate>(T), State);
  case TransformTemplate::Kind::Custom:
    return std::nullopt; // extension templates: no type rule
  }
  return std::nullopt;
}

// isLegalFast() is defined in src/legality/IncrementalEngine.cpp as a
// shim over the prefix-memoized engine; the legacy walk (anchor-first
// order, lazy Applied/AppliedThrough materialization) lives there
// verbatim as IncrementalEngine::reference(Mode::Fast).
