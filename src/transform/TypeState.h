//===- transform/TypeState.h - Type propagation for fast legality --------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4.3's efficiency device: "when testing for legality, we do not
/// actually generate the new loop bounds expressions and initialization
/// statements for each t_i in the sequence T; instead, we use a
/// matrix-based representation to carry sufficient information to
/// evaluate the type predicates in the preconditions."
///
/// NestTypeState is that sufficient information: per loop, the
/// const/invar/linear/nonlinear classification of its lower, upper, and
/// step expressions with respect to every index-variable position, plus
/// the step's constancy/sign and the loop kind. Each kernel template has
/// a *type mapping rule* that produces the output state from the input
/// state (conservatively: the predicted type is an upper bound of the
/// generated expression's true type, which the test suite checks against
/// full code generation).
///
/// isLegalFast() runs the uniform legality test on type states alone,
/// falling back to full bounds mapping only for extension templates
/// without a type rule.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_TRANSFORM_TYPESTATE_H
#define IRLT_TRANSFORM_TYPESTATE_H

#include "bounds/TypeLattice.h"
#include "transform/Sequence.h"

#include <map>
#include <optional>
#include <vector>

namespace irlt {

/// Type summary of one bound/step expression relative to the nest's
/// index-variable *positions* (0-based, outermost = 0).
class ExprTypes {
public:
  /// A compile-time constant expression.
  static ExprTypes constant() {
    ExprTypes T;
    T.IsConst = true;
    return T;
  }
  /// Invariant in every index variable, but not a constant.
  static ExprTypes invariant() { return ExprTypes(); }

  bool isConst() const { return IsConst; }

  /// Classification with respect to the variable at \p Pos.
  BoundType wrt(unsigned Pos) const {
    auto It = PerLoop.find(Pos);
    if (It != PerLoop.end())
      return It->second;
    return IsConst ? BoundType::Const : BoundType::Invar;
  }

  /// Raises the classification at \p Pos to at least \p T.
  void raise(unsigned Pos, BoundType T) {
    if (T == BoundType::Const || T == BoundType::Invar)
      return; // defaults cover these
    BoundType &Slot = PerLoop[Pos];
    Slot = typeJoin(Slot, T);
    IsConst = false;
  }

  void clearConst() { IsConst = false; }

  /// Pointwise join (used when an output bound combines several input
  /// expressions).
  ExprTypes joinedWith(const ExprTypes &O) const;

  /// Repositions every per-variable entry through \p Remap (entries whose
  /// position maps to nullopt are dropped - their variable disappeared,
  /// i.e. was substituted by something accounted for separately).
  ExprTypes
  remapped(const std::vector<std::optional<unsigned>> &Remap) const;

private:
  bool IsConst = false;
  std::map<unsigned, BoundType> PerLoop;
};

/// Per-loop summary.
struct LoopTypeInfo {
  ExprTypes LB, UB, Step;
  LoopKind Kind = LoopKind::Do;
  /// Step constant value when compile-time constant.
  std::optional<int64_t> StepConst;
  /// True when the start bound is a splittable max/min list (affects the
  /// Unimodular normalization precondition).
  bool StartComposite = false;
  /// Same for the end bound; a reversal turns the end into the start, so
  /// compositeness must be tracked on both sides.
  bool EndComposite = false;
};

/// The whole nest's type state.
struct NestTypeState {
  std::vector<LoopTypeInfo> Loops;

  unsigned numLoops() const { return static_cast<unsigned>(Loops.size()); }

  /// Builds the state of a concrete nest (the entry point of the fast
  /// path; transformed states come from mapTypes).
  static NestTypeState fromNest(const LoopNest &Nest);
};

/// Propagates \p State through template \p T, checking T's loop-bounds
/// preconditions against the state. \returns the output state, a failure
/// with the precondition diagnostic, or nullopt when \p T has no type
/// rule (extension templates) - callers fall back to full bounds mapping.
std::optional<ErrorOr<NestTypeState>> mapTypes(const TransformTemplate &T,
                                               const NestTypeState &State);

/// The anchor-dependence side condition that keeps the Table 2 mapping
/// rules consistent (Definition 3.4). Block/Interleave/StripMine anchor
/// their block grids / phase classes at the start bounds of the affected
/// loops, and Coalesce's linearization radix is its band's trip counts;
/// when such an anchor expression varies with another loop variable x_h
/// *and* some current dependence can be non-zero at position h, the
/// published mapping rules can under-cover the transformed dependences
/// (found by the randomized soundness suite; see DESIGN.md §5). This
/// check - part of both legality drivers, evaluated against the current
/// stage's dependence set - rejects exactly those combinations.
/// \returns empty when fine, else a diagnostic.
std::string checkAnchorDependence(const TransformTemplate &T,
                                  const NestTypeState &State, const DepSet &D);

/// The uniform legality test on type states: per-stage precondition
/// checks via mapTypes (falling back to apply() for templates without a
/// type rule) plus the anchor-dependence condition, then the
/// lexicographic test on the final mapped dependence set. Equivalent in
/// verdict to isLegal() on the supported corpus; the test suite asserts
/// agreement. A shim over the prefix-memoized engine
/// (legality/IncrementalEngine.h), cached under Mode::Fast keys.
LegalityResult isLegalFast(const TransformSequence &T, const LoopNest &Nest,
                           const DepSet &D);

} // namespace irlt

#endif // IRLT_TRANSFORM_TYPESTATE_H
