//===- transform/Unimodular.cpp - The Unimodular template ----------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unimodular(n, M) (Tables 1-3): y = M x over the iteration space.
///
///  - Dependence rule (Table 2): D' = { M (x) d }, the matrix-vector
///    product extended to direction values with sign-interval arithmetic.
///  - Bounds preconditions (Table 3): type(l_j, x_i), type(u_j, x_i) <=
///    linear; type(s_j, x_i) <= const; non-unit constant steps are
///    normalized to 1 before the mapping. All input loops must be
///    sequential (a skew of a pardo loop has no meaning; re-parallelize
///    afterwards with the Parallelize template).
///  - Code generation: symbolic Fourier-Motzkin over  x = M^{-1} y, per
///    the paper's citations [7, 14]. Initialization statements define the
///    old index variables as integer combinations of the new ones; rows
///    of M that are unit vectors at the same position keep their index
///    variable and get no init statement.
///
/// Step normalization never materializes trip-count expressions: a loop
/// `do x = l, u, s` contributes the *affine* constraints  xh >= 0  and
/// s*xh <= u - l  (mirrored for s < 0) over the 0-based counter xh with
/// x = l + s*xh, so the inequality system stays exact even when l
/// references outer index variables.
///
//===----------------------------------------------------------------------===//

#include "bounds/TypeLattice.h"
#include "ir/LinExpr.h"
#include "support/Casting.h"
#include "support/MathUtils.h"
#include "support/Printing.h"
#include "transform/SymbolicFM.h"
#include "transform/Templates.h"

#include <cassert>

using namespace irlt;

UnimodularTemplate::UnimodularTemplate(unsigned N, UnimodularMatrix M)
    : TransformTemplate(Kind::Unimodular), N(N), M(std::move(M)) {
  assert(this->M.size() == N && "matrix size mismatch");
  // Fusing huge-entry matrices (Sequence::reduced) saturates under an
  // active OverflowGuard; the caller discards the fused template at its
  // triggered() boundary, so tolerate a degraded product there.
  assert((this->M.isUnimodular() ||
          (OverflowGuard::active() && OverflowGuard::active()->triggered())) &&
         "matrix is not unimodular");
}

std::string UnimodularTemplate::paramStr() const {
  return formatStr("(n=%u, M=%s)", N, M.str().c_str());
}

DepSet UnimodularTemplate::mapDependences(const DepSet &D) const {
  DepSet Out;
  for (const DepVector &V : D.vectors()) {
    assert(V.size() == N && "dependence vector arity mismatch");
    Out.insert(M.apply(V));
  }
  return Out;
}

std::string UnimodularTemplate::checkPreconditions(const LoopNest &Nest) const {
  if (Nest.numLoops() != N)
    return formatStr("Unimodular: nest has %u loops, template expects %u",
                     Nest.numLoops(), N);
  for (unsigned K = 0; K < N; ++K) {
    const Loop &L = Nest.Loops[K];
    if (L.Kind != LoopKind::Do)
      return formatStr("Unimodular: loop %u ('%s') is parallel; only "
                       "sequential loops can be transformed",
                       K + 1, L.IndexVar.c_str());
    std::optional<int64_t> StepC = L.Step->constValue();
    if (!StepC || *StepC == 0)
      return formatStr("Unimodular: step of loop %u ('%s') is not a non-zero "
                       "compile-time constant",
                       K + 1, L.IndexVar.c_str());
    int SSign = *StepC > 0 ? 1 : -1;
    if (*StepC != 1) {
      // Normalization substitutes x = l + s*xh; the start bound must be a
      // single inequality for the substitution to stay affine.
      Expr::Kind Splittable = SSign > 0 ? Expr::Kind::Max : Expr::Kind::Min;
      if (L.Lower->kind() == Splittable)
        return formatStr("Unimodular: loop %u ('%s') has a non-unit step "
                         "with a composite start bound; normalize it first",
                         K + 1, L.IndexVar.c_str());
    }
    for (unsigned I = 0; I < K; ++I) {
      const std::string &Xi = Nest.Loops[I].IndexVar;
      BoundType TL = typeOfBound(L.Lower, Xi, BoundSide::Lower, SSign);
      if (!typeLE(TL, BoundType::Linear))
        return formatStr("Unimodular: type(l_%u, %s) = %s exceeds linear",
                         K + 1, Xi.c_str(), typeName(TL));
      BoundType TU = typeOfBound(L.Upper, Xi, BoundSide::Upper, SSign);
      if (!typeLE(TU, BoundType::Linear))
        return formatStr("Unimodular: type(u_%u, %s) = %s exceeds linear",
                         K + 1, Xi.c_str(), typeName(TU));
    }
  }
  return std::string();
}

namespace {

/// Splits a bound into its inequality terms per the max/min special case.
std::vector<ExprRef> boundTerms(const ExprRef &E, BoundSide Side, int SSign) {
  Expr::Kind Splittable = Expr::Kind::Call; // sentinel
  if (SSign > 0)
    Splittable = Side == BoundSide::Lower ? Expr::Kind::Max : Expr::Kind::Min;
  else if (SSign < 0)
    Splittable = Side == BoundSide::Lower ? Expr::Kind::Min : Expr::Kind::Max;
  if (E->kind() == Splittable) {
    const auto *MM = cast<MinMaxExpr>(E.get());
    return std::vector<ExprRef>(MM->operands().begin(), MM->operands().end());
  }
  return {E};
}

} // namespace

ErrorOr<LoopNest> UnimodularTemplate::apply(const LoopNest &Nest) const {
  if (std::string E = checkPreconditions(Nest); !E.empty())
    return Failure(E);

  // The transformation acts on the *normalized* iteration vector xh:
  // xh_k = x_k when s_k == 1, else the 0-based counter with
  // x_k = l_k + s_k * xh_k. Resolve maps each original index variable to
  // its affine form over hat variables (by name) and invariant atoms.
  std::vector<std::string> HatName(N);
  std::map<std::string, LinExpr> Resolve;
  std::vector<InitStmt> NormInits;
  LoopNest NameScope = Nest;

  // Constraint rows over hat variables:  sum Coef[k]*xh_k (<=|>=) Sym.
  struct HatRow {
    std::vector<int64_t> Coef;
    LinExpr Sym;
    bool IsGE;
  };
  std::vector<HatRow> Rows;

  // Splits a resolved LinExpr into hat-variable coefficients (by loop
  // position) and the symbolic remainder.
  auto splitHat = [&](const LinExpr &L, std::vector<int64_t> &Coef,
                      LinExpr &Sym) {
    Coef.assign(N, 0);
    Sym = LinExpr();
    Sym.addConst(L.constant());
    for (const auto &[Key, T] : L.terms()) {
      bool Positional = false;
      if (isa<VarExpr>(T.Atom.get())) {
        const std::string &Name = cast<VarExpr>(T.Atom.get())->name();
        for (unsigned K = 0; K < N; ++K)
          if (HatName[K] == Name) {
            Coef[K] = addChecked(Coef[K], T.Coef);
            Positional = true;
            break;
          }
      }
      if (!Positional)
        Sym.addAtom(T.Atom, T.Coef);
    }
  };

  for (unsigned K = 0; K < N; ++K) {
    const Loop &L = Nest.Loops[K];
    int64_t S = *L.Step->constValue();
    int SSign = S > 0 ? 1 : -1;
    auto resolve = [&](const ExprRef &E) {
      return LinExpr::fromExpr(E).substituted(Resolve);
    };

    if (S == 1) {
      HatName[K] = L.IndexVar;
      LinExpr Self;
      Self.addVar(L.IndexVar, 1);
      Resolve[L.IndexVar] = Self;
      for (const ExprRef &T : boundTerms(L.Lower, BoundSide::Lower, 1)) {
        HatRow R;
        LinExpr RT = resolve(T);
        splitHat(RT, R.Coef, R.Sym);
        // xh_k >= T:  e_k - T >= Sym-part... represent as row
        // (e_k - TIdx) >= TSym.
        for (int64_t &C : R.Coef)
          C = -C;
        R.Coef[K] = addChecked(R.Coef[K], 1);
        R.IsGE = true;
        Rows.push_back(std::move(R));
      }
      for (const ExprRef &T : boundTerms(L.Upper, BoundSide::Upper, 1)) {
        HatRow R;
        LinExpr RT = resolve(T);
        splitHat(RT, R.Coef, R.Sym);
        for (int64_t &C : R.Coef)
          C = -C;
        R.Coef[K] = addChecked(R.Coef[K], 1);
        R.IsGE = false;
        Rows.push_back(std::move(R));
      }
      continue;
    }

    // Non-unit step: fresh 0-based counter.
    HatName[K] = freshVarName(NameScope, L.IndexVar + "n");
    NameScope.Loops.push_back(Loop(HatName[K], Expr::intConst(0),
                                   Expr::intConst(0), Expr::intConst(1)));
    LinExpr L0 = resolve(L.Lower);
    LinExpr Sub = L0;
    Sub.addVar(HatName[K], S);
    Resolve[L.IndexVar] = Sub;
    // Recovery init (ascending-k emission order keeps references to outer
    // originals valid): x_k = l_k + s_k * xh_k with the *original* l_k.
    NormInits.push_back(InitStmt{
        L.IndexVar,
        simplify(Expr::add(L.Lower, Expr::mul(Expr::intConst(S),
                                              Expr::var(HatName[K]))))});
    // xh_k >= 0.
    {
      HatRow R;
      R.Coef.assign(N, 0);
      R.Coef[K] = 1;
      R.IsGE = true;
      Rows.push_back(std::move(R));
    }
    // End bound: for s > 0, each upper term t gives  s*xh <= t - l0;
    // for s < 0, each (max-split) end term gives  (-s)*xh <= l0 - t.
    for (const ExprRef &T : boundTerms(L.Upper, BoundSide::Upper, SSign)) {
      LinExpr RT = resolve(T);
      LinExpr Diff = SSign > 0 ? RT - L0 : L0 - RT;
      HatRow R;
      splitHat(Diff, R.Coef, R.Sym);
      for (int64_t &C : R.Coef)
        C = -C;
      R.Coef[K] = addChecked(R.Coef[K], SSign > 0 ? S : -S);
      R.IsGE = false;
      Rows.push_back(std::move(R));
    }
  }

  // Transform the rows to y-space: xh = Minv * y, so a row A.xh (<=|>=) b
  // becomes (A^T Minv).y (<=|>=) b.
  UnimodularMatrix Minv = M.inverse();
  SymbolicFM Sys(N);
  for (HatRow &R : Rows) {
    std::vector<int64_t> B(N, 0);
    for (unsigned C = 0; C < N; ++C) {
      int64_t Acc = 0;
      for (unsigned Rr = 0; Rr < N; ++Rr)
        Acc = addChecked(Acc, mulChecked(R.Coef[Rr], Minv.at(Rr, C)));
      B[C] = Acc;
    }
    if (R.IsGE)
      Sys.addGE(std::move(B), R.Sym);
    else
      Sys.addLE(std::move(B), std::move(R.Sym));
  }

  // Names for the new variables: unit rows keep their (hat) variable; any
  // other y_c doubles the name of the first old variable whose recovery
  // uses y_c.
  std::vector<std::string> YNames(N);
  std::vector<bool> KeepName(N, false);
  for (unsigned C = 0; C < N; ++C) {
    if (M.rowIsUnit(C, C)) {
      YNames[C] = HatName[C];
      KeepName[C] = true;
      continue;
    }
    std::string Preferred;
    for (unsigned R = 0; R < N; ++R)
      if (Minv.at(R, C) != 0) {
        Preferred = HatName[R] + HatName[R];
        break;
      }
    if (Preferred.empty())
      Preferred = formatStr("y%u", C + 1);
    std::string Fresh = freshVarName(NameScope, Preferred);
    YNames[C] = Fresh;
    NameScope.Loops.push_back(
        Loop(Fresh, Expr::intConst(0), Expr::intConst(0), Expr::intConst(1)));
  }

  // Fourier-Motzkin bound generation.
  std::vector<GeneratedBounds> Bounds = Sys.generateBounds(YNames);
  for (unsigned K = 0; K < N; ++K)
    if (Bounds[K].Lowers.empty() || Bounds[K].Uppers.empty())
      return Failure(formatStr(
          "Unimodular: transformed loop %u has no %s bound (input iteration "
          "space is unbounded in the transformed basis)",
          K + 1, Bounds[K].Lowers.empty() ? "lower" : "upper"));

  LoopNest Out = Nest;
  Out.Loops.clear();
  for (unsigned K = 0; K < N; ++K) {
    ExprRef Lo = simplify(Expr::maxE(Bounds[K].Lowers));
    ExprRef Hi = simplify(Expr::minE(Bounds[K].Uppers));
    Out.Loops.push_back(
        Loop(YNames[K], Lo, Hi, Expr::intConst(1), LoopKind::Do));
  }

  // Init statements xh_r = Minv[r] . y for renamed rows (innermost first,
  // as in Figure 1(b)), then the step-recovery inits, then pre-existing
  // ones: overall the paper's INIT_k ... INIT_1 order.
  std::vector<InitStmt> NewInits;
  for (unsigned R = N; R-- > 0;) {
    if (KeepName[R])
      continue;
    LinExpr Rec;
    for (unsigned C = 0; C < N; ++C)
      if (Minv.at(R, C) != 0)
        Rec.addVar(YNames[C], Minv.at(R, C));
    NewInits.push_back(InitStmt{HatName[R], Rec.toExpr()});
  }
  std::vector<InitStmt> AllInits = std::move(NewInits);
  AllInits.insert(AllInits.end(), NormInits.begin(), NormInits.end());
  AllInits.insert(AllInits.end(), Nest.Inits.begin(), Nest.Inits.end());
  Out.Inits = std::move(AllInits);
  return Out;
}

TemplateRef irlt::makeUnimodular(unsigned N, UnimodularMatrix M) {
  return std::make_shared<UnimodularTemplate>(N, std::move(M));
}
