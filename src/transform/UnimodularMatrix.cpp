//===- transform/UnimodularMatrix.cpp - Integer unimodular matrices ------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "transform/UnimodularMatrix.h"

#include "support/MathUtils.h"
#include "support/Printing.h"

#include <cassert>

using namespace irlt;

UnimodularMatrix::UnimodularMatrix(unsigned N, std::vector<int64_t> RowMajor)
    : N(N), Data(std::move(RowMajor)) {
  assert(Data.size() == static_cast<size_t>(N) * N &&
         "row-major data size mismatch");
}

UnimodularMatrix UnimodularMatrix::identity(unsigned N) {
  UnimodularMatrix M(N);
  for (unsigned I = 0; I < N; ++I)
    M.set(I, I, 1);
  return M;
}

UnimodularMatrix UnimodularMatrix::reversal(unsigned N, unsigned K) {
  assert(K < N && "reversal index out of range");
  UnimodularMatrix M = identity(N);
  M.set(K, K, -1);
  return M;
}

UnimodularMatrix UnimodularMatrix::interchange(unsigned N, unsigned A,
                                               unsigned B) {
  assert(A < N && B < N && "interchange index out of range");
  UnimodularMatrix M = identity(N);
  M.set(A, A, 0);
  M.set(B, B, 0);
  M.set(A, B, 1);
  M.set(B, A, 1);
  return M;
}

UnimodularMatrix
UnimodularMatrix::permutation(unsigned N, const std::vector<unsigned> &Perm) {
  assert(Perm.size() == N && "permutation arity mismatch");
  UnimodularMatrix M(N);
  std::vector<bool> Seen(N, false);
  for (unsigned K = 0; K < N; ++K) {
    assert(Perm[K] < N && !Seen[Perm[K]] && "not a bijection");
    Seen[Perm[K]] = true;
    // Output loop Perm[K] carries input loop K: y_{Perm[K]} = x_K.
    M.set(Perm[K], K, 1);
  }
  return M;
}

UnimodularMatrix UnimodularMatrix::skew(unsigned N, unsigned Src, unsigned Dst,
                                        int64_t Factor) {
  assert(Src < N && Dst < N && Src != Dst && "bad skew indices");
  UnimodularMatrix M = identity(N);
  M.set(Dst, Src, Factor);
  return M;
}

int64_t UnimodularMatrix::determinant() const {
  if (N == 0)
    return 1;
  // Bareiss fraction-free elimination: every intermediate division is
  // exact, so the computation stays in integers.
  std::vector<int64_t> A = Data;
  auto At = [&](unsigned R, unsigned C) -> int64_t & { return A[R * N + C]; };
  int64_t SignFlip = 1;
  int64_t Prev = 1;
  for (unsigned K = 0; K + 1 < N; ++K) {
    if (At(K, K) == 0) {
      unsigned Pivot = K + 1;
      while (Pivot < N && At(Pivot, K) == 0)
        ++Pivot;
      if (Pivot == N)
        return 0; // singular
      for (unsigned C = 0; C < N; ++C)
        std::swap(At(K, C), At(Pivot, C));
      SignFlip = -SignFlip;
    }
    for (unsigned I = K + 1; I < N; ++I)
      for (unsigned J = K + 1; J < N; ++J) {
        int64_t V = addChecked(mulChecked(At(I, J), At(K, K)),
                               negChecked(mulChecked(At(I, K), At(K, J))));
        // Saturated intermediates (mulChecked/addChecked degrade to the
        // int64 boundary under an active OverflowGuard) break the
        // exact-division invariant; record and bail out - the caller
        // discards the result at its triggered() boundary. Prev == -1 is
        // split out because INT64_MIN % -1 traps in hardware.
        bool Inexact = Prev == -1 ? V == INT64_MIN : V % Prev != 0;
        if (Inexact) {
          [[maybe_unused]] bool Handled = OverflowGuard::record();
          assert(Handled && "Bareiss division not exact");
          return 0;
        }
        At(I, J) = V / Prev;
      }
    Prev = At(K, K);
  }
  return SignFlip * At(N - 1, N - 1);
}

UnimodularMatrix UnimodularMatrix::operator*(const UnimodularMatrix &O) const {
  assert(N == O.N && "matrix size mismatch");
  UnimodularMatrix R(N);
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < N; ++J) {
      int64_t S = 0;
      for (unsigned K = 0; K < N; ++K)
        S = addChecked(S, mulChecked(at(I, K), O.at(K, J)));
      R.set(I, J, S);
    }
  return R;
}

UnimodularMatrix UnimodularMatrix::inverse() const {
  int64_t Det = determinant();
  // Under an active OverflowGuard a huge-entry determinant saturates and
  // comes back degraded; the result here is then garbage the caller
  // discards at its triggered() boundary.
  assert((Det == 1 || Det == -1 ||
          (OverflowGuard::active() && OverflowGuard::active()->triggered())) &&
         "inverse of non-unimodular matrix");
  UnimodularMatrix Inv(N);
  // Adjugate: Inv[j][i] = cofactor(i, j) / det. N is small (loop nest
  // depth), so O(n^4) minors are fine.
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < N; ++J) {
      // Minor matrix with row I, column J removed.
      UnimodularMatrix Minor(N - 1);
      for (unsigned R = 0, MR = 0; R < N; ++R) {
        if (R == I)
          continue;
        for (unsigned C = 0, MC = 0; C < N; ++C) {
          if (C == J)
            continue;
          Minor.set(MR, MC, at(R, C));
          ++MC;
        }
        ++MR;
      }
      int64_t Cof = Minor.determinant();
      if ((I + J) % 2 != 0)
        Cof = -Cof;
      Inv.set(J, I, Cof * Det); // division by det == multiplication (+-1)
    }
  return Inv;
}

std::vector<int64_t>
UnimodularMatrix::apply(const std::vector<int64_t> &X) const {
  assert(X.size() == N && "vector arity mismatch");
  std::vector<int64_t> Y(N, 0);
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = 0; J < N; ++J)
      Y[I] = addChecked(Y[I], mulChecked(at(I, J), X[J]));
  return Y;
}

DepVector UnimodularMatrix::apply(const DepVector &D) const {
  assert(D.size() == N && "dependence vector arity mismatch");
  std::vector<DepElem> Out;
  Out.reserve(N);
  for (unsigned I = 0; I < N; ++I) {
    DepElem Acc = DepElem::zero();
    for (unsigned J = 0; J < N; ++J)
      Acc = DepElem::add(Acc, D[J].scaled(at(I, J)));
    Out.push_back(Acc);
  }
  return DepVector(std::move(Out));
}

bool UnimodularMatrix::rowIsUnit(unsigned R, unsigned C) const {
  for (unsigned J = 0; J < N; ++J)
    if (at(R, J) != (J == C ? 1 : 0))
      return false;
  return true;
}

std::string UnimodularMatrix::str() const {
  std::vector<std::string> Rows;
  for (unsigned I = 0; I < N; ++I) {
    std::vector<std::string> Cols;
    for (unsigned J = 0; J < N; ++J)
      Cols.push_back(std::to_string(at(I, J)));
    Rows.push_back("[" + join(Cols, ", ") + "]");
  }
  return "[" + join(Rows, ", ") + "]";
}
