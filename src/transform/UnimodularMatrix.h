//===- transform/UnimodularMatrix.h - Integer unimodular matrices --------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Square integer matrices with determinant +-1 (footnote 1 of the
/// paper), the parameter of the Unimodular transformation template.
/// Provides the three generator families the paper names (reversal,
/// interchange/permutation, skewing), exact determinant (Bareiss
/// fraction-free elimination), exact integer inverse (adjugate), and the
/// matrix-vector product on dependence vectors "appropriately extended
/// for direction values" (Table 2) via sign-interval arithmetic.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_TRANSFORM_UNIMODULARMATRIX_H
#define IRLT_TRANSFORM_UNIMODULARMATRIX_H

#include "dependence/DepVector.h"

#include <cstdint>
#include <string>
#include <vector>

namespace irlt {

/// A square integer matrix; unimodularity is a checkable property.
class UnimodularMatrix {
public:
  /// The n x n zero matrix (useful as a builder start).
  explicit UnimodularMatrix(unsigned N) : N(N), Data(N * N, 0) {}

  /// Builds from row-major data.
  UnimodularMatrix(unsigned N, std::vector<int64_t> RowMajor);

  static UnimodularMatrix identity(unsigned N);

  /// Reversal of loop \p K (0-based): diag(1,..,-1,..,1).
  static UnimodularMatrix reversal(unsigned N, unsigned K);

  /// Interchange of loops \p A and \p B.
  static UnimodularMatrix interchange(unsigned N, unsigned A, unsigned B);

  /// General permutation: output loop Perm[k] gets input loop k
  /// (Perm is a bijection on 0..N-1).
  static UnimodularMatrix permutation(unsigned N,
                                      const std::vector<unsigned> &Perm);

  /// Skew: y_Dst = x_Dst + Factor * x_Src (all other rows identity).
  static UnimodularMatrix skew(unsigned N, unsigned Src, unsigned Dst,
                               int64_t Factor);

  unsigned size() const { return N; }

  int64_t at(unsigned R, unsigned C) const { return Data[R * N + C]; }
  void set(unsigned R, unsigned C, int64_t V) { Data[R * N + C] = V; }

  /// Exact determinant via Bareiss fraction-free elimination.
  int64_t determinant() const;

  /// True iff |det| == 1 (all entries are integers by construction and
  /// the matrix is square by construction - property 3 of footnote 1).
  bool isUnimodular() const { return std::abs(determinant()) == 1; }

  /// Matrix product (this * O): applying O first, then this.
  UnimodularMatrix operator*(const UnimodularMatrix &O) const;

  /// Exact integer inverse via the adjugate. Asserts unimodularity.
  UnimodularMatrix inverse() const;

  /// Product with an exact integer vector.
  std::vector<int64_t> apply(const std::vector<int64_t> &X) const;

  /// Product with a dependence vector, extended for direction values:
  /// each output entry is the sign-interval sum of scaled input entries
  /// and is exact whenever every participating entry is a distance.
  DepVector apply(const DepVector &D) const;

  /// Row \p R is the unit vector e_C?
  bool rowIsUnit(unsigned R, unsigned C) const;

  bool operator==(const UnimodularMatrix &O) const {
    return N == O.N && Data == O.Data;
  }

  /// "[[1, 1], [1, 0]]".
  std::string str() const;

private:
  unsigned N;
  std::vector<int64_t> Data; // row-major
};

} // namespace irlt

#endif // IRLT_TRANSFORM_UNIMODULARMATRIX_H
