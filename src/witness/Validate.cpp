//===- witness/Validate.cpp - Guarded candidate validation ladder --------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "witness/Validate.h"

#include "cgen/NativeCheck.h"
#include "eval/Verify.h"
#include "fuzz/Fuzzer.h"

#include <functional>

using namespace irlt;
using namespace irlt::witness;

ValidateOptions ValidateOptions::defaults() {
  ValidateOptions O;
  O.Bindings = WitnessOptions::defaults().Bindings;
  return O;
}

ValidateOptions ValidateOptions::nativeDefaults() {
  ValidateOptions O = defaults();
  O.Native = true;
  O.MaxInstances = 1'000'000;
  // n=160 at depth 3 is ~4.1M instances: beyond the raised interpreted
  // budget, cheap for a compiled binary.
  O.NativeBindings = {{{"n", 72}, {"m", 48}, {"b", 8}},
                      {{"n", 160}, {"m", 120}, {"b", 16}}};
  return O;
}

const char *irlt::witness::validateStatusName(ValidateStatus S) {
  switch (S) {
  case ValidateStatus::Confirmed:
    return "confirmed";
  case ValidateStatus::Disproved:
    return "disproved";
  case ValidateStatus::Inconclusive:
    return "inconclusive";
  }
  return "?";
}

namespace {

std::string bindingStr(const std::map<std::string, int64_t> &B) {
  std::string S;
  for (const auto &[K, V] : B)
    S += (S.empty() ? "" : ",") + K + "=" + std::to_string(V);
  return S;
}

/// Dumps a disproof as a replayable reproducer in the fuzzer's trio
/// format. The stem hashes the nest and script so repeated runs of the
/// same disproof overwrite one file instead of accumulating.
std::string dumpDisproof(const LoopNest &Nest, const TransformSequence &Seq,
                         const CandidateOutcome &Outcome,
                         const std::string &Binding,
                         const ValidateOptions &Opts,
                         const std::string &Tier = "interpreter") {
  if (Opts.ReproDir.empty())
    return "";
  ErrorOr<std::string> Script = scriptForSequence(Seq);
  std::string NestSrc = Nest.str();
  std::string ScriptSrc = Script ? *Script : "";
  std::string Stem =
      "candidate-" + std::to_string(std::hash<std::string>{}(
                         NestSrc + "\n---\n" + ScriptSrc));
  std::string NestPath = Opts.ReproDir + "/" + Stem + ".nest";
  std::string ScriptPath = Opts.ReproDir + "/" + Stem + ".script";
  std::vector<std::string> Replay;
  if (Script) {
    Replay.push_back("irlt-opt " + NestPath + " -f " + ScriptPath +
                     " --legality --verify " + Binding);
    if (Tier != "interpreter")
      Replay.push_back("irlt-cgen " + NestPath + " -f " + ScriptPath +
                       " --run --bind " + Binding);
  }
  std::string Note = "sequence: " + Seq.str() + "\ndetail: " + Outcome.Detail;
  if (!Script)
    Note += "\n(sequence not expressible as a script: " + Script.message() +
            ")";
  return fuzz::writeReproducer(Opts.ReproDir, Stem, NestSrc, ScriptSrc, Note,
                               Replay, Tier);
}

} // namespace

CandidateOutcome irlt::witness::validateCandidate(
    const LoopNest &Nest, const TransformSequence &Seq,
    const ValidateOptions &Opts) {
  CandidateOutcome R;

  ErrorOr<LoopNest> Out = applySequence(Seq, Nest);
  if (!Out) {
    // A candidate that cannot be code-generated is useless regardless of
    // what the legality test thought of it; treat as disproved so the
    // ladder moves on.
    R.Status = ValidateStatus::Disproved;
    R.Detail = "sequence failed to apply: " + Out.message();
    R.Why = Out.diags().front();
    R.ReproPath = dumpDisproof(Nest, Seq, R, "", Opts);
    return R;
  }

  bool SawBudget = false;
  unsigned Passed = 0;
  for (const auto &Binding : Opts.Bindings) {
    EvalConfig C;
    C.Params = Binding;
    C.MaxInstances = Opts.MaxInstances;
    C.WallBudgetMillis = Opts.WallBudgetMillis;
    VerifyResult V = verifyTransformed(Nest, *Out, C);
    if (V.Ok) {
      ++Passed;
      continue;
    }
    if (V.BudgetExceeded) {
      SawBudget = true;
      continue;
    }
    R.Status = ValidateStatus::Disproved;
    R.Detail = "binding " + bindingStr(Binding) + ": " + V.Problem;
    R.Why = Diag::error(V.Problem).inTemplate("validate");
    R.ReproPath = dumpDisproof(Nest, Seq, R, bindingStr(Binding), Opts);
    return R;
  }

  // Native tier (docs/CODEGEN.md): compile-and-run the differential
  // harness under bindings whose iteration spaces exceed the interpreted
  // budget. A native mismatch disproves; a missing compiler or an
  // unemittable nest only annotates the interpreted verdict.
  unsigned NativePassed = 0;
  std::string NativeNote;
  if (Opts.Native) {
    for (const auto &Binding : Opts.NativeBindings) {
      cgen::NativeCheckOptions NC;
      NC.Bindings = Binding;
      NC.MaxCells = Opts.NativeMaxCells;
      NC.Runner.RunTimeoutMs = Opts.NativeTimeoutMs;
      cgen::NativeCheckResult N = cgen::checkNative(Nest, &*Out, NC);
      if (N.Status == cgen::NativeCheckStatus::Match) {
        ++NativePassed;
        continue;
      }
      if (N.Status == cgen::NativeCheckStatus::Mismatch) {
        R.Status = ValidateStatus::Disproved;
        R.Detail = "native binding " + bindingStr(Binding) + ": " + N.Detail;
        R.Why = Diag::error(N.Detail).inTemplate("validate-native");
        R.ReproPath =
            dumpDisproof(Nest, Seq, R, bindingStr(Binding), Opts, "native");
        return R;
      }
      if (N.Status == cgen::NativeCheckStatus::Unavailable) {
        NativeNote = "; native tier skipped: no host C compiler";
        break;
      }
      // Skipped (unemittable / cell cap) or Failed (infrastructure):
      // the interpreted verdict stands, annotated.
      NativeNote = "; native tier skipped: " + N.Detail;
      break;
    }
    if (NativeNote.empty() && NativePassed > 0)
      NativeNote = "; native-confirmed under " +
                   std::to_string(NativePassed) + " binding(s)";
  }

  if (Passed > 0 && !SawBudget) {
    R.Status = ValidateStatus::Confirmed;
    R.Detail =
        "equivalent under " + std::to_string(Passed) + " binding(s)" +
        NativeNote;
  } else if (SawBudget && NativePassed == Opts.NativeBindings.size() &&
             NativePassed > 0) {
    // The interpreter ran out of budget but the native tier finished
    // every binding: that is exactly the case the backend exists for.
    R.Status = ValidateStatus::Confirmed;
    R.Detail = "interpreted budget exhausted, but native execution "
               "confirmed " +
               std::to_string(NativePassed) + " binding(s)";
  } else {
    R.Status = ValidateStatus::Inconclusive;
    R.Detail = (SawBudget ? "evaluation budget exhausted before a verdict"
                          : "no parameter bindings to validate under") +
               NativeNote;
  }
  return R;
}

LadderResult irlt::witness::validateLadder(
    const LoopNest &Nest, const std::vector<TransformSequence> &Candidates,
    const ValidateOptions &Opts) {
  LadderResult R;
  int FirstInconclusive = -1;
  for (size_t I = 0; I < Candidates.size(); ++I) {
    CandidateOutcome O = validateCandidate(Nest, Candidates[I], Opts);
    ValidateStatus S = O.Status;
    R.Outcomes.push_back(std::move(O));
    if (S == ValidateStatus::Confirmed) {
      R.Chosen = static_cast<int>(I);
      return R;
    }
    if (S == ValidateStatus::Inconclusive && FirstInconclusive < 0)
      FirstInconclusive = static_cast<int>(I);
  }
  // Nothing confirmed: fall back to the best candidate that at least
  // could not be disproved, else to the identity sequence.
  R.Chosen = FirstInconclusive;
  return R;
}
