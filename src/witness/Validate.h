//===- witness/Validate.h - Guarded candidate validation ladder ----------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `--validate` guarded mode behind irlt-opt --auto and irlt-search
/// (docs/LEGALITY.md). A transformation candidate the legality test
/// accepted is cross-checked by bounded concrete execution under a set
/// of parameter bindings, and the result is one of three verdicts:
///
///   Confirmed    - every binding executed to completion and the
///                  transformed nest was equivalent under all of them;
///   Disproved    - some binding produced a concrete inequivalence (a
///                  reordered dependent pair, a diverging store, ...);
///                  the disproof is dumped as a replayable reproducer in
///                  the fuzzer's trio format;
///   Inconclusive - no binding disproved the candidate but at least one
///                  ran out of budget before finishing.
///
/// validateLadder() strings the verdicts into graceful degradation:
/// candidates are tried best-first, a Disproved candidate falls through
/// to the next-best one, and when everything is disproved the ladder
/// lands on the identity sequence - never an error, never a crash.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_WITNESS_VALIDATE_H
#define IRLT_WITNESS_VALIDATE_H

#include "witness/Witness.h"

#include <map>
#include <string>
#include <vector>

namespace irlt {
namespace witness {

/// Budgets, bindings, and reproducer policy for validation.
struct ValidateOptions {
  /// Parameter bindings tried in order; all must confirm.
  std::vector<std::map<std::string, int64_t>> Bindings;
  /// Per-evaluation instance budget (the `--validate=N` knob).
  uint64_t MaxInstances = 200'000;
  /// Wall budget per evaluation; 0 keeps validation deterministic.
  uint64_t WallBudgetMillis = 0;
  /// Where disproof reproducers go; empty disables dumping.
  std::string ReproDir = "irlt-validate-repro";

  /// The native tier (`--validate=native`, docs/CODEGEN.md): after the
  /// interpreted bindings confirm, compile and run the emitted
  /// differential harness under NativeBindings - iteration spaces far
  /// beyond what the interpreter budget can cover. When no host C
  /// compiler exists the interpreted verdict stands, annotated as
  /// native-skipped (never silently dropped).
  bool Native = false;
  std::vector<std::map<std::string, int64_t>> NativeBindings;
  uint64_t NativeMaxCells = 1ull << 23;
  uint64_t NativeTimeoutMs = 60000;

  static ValidateOptions defaults();

  /// defaults() plus the native tier: the interpreted instance budget is
  /// raised 200k -> 1M (the native backend absorbs the large spaces, so
  /// the interpreter can afford deeper coverage; see the budget-split
  /// table in docs/LEGALITY.md), and the native bindings are sized so
  /// the larger one exceeds the interpreted budget.
  static ValidateOptions nativeDefaults();
};

enum class ValidateStatus { Confirmed, Disproved, Inconclusive };

/// Stable lowercase name: "confirmed", "disproved", "inconclusive".
const char *validateStatusName(ValidateStatus S);

/// Verdict for one candidate.
struct CandidateOutcome {
  ValidateStatus Status = ValidateStatus::Inconclusive;
  /// Human-readable elaboration (which binding, what went wrong).
  std::string Detail;
  /// Structured diagnostic for disproofs (empty message otherwise).
  Diag Why;
  /// Nest path of the dumped reproducer; empty when none was written.
  std::string ReproPath;
};

/// Cross-checks one candidate sequence against ground truth: applies it
/// and runs the execution verifier (eval/Verify.h) under every binding.
/// Never throws and never exits; an unapplicable sequence is Disproved.
CandidateOutcome validateCandidate(const LoopNest &Nest,
                                   const TransformSequence &Seq,
                                   const ValidateOptions &Opts =
                                       ValidateOptions::defaults());

/// Result of walking a best-first candidate list.
struct LadderResult {
  /// Index of the chosen candidate, or -1 for the identity fallback.
  int Chosen = -1;
  /// One outcome per examined candidate (a prefix of the input list:
  /// the walk stops at the first Confirmed candidate).
  std::vector<CandidateOutcome> Outcomes;

  bool fellBackToIdentity() const { return Chosen < 0; }
};

/// The graceful-degradation ladder: validates \p Candidates in order and
/// picks the first Confirmed one. When nothing confirms, the first
/// Inconclusive candidate is chosen (it was accepted by the legality
/// test and could not be disproved within budget); when every candidate
/// is Disproved, the ladder falls back to the identity sequence.
LadderResult validateLadder(const LoopNest &Nest,
                            const std::vector<TransformSequence> &Candidates,
                            const ValidateOptions &Opts =
                                ValidateOptions::defaults());

} // namespace witness
} // namespace irlt

#endif // IRLT_WITNESS_VALIDATE_H
