//===- witness/Witness.cpp - Machine-checkable legality certificates -----===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "witness/Witness.h"

#include "eval/Verify.h"
#include "support/MathUtils.h"
#include "transform/Templates.h"

#include <algorithm>
#include <map>

using namespace irlt;
using namespace irlt::witness;

WitnessOptions WitnessOptions::defaults() {
  WitnessOptions O;
  // Mirrors fuzz::DifferentialOptions::defaults() so certificates and
  // fuzz reproducers agree on the concrete bindings.
  O.Bindings = {{{"n", 6}, {"m", 4}, {"b", 2}},
                {{"n", 9}, {"m", 5}, {"b", 3}}};
  return O;
}

std::vector<int64_t> irlt::witness::lexNegativeTuple(const DepVector &V) {
  // Mirror of DepVector::canBeLexNegative: walk for the first position
  // whose entry can be negative while every earlier entry can be zero.
  std::vector<int64_t> T;
  for (unsigned K = 0; K < V.size(); ++K) {
    const DepElem &E = V[K];
    if (E.canBeNegative()) {
      T.push_back(E.isDistance() ? E.dist() : -1);
      // The tail is unconstrained by lexicographic order; pick any member
      // of each entry's value set.
      for (unsigned R = K + 1; R < V.size(); ++R) {
        const DepElem &F = V[R];
        if (F.isDistance())
          T.push_back(F.dist());
        else if (F.canBeZero())
          T.push_back(0);
        else if (F.canBePositive())
          T.push_back(1);
        else
          T.push_back(-1);
      }
      return T;
    }
    if (!E.canBeZero())
      return {}; // the zero prefix is unreachable from here on
    T.push_back(0);
  }
  return {};
}

namespace {

std::string tupleStr(const std::vector<int64_t> &T) {
  std::string S = "(";
  for (size_t I = 0; I < T.size(); ++I)
    S += (I ? ", " : "") + std::to_string(T[I]);
  return S + ")";
}

std::string bindingStr(const std::map<std::string, int64_t> &B) {
  std::string S;
  for (const auto &[K, V] : B)
    S += (S.empty() ? "" : ",") + K + "=" + std::to_string(V);
  return S;
}

bool isLexNegative(const std::vector<int64_t> &T) {
  for (int64_t V : T) {
    if (V < 0)
      return true;
    if (V > 0)
      return false;
  }
  return false;
}

EvalConfig makeConfig(const std::map<std::string, int64_t> &Binding,
                      const WitnessOptions &Opts) {
  EvalConfig C;
  C.Params = Binding;
  C.MaxInstances = Opts.MaxInstances;
  C.WallBudgetMillis = Opts.WallBudgetMillis;
  C.RecordTrace = true;
  C.RecordAccesses = true;
  C.ExecuteBody = true;
  return C;
}

/// Hunts a concrete violating iteration pair for a rejected sequence by
/// applying it and running the execution verifier under each binding.
void attachConcretePair(Certificate &C, const TransformSequence &Seq,
                        const LoopNest &Nest, const WitnessOptions &Opts) {
  ErrorOr<LoopNest> Out = applySequence(Seq, Nest);
  if (!Out)
    return; // the bounds pipeline refuses: no transformed nest to run
  for (const auto &Binding : Opts.Bindings) {
    VerifyResult V = verifyTransformed(Nest, *Out, makeConfig(Binding, Opts));
    if (V.Ok || !V.Counterexample)
      continue;
    C.HasPair = true;
    C.PairBinding = Binding;
    C.SrcIter = V.Counterexample->SrcIter;
    C.DstIter = V.Counterexample->DstIter;
    C.SrcPosT = V.Counterexample->SrcPosT;
    C.DstPosT = V.Counterexample->DstPosT;
    return;
  }
}

} // namespace

Certificate irlt::witness::certify(const TransformSequence &Seq,
                                   const LoopNest &Nest, const DepSet &D,
                                   const WitnessOptions &Opts) {
  Certificate C;
  // The shimmed isLegal() (prefix-memoized engine) by design: the
  // certificate's verdict fields must be byte-identical to whatever
  // every other caller of the uniform test observes, warm or cold.
  LegalityResult L = isLegal(Seq, Nest, D);
  C.Accepted = L.Legal;
  C.Kind = L.Kind;
  C.Reason = L.Reason;
  C.Why = L.Why;

  if (L.Legal) {
    // Acceptance: record the per-stage rule applications. The sequence
    // was accepted, so re-running the mapping rules cannot overflow; the
    // guard is belt-and-braces against a diverging re-derivation.
    DepSet Cur = D;
    unsigned Stage = 0;
    for (const TemplateRef &Step : Seq.steps()) {
      OverflowGuard Guard;
      StageTrace T;
      T.Stage = ++Stage;
      T.Template = Step->str();
      T.In = Cur;
      T.Out = Step->mapDependences(Cur);
      if (Guard.triggered()) {
        C.Stages.clear();
        break;
      }
      Cur = T.Out;
      C.Stages.push_back(std::move(T));
    }
    C.FinalDeps = L.FinalDeps;
    return C;
  }

  if (L.Kind == LegalityResult::RejectKind::LexNegative) {
    C.FinalDeps = L.FinalDeps;
    for (const DepVector &V : L.FinalDeps.vectors()) {
      if (!V.canBeLexNegative())
        continue;
      C.HasBadVector = true;
      C.BadVector = V;
      C.BadTuple = lexNegativeTuple(V);
      break;
    }
    // A lex-negative final set means apply() succeeds (the bounds stages
    // all passed), so a concrete reordered pair is usually observable.
    attachConcretePair(C, Seq, Nest, Opts);
  }
  return C;
}

std::string irlt::witness::checkViolationPair(const LoopNest &Original,
                                              const LoopNest &Transformed,
                                              const std::vector<int64_t> &Src,
                                              const std::vector<int64_t> &Dst,
                                              const EvalConfig &Config) {
  EvalConfig C = Config;
  C.RecordTrace = true;
  C.RecordAccesses = true;
  C.ExecuteBody = true;

  ArrayStore StoreO, StoreT;
  EvalResult RunO = evaluate(Original, C, StoreO);
  if (RunO.LimitHit)
    return "original nest: " + RunO.LimitReason;
  EvalResult RunT = evaluate(Transformed, C, StoreT);
  if (RunT.LimitHit)
    return "transformed nest: " + RunT.LimitReason;

  // The claimed instances must exist in the original run, Src first.
  std::map<std::vector<int64_t>, uint64_t> PosO;
  for (uint64_t I = 0; I < RunO.Instances.size(); ++I)
    PosO.emplace(RunO.Instances[I], I);
  auto SrcO = PosO.find(Src);
  auto DstO = PosO.find(Dst);
  if (SrcO == PosO.end())
    return "claimed source iteration " + tupleStr(Src) +
           " does not execute in the original nest";
  if (DstO == PosO.end())
    return "claimed destination iteration " + tupleStr(Dst) +
           " does not execute in the original nest";
  if (SrcO->second >= DstO->second)
    return "claimed pair is not ordered source-first in the original nest";

  // The pair must actually be dependent (same cell, >= 1 write).
  std::vector<std::pair<uint64_t, uint64_t>> Pairs =
      dependentInstancePairs(RunO);
  if (!std::binary_search(Pairs.begin(), Pairs.end(),
                          std::make_pair(SrcO->second, DstO->second)))
    return "claimed pair " + tupleStr(Src) + " -> " + tupleStr(Dst) +
           " carries no dependence in the original nest";

  // And the transformed nest must fail to order it: either Src runs
  // at-or-after Dst, or the two runs are unordered under a pardo loop.
  std::map<std::vector<int64_t>, uint64_t> PosT;
  for (uint64_t I = 0; I < RunT.Instances.size(); ++I)
    PosT.emplace(RunT.Instances[I], I);
  auto SrcT = PosT.find(Src);
  auto DstT = PosT.find(Dst);
  if (SrcT == PosT.end() || DstT == PosT.end())
    return "claimed pair does not execute in the transformed nest";
  if (SrcT->second >= DstT->second)
    return ""; // reordered: the violation is concrete
  const std::vector<int64_t> &LA = RunT.LoopTuples[SrcT->second];
  const std::vector<int64_t> &LB = RunT.LoopTuples[DstT->second];
  for (unsigned K = 0; K < Transformed.numLoops(); ++K) {
    if (LA[K] == LB[K])
      continue;
    if (Transformed.Loops[K].Kind == LoopKind::ParDo)
      return ""; // unordered under a pardo: the violation is concrete
    break;
  }
  return "claimed pair executes in dependence order in the transformed "
         "nest (no violation)";
}

std::string irlt::witness::checkCertificate(const Certificate &C,
                                            const TransformSequence &Seq,
                                            const LoopNest &Nest,
                                            const DepSet &D,
                                            const WitnessOptions &Opts) {
  LegalityResult L = isLegal(Seq, Nest, D);
  if (L.Legal != C.Accepted)
    return std::string("verdict mismatch: certificate says ") +
           (C.Accepted ? "accept" : "reject") + ", legality test says " +
           (L.Legal ? "accept" : "reject");

  if (C.Accepted) {
    if (C.Stages.size() != Seq.size())
      return "acceptance trace covers " + std::to_string(C.Stages.size()) +
             " stages, sequence has " + std::to_string(Seq.size());
    DepSet Cur = D;
    for (size_t I = 0; I < C.Stages.size(); ++I) {
      const StageTrace &T = C.Stages[I];
      const TemplateRef &Step = Seq.steps()[I];
      if (T.Template != Step->str())
        return "stage " + std::to_string(I + 1) + " names template '" +
               T.Template + "', sequence has '" + Step->str() + "'";
      if (!(T.In == Cur))
        return "stage " + std::to_string(I + 1) +
               " input set diverges from the re-derived set " + Cur.str();
      OverflowGuard Guard;
      DepSet Mapped = Step->mapDependences(Cur);
      if (Guard.triggered())
        return "stage " + std::to_string(I + 1) +
               " mapping overflows on re-derivation";
      if (!(T.Out == Mapped))
        return "stage " + std::to_string(I + 1) +
               " output set diverges from the re-derived mapping " +
               Mapped.str();
      Cur = std::move(Mapped);
    }
    if (!(C.FinalDeps == Cur))
      return "final dependence set diverges from the re-derived set " +
             Cur.str();
    if (!Cur.allLexNonNegative())
      return "final dependence set admits a lexicographically negative "
             "tuple; the acceptance is unsound";
    return "";
  }

  if (C.Kind != L.Kind)
    return std::string("reject-kind mismatch: certificate says ") +
           rejectKindName(C.Kind) + ", legality test says " +
           rejectKindName(L.Kind);

  if (C.HasBadVector) {
    OverflowGuard Guard;
    DepSet Mapped = mapDependences(Seq, D);
    if (Guard.triggered())
      return "whole-sequence mapping overflows on re-derivation";
    const std::vector<DepVector> &Vs = Mapped.vectors();
    if (std::find(Vs.begin(), Vs.end(), C.BadVector) == Vs.end())
      return "claimed vector " + C.BadVector.str() +
             " is not in the re-derived mapped set " + Mapped.str();
    if (!C.BadVector.canBeLexNegative())
      return "claimed vector " + C.BadVector.str() +
             " cannot be lexicographically negative";
    if (C.BadTuple.empty())
      return "lex-negative rejection carries no concrete tuple";
    if (C.BadTuple.size() != C.BadVector.size())
      return "concrete tuple arity differs from the claimed vector";
    if (!C.BadVector.containsTuple(C.BadTuple))
      return "concrete tuple " + tupleStr(C.BadTuple) +
             " is not a member of Tuples" + C.BadVector.str();
    if (!isLexNegative(C.BadTuple))
      return "concrete tuple " + tupleStr(C.BadTuple) +
             " is not lexicographically negative";
  } else if (C.Kind == LegalityResult::RejectKind::LexNegative) {
    return "lex-negative rejection carries no offending vector";
  }

  if (C.HasPair) {
    ErrorOr<LoopNest> Out = applySequence(Seq, Nest);
    if (!Out)
      return "certificate claims a concrete pair but the sequence fails "
             "to apply: " +
             Out.message();
    std::string E = checkViolationPair(Nest, *Out, C.SrcIter, C.DstIter,
                                       makeConfig(C.PairBinding, Opts));
    if (!E.empty())
      return "concrete pair replay failed: " + E;
  }
  return "";
}

std::string Certificate::str() const {
  std::string S;
  if (Accepted) {
    S = "certificate: ACCEPT\n";
    for (const StageTrace &T : Stages)
      S += "  stage " + std::to_string(T.Stage) + " " + T.Template + ": " +
           T.In.str() + " -> " + T.Out.str() + "\n";
    S += "  final: " + FinalDeps.str() + " is lex-non-negative\n";
    return S;
  }
  S = "certificate: REJECT (" + std::string(rejectKindName(Kind)) + ")\n";
  S += "  reason: " + Reason + "\n";
  if (HasBadVector) {
    S += "  vector: " + BadVector.str();
    if (!BadTuple.empty())
      S += " admits tuple " + tupleStr(BadTuple);
    S += "\n";
  }
  if (HasPair)
    S += "  violating pair under " + bindingStr(PairBinding) +
         ": iteration " + tupleStr(SrcIter) + " depends-before " +
         tupleStr(DstIter) + ", transformed positions " +
         std::to_string(SrcPosT) + " and " + std::to_string(DstPosT) + "\n";
  return S;
}

ErrorOr<std::string> irlt::witness::scriptForSequence(
    const TransformSequence &Seq) {
  std::string Out;
  auto line = [&Out](const std::string &L) { Out += L + "\n"; };
  auto sizeToken = [](const ExprRef &E, std::string &Tok) {
    if (std::optional<int64_t> V = E->constValue()) {
      Tok = std::to_string(*V);
      return true;
    }
    // The script grammar accepts bare symbolic names for sizes.
    if (E->kind() == Expr::Kind::Var) {
      Tok = E->str();
      return true;
    }
    return false;
  };

  for (const TemplateRef &Step : Seq.steps()) {
    if (const auto *RP = dyn_cast<ReversePermuteTemplate>(Step.get())) {
      // RP(rev, perm) reverses first, then permutes: emit the reversals,
      // then one permute directive. reduced() fuses them back into a
      // single ReversePermute with identical semantics.
      for (unsigned K = 0; K < RP->rev().size(); ++K)
        if (RP->rev()[K])
          line("reverse " + std::to_string(K + 1));
      bool Identity = true;
      for (unsigned K = 0; K < RP->perm().size(); ++K)
        Identity = Identity && RP->perm()[K] == K;
      if (!Identity) {
        std::string L = "permute";
        for (unsigned P : RP->perm())
          L += " " + std::to_string(P + 1);
        line(L);
      }
    } else if (const auto *U = dyn_cast<UnimodularTemplate>(Step.get())) {
      const UnimodularMatrix &M = U->matrix();
      std::string L = "unimodular";
      for (unsigned R = 0; R < M.size(); ++R) {
        if (R)
          L += " /";
        for (unsigned Col = 0; Col < M.size(); ++Col)
          L += " " + std::to_string(M.at(R, Col));
      }
      line(L);
    } else if (const auto *P = dyn_cast<ParallelizeTemplate>(Step.get())) {
      std::string L = "parallelize";
      bool Any = false;
      for (unsigned K = 0; K < P->parFlag().size(); ++K)
        if (P->parFlag()[K]) {
          L += " " + std::to_string(K + 1);
          Any = true;
        }
      if (Any)
        line(L);
    } else if (const auto *B = dyn_cast<BlockTemplate>(Step.get())) {
      std::string L = "block " + std::to_string(B->rangeBegin()) + " " +
                      std::to_string(B->rangeEnd());
      for (const ExprRef &E : B->bsize()) {
        std::string Tok;
        if (!sizeToken(E, Tok))
          return Failure("cannot serialize Block size expression '" +
                         E->str() + "' as a script token");
        L += " " + Tok;
      }
      line(L);
    } else if (const auto *Co = dyn_cast<CoalesceTemplate>(Step.get())) {
      line("coalesce " + std::to_string(Co->rangeBegin()) + " " +
           std::to_string(Co->rangeEnd()));
    } else if (const auto *IL = dyn_cast<InterleaveTemplate>(Step.get())) {
      std::string L = "interleave " + std::to_string(IL->rangeBegin()) +
                      " " + std::to_string(IL->rangeEnd());
      for (const ExprRef &E : IL->isize()) {
        std::string Tok;
        if (!sizeToken(E, Tok))
          return Failure("cannot serialize Interleave size expression '" +
                         E->str() + "' as a script token");
        L += " " + Tok;
      }
      line(L);
    } else if (const auto *SM = dyn_cast<StripMineTemplate>(Step.get())) {
      std::string Tok;
      if (!sizeToken(SM->size(), Tok))
        return Failure("cannot serialize StripMine size expression '" +
                       SM->size()->str() + "' as a script token");
      line("stripmine " + std::to_string(SM->position()) + " " + Tok);
    } else {
      return Failure("no script directive for template " + Step->str());
    }
  }
  return Out;
}
