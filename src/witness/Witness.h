//===- witness/Witness.h - Machine-checkable legality certificates -------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Certificates for legality verdicts (docs/LEGALITY.md). The uniform
/// legality test of Section 3.2 answers yes/no; this layer makes either
/// answer *checkable by a third party that does not trust the test*:
///
///  - An acceptance certificate is the per-stage rule-application trace:
///    for every stage t_k, the dependence set entering it and the set
///    t_k's Table 2 mapping rule produced, ending in the final set the
///    lexicographic test ran on.
///
///  - A rejection certificate names the structured reject kind and, for
///    lex-negative rejections, the offending mapped vector together with
///    a concrete lexicographically negative member tuple - and, when
///    bounded concrete execution can find one, a concrete violating
///    iteration pair (two dependent instances of the original nest that
///    the transformed nest reorders or leaves unordered under a pardo),
///    which replays through the Evaluator independently of the legality
///    machinery.
///
/// checkCertificate() is the machine checker: it re-derives every stage
/// mapping, re-tests tuple membership and lexicographic negativity, and
/// replays concrete pairs by execution. It shares no verdict state with
/// certify() beyond the template mapping rules themselves.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_WITNESS_WITNESS_H
#define IRLT_WITNESS_WITNESS_H

#include "eval/Evaluator.h"
#include "transform/Sequence.h"

#include <map>
#include <string>
#include <vector>

namespace irlt {
namespace witness {

/// Budgets and parameter bindings for the concrete-execution parts of
/// certification (finding and replaying violating iteration pairs).
struct WitnessOptions {
  /// Parameter bindings tried in order when hunting a concrete violating
  /// pair. Mirrors the fuzzer's defaults so certificates and fuzz
  /// reproducers agree on what "concrete" means.
  std::vector<std::map<std::string, int64_t>> Bindings;
  uint64_t MaxInstances = 200'000;
  /// Wall budget per evaluation; 0 keeps certification deterministic.
  uint64_t WallBudgetMillis = 0;

  static WitnessOptions defaults();
};

/// One stage of an acceptance trace: the Table 2 rule application
/// D_k -> D_{k+1} of stage \p Stage (1-based).
struct StageTrace {
  unsigned Stage = 0;
  std::string Template; ///< TransformTemplate::str() of the stage
  DepSet In;            ///< dependence set entering the stage
  DepSet Out;           ///< set produced by the stage's mapping rule
};

/// A machine-checkable certificate for one legality verdict.
struct Certificate {
  bool Accepted = false;

  //===--- Acceptance side --------------------------------------------------
  /// Per-stage rule-application trace; Stages.back().Out == FinalDeps.
  std::vector<StageTrace> Stages;
  /// The set the final lexicographic test ran on.
  DepSet FinalDeps;

  //===--- Rejection side ---------------------------------------------------
  LegalityResult::RejectKind Kind = LegalityResult::RejectKind::None;
  /// Rendered reason (LegalityResult::Reason).
  std::string Reason;
  /// Structured reason (stage index, template name).
  Diag Why;

  /// Lex-negative rejections: a mapped vector admitting a negative tuple,
  /// plus one concrete lexicographically negative member of its Tuples().
  bool HasBadVector = false;
  DepVector BadVector;
  std::vector<int64_t> BadTuple;

  /// A concrete violating iteration pair found by bounded execution under
  /// PairBinding: SrcIter depends-before DstIter in the original nest,
  /// but the transformed nest runs them at positions SrcPosT >= DstPosT
  /// (or unordered under a pardo loop).
  bool HasPair = false;
  std::map<std::string, int64_t> PairBinding;
  std::vector<int64_t> SrcIter;
  std::vector<int64_t> DstIter;
  uint64_t SrcPosT = 0;
  uint64_t DstPosT = 0;

  /// Human-readable rendering of the whole certificate.
  std::string str() const;
};

/// Runs the uniform legality test on (\p Seq, \p Nest, \p D) and wraps
/// the verdict in a certificate. Never fails: when a witness ingredient
/// cannot be produced (e.g. no binding yields a concrete pair within
/// budget) the certificate simply carries less evidence - the flags say
/// what is present.
Certificate certify(const TransformSequence &Seq, const LoopNest &Nest,
                    const DepSet &D,
                    const WitnessOptions &Opts = WitnessOptions::defaults());

/// The machine checker: re-derives every claim \p C makes about
/// (\p Seq, \p Nest, \p D). \returns an empty string when the
/// certificate checks out, else a description of the first discrepancy.
std::string checkCertificate(const Certificate &C,
                             const TransformSequence &Seq,
                             const LoopNest &Nest, const DepSet &D,
                             const WitnessOptions &Opts =
                                 WitnessOptions::defaults());

/// Replays a claimed violating iteration pair through the Evaluator:
/// verifies that \p Src and \p Dst (original BodyIndexVars tuples) are
/// dependent instances executing Src-before-Dst in \p Original, and that
/// \p Transformed either runs them with Src at-or-after Dst or leaves
/// them unordered under a pardo loop. \returns empty on success, else
/// the discrepancy. Shared by checkCertificate() and the tests that
/// round-trip VerifyCounterexample values through the checker.
std::string checkViolationPair(const LoopNest &Original,
                               const LoopNest &Transformed,
                               const std::vector<int64_t> &Src,
                               const std::vector<int64_t> &Dst,
                               const EvalConfig &Config);

/// Extracts one concrete lexicographically negative tuple from
/// Tuples(\p V), or an empty vector when none exists (mirrors
/// DepVector::canBeLexNegative). Exposed for tests.
std::vector<int64_t> lexNegativeTuple(const DepVector &V);

/// Serializes \p Seq into the irlt-opt script syntax (driver/Script.h),
/// one directive per line, so a certificate or validation reproducer can
/// be replayed with `irlt-opt NEST -f SCRIPT`. Fails for template kinds
/// the script language cannot express (custom templates other than
/// StripMine, or symbolic sizes that are not plain names).
ErrorOr<std::string> scriptForSequence(const TransformSequence &Seq);

} // namespace witness
} // namespace irlt

#endif // IRLT_WITNESS_WITNESS_H
