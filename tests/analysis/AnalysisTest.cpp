//===- tests/analysis/AnalysisTest.cpp - Static analysis unit tests ------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the static diagnostic engine: registry integrity,
/// identity-stage detection, the fix-it fixed point, the error-clean
/// <=> isLegal agreement invariant on hand-picked sequences, and the
/// E100 pre-filter predicate the search engine uses.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"

#include "dependence/DepAnalysis.h"
#include "driver/Script.h"
#include "ir/Parser.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;
using namespace irlt::analysis;

namespace {

LoopNest nest(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return N.take();
}

TransformSequence script(const std::string &Text, unsigned NumLoops) {
  ErrorOr<TransformSequence> S = parseTransformScript(Text, NumLoops);
  EXPECT_TRUE(static_cast<bool>(S)) << S.message();
  return S.take();
}

const std::string RectDep = "do i = 1, n\n"
                            "  do j = 1, m\n"
                            "    a(i, j) = a(i - 1, j) + 1\n"
                            "  enddo\n"
                            "enddo\n";

const std::string Triangular = "do i = 1, n\n"
                               "  do j = 1, i\n"
                               "    a(i, j) = a(i, j) + 1\n"
                               "  enddo\n"
                               "enddo\n";

TEST(RuleRegistry, ErrorRulesFirstUniqueIdsAndCitations) {
  const std::vector<RuleInfo> &Rules = ruleRegistry();
  ASSERT_FALSE(Rules.empty());
  bool SeenWarning = false;
  std::set<std::string> Ids;
  for (const RuleInfo &R : Rules) {
    EXPECT_TRUE(Ids.insert(R.Id).second) << "duplicate rule id " << R.Id;
    EXPECT_NE(std::string(R.Citation), "") << R.Id << " has no citation";
    EXPECT_NE(std::string(R.Title), "") << R.Id << " has no title";
    if (R.Severity == FindingSeverity::Warning)
      SeenWarning = true;
    else
      EXPECT_FALSE(SeenWarning) << "error rule " << R.Id
                                << " listed after a warning rule";
  }
  // The documented core set must exist.
  for (const char *Id :
       {"E100", "E101", "E102", "E103", "E104", "E105", "E106", "W200",
        "W201", "W202", "W203", "W204"})
    EXPECT_NE(findRule(Id), nullptr) << Id;
  EXPECT_EQ(findRule("E999"), nullptr);
}

TEST(IdentityStage, DetectsIdentityTemplates) {
  EXPECT_TRUE(
      isIdentityStage(*makeUnimodular(2, UnimodularMatrix::identity(2))));
  EXPECT_TRUE(isIdentityStage(
      *makeReversePermute(2, {false, false}, {0, 1})));
  EXPECT_TRUE(isIdentityStage(*makeParallelize(2, {false, false})));

  EXPECT_FALSE(isIdentityStage(
      *makeReversePermute(2, {false, false}, {1, 0})));
  EXPECT_FALSE(isIdentityStage(*makeParallelize(2, {true, false})));
  EXPECT_FALSE(
      isIdentityStage(*makeUnimodular(2, UnimodularMatrix::skew(2, 0, 1, 1))));
}

TEST(Fixit, StripsIdentityStagesToAFixedPoint) {
  // interchange ; interchange fuses to an identity ReversePermute, which
  // must itself be stripped - the fix-it iterates to a fixed point.
  TransformSequence Seq =
      script("interchange 1 2\ninterchange 1 2\nparallelize 1", 2);
  TransformSequence Fixed = fixitSequence(Seq);
  ASSERT_EQ(Fixed.size(), 1u);
  EXPECT_EQ(Fixed.steps()[0]->kind(), TransformTemplate::Kind::Parallelize);
}

TEST(Fixit, IdentityInputYieldsEmptySequence) {
  TransformSequence Seq = script("interchange 1 2\ninterchange 1 2", 2);
  EXPECT_EQ(fixitSequence(Seq).size(), 0u);
}

TEST(Analyze, CleanLegalScriptHasNoFindings) {
  LoopNest N = nest(RectDep);
  DepSet D = analyzeDependences(N);
  AnalysisReport R = analyzeSequence(script("interchange 1 2", 2), N, D);
  EXPECT_EQ(R.errorCount(), 0u);
  EXPECT_EQ(R.warningCount(), 0u);
  EXPECT_FALSE(R.Fixed.has_value());
}

TEST(Analyze, AgreesWithIsLegalOnSamples) {
  struct Sample {
    std::string Nest;
    std::string Script;
  };
  const Sample Samples[] = {
      {RectDep, "interchange 1 2"},
      {RectDep, "reverse 1"},
      {RectDep, "parallelize 1"},
      {RectDep, "parallelize 2"},
      {Triangular, "interchange 1 2"},
      {Triangular, "coalesce 1 2"},
      {Triangular, "block 1 2 4 4"},
      {Triangular, "skew 2 1 1\nunimodular 1 0 / -1 1"},
      {RectDep, "stripmine 1 4\ninterchange 2 3"},
  };
  for (const Sample &S : Samples) {
    LoopNest N = nest(S.Nest);
    DepSet D = analyzeDependences(N);
    TransformSequence Seq = script(S.Script, N.numLoops());
    LegalityResult L = isLegal(Seq, N, D);
    AnalysisReport R = analyzeSequence(Seq, N, D);
    EXPECT_EQ(L.Legal, !R.hasErrors())
        << "analyzer disagrees with isLegal on <" << S.Script << ">: "
        << L.Reason;
  }
}

TEST(Analyze, ErrorFindingCarriesProvenance) {
  LoopNest N = nest(Triangular);
  DepSet D = analyzeDependences(N);
  AnalysisReport R = analyzeSequence(script("interchange 1 2", 2), N, D);
  ASSERT_EQ(R.errorCount(), 1u);
  const Finding &F = R.Findings.front();
  EXPECT_EQ(F.RuleId, "E101");
  EXPECT_EQ(F.Stage, 1u);
  EXPECT_EQ(F.TemplateName, "ReversePermute");
  EXPECT_EQ(F.Lattice, "linear");
  EXPECT_NE(F.Bounds, "");
  EXPECT_NE(F.Citation, "");
}

TEST(Analyze, NoLintOptionSuppressesWarningsOnly) {
  LoopNest N = nest(RectDep);
  DepSet D = analyzeDependences(N);
  TransformSequence Seq =
      script("interchange 1 2\ninterchange 1 2\nparallelize 1", 2);
  AnalysisReport Full = analyzeSequence(Seq, N, D);
  EXPECT_GT(Full.warningCount(), 0u);
  EXPECT_TRUE(Full.Fixed.has_value());

  AnalysisOptions NoLint;
  NoLint.Lint = false;
  AnalysisReport Errors = analyzeSequence(Seq, N, D, NoLint);
  EXPECT_EQ(Errors.warningCount(), 0u);
  EXPECT_EQ(Errors.errorCount(), Full.errorCount());
}

TEST(Analyze, ToDiagsPrefixesRuleIds) {
  LoopNest N = nest(Triangular);
  DepSet D = analyzeDependences(N);
  AnalysisReport R = analyzeSequence(script("interchange 1 2", 2), N, D);
  std::vector<Diag> Diags = toDiags(R);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Severity, DiagSeverity::Error);
  EXPECT_EQ(Diags[0].Stage, 1u);
  EXPECT_EQ(Diags[0].Message.rfind("[E101] ", 0), 0u) << Diags[0].Message;
}

TEST(Analyze, RegistryVersionCoversCrossCheckRules) {
  // Version 2 added W205/W206; the version must move with the registry so
  // --json consumers can trust rule semantics.
  EXPECT_EQ(ruleRegistryVersion(), 2u);
  EXPECT_NE(findRule("W205"), nullptr);
  EXPECT_NE(findRule("W206"), nullptr);
  EXPECT_EQ(findRule("W205")->Severity, FindingSeverity::Warning);
  EXPECT_EQ(findRule("W206")->Severity, FindingSeverity::Warning);
}

TEST(Analyze, CrossCheckDepsReportsPrecisionGapAsW205) {
  // Strided-outer triangular nest where the production analyzer keeps a
  // (0, 2) vector the exact backend disproves (the inner range is too
  // narrow): W205 with the vector as provenance, and only when the
  // cross-check option is on (it is costly and off by default).
  LoopNest N = nest("do i = 0, 5, 2\n"
                    "  do j = 3, i\n"
                    "    a(i, j) = a(i, j) + a(i - 1, j + 1) + a(i, j - 2)\n"
                    "  enddo\n"
                    "enddo\n");
  DepSet D = analyzeDependences(N);
  TransformSequence Seq;

  AnalysisReport Off = analyzeSequence(Seq, N, D);
  for (const Finding &F : Off.Findings) {
    EXPECT_NE(F.RuleId, "W205") << F.Message;
    EXPECT_NE(F.RuleId, "W206") << F.Message;
  }

  AnalysisOptions AO;
  AO.CrossCheckDeps = true;
  AnalysisReport On = analyzeSequence(Seq, N, D, AO);
  bool SawW205 = false;
  for (const Finding &F : On.Findings) {
    EXPECT_NE(F.RuleId, "W206") << F.Message;
    if (F.RuleId == "W205") {
      SawW205 = true;
      EXPECT_EQ(F.DepVector, "(0, 2)");
      EXPECT_EQ(F.Severity, FindingSeverity::Warning);
    }
  }
  EXPECT_TRUE(SawW205);
  EXPECT_EQ(On.errorCount(), 0u);
}

TEST(Analyze, CrossCheckDepsCleanOnAgreeingNest) {
  LoopNest N = nest(RectDep);
  DepSet D = analyzeDependences(N);
  AnalysisOptions AO;
  AO.CrossCheckDeps = true;
  AnalysisReport R = analyzeSequence(TransformSequence(), N, D, AO);
  for (const Finding &F : R.Findings) {
    EXPECT_NE(F.RuleId, "W205") << F.Message;
    EXPECT_NE(F.RuleId, "W206") << F.Message;
  }
}

TEST(PreFilter, FinalDepsRejectableMatchesLexTest) {
  LoopNest N = nest(RectDep);
  DepSet D = analyzeDependences(N);
  EXPECT_FALSE(finalDepsRejectable(D));

  TransformSequence Rev = script("reverse 1", 2);
  DepSet Mapped = Rev.steps()[0]->mapDependences(D);
  EXPECT_TRUE(finalDepsRejectable(Mapped));
}

} // namespace
