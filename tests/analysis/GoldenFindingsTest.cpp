//===- tests/analysis/GoldenFindingsTest.cpp - Golden analyzer output -----===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the analyzer's exact JSON report - rule id, stage, template,
/// lattice element, dependence vector, bounds expression - for one
/// hand-written illegal script per Table 1 kernel template (plus the
/// StripMine extension and an overflow chain), and for the five strided
/// nests behind the former soundness gap (ISSUE 3's regression corpus).
///
/// Data lives in tests/data/analysis/: <case>.nest, <case>.script, and
/// <case>.golden holding the byte-exact writeReport() rendering. Set
/// IRLT_UPDATE_GOLDEN=1 to regenerate the goldens after an intentional
/// rule or message change; the diff is then reviewed like any other.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "dependence/DepAnalysis.h"
#include "driver/Script.h"
#include "ir/Parser.h"
#include "support/Json.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

using namespace irlt;

namespace {

std::string dataPath(const std::string &Name) {
  return std::string(IRLT_ANALYSIS_DATA_DIR) + "/" + Name;
}

std::string readFileOrEmpty(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Runs the analyzer on one corpus case and compares the byte-exact
/// writeReport() JSON against <case>.golden.
void checkGolden(const std::string &Case) {
  std::string NestSrc = readFileOrEmpty(dataPath(Case + ".nest"));
  ASSERT_FALSE(NestSrc.empty()) << "missing " << Case << ".nest";
  ErrorOr<LoopNest> NestOr = parseLoopNest(NestSrc);
  ASSERT_TRUE(static_cast<bool>(NestOr)) << NestOr.message();
  LoopNest Nest = NestOr.take();

  std::string Script = readFileOrEmpty(dataPath(Case + ".script"));
  ErrorOr<TransformSequence> SeqOr =
      parseTransformScript(Script, Nest.numLoops());
  ASSERT_TRUE(static_cast<bool>(SeqOr)) << SeqOr.message();

  DepSet D = analyzeDependences(Nest);
  analysis::AnalysisReport AR = analysis::analyzeSequence(*SeqOr, Nest, D);

  json::JsonWriter W;
  analysis::writeReport(W, AR);
  std::string Actual = W.take() + "\n";

  std::string GoldenPath = dataPath(Case + ".golden");
  if (std::getenv("IRLT_UPDATE_GOLDEN")) {
    std::ofstream Out(GoldenPath);
    ASSERT_TRUE(Out.good()) << "cannot write " << GoldenPath;
    Out << Actual;
    return;
  }
  std::string Expected = readFileOrEmpty(GoldenPath);
  ASSERT_FALSE(Expected.empty())
      << "missing golden file " << GoldenPath
      << " (run with IRLT_UPDATE_GOLDEN=1 to generate)";
  EXPECT_EQ(Actual, Expected) << "analyzer output drifted for " << Case;
}

// One illegal script per Table 1 kernel template, each pinning the rule
// id, stage index, and inferred lattice element of the explanation.

TEST(GoldenFindings, UnimodularOnParallelLoop) {
  checkGolden("unimodular_parallel"); // E101, stage 2, invar
}

TEST(GoldenFindings, ReversePermuteTriangular) {
  checkGolden("reversepermute_triangular"); // E101, stage 1, linear
}

TEST(GoldenFindings, ParallelizeCarriedDependence) {
  checkGolden("parallelize_carried"); // E100, whole-sequence, invar
}

TEST(GoldenFindings, BlockStridedVaryingStart) {
  checkGolden("block_strided_start"); // E102, stage 1, linear
}

TEST(GoldenFindings, CoalesceTriangular) {
  checkGolden("coalesce_triangular"); // E101, stage 1, linear
}

TEST(GoldenFindings, InterleaveNegativeInnerDistance) {
  checkGolden("interleave_negative_inner"); // E100, linear
}

TEST(GoldenFindings, StripMineAnchorDependence) {
  checkGolden("stripmine_anchor"); // E103, stage 1, linear
}

TEST(GoldenFindings, OverflowSkewChain) {
  checkGolden("overflow_skew_chain"); // E104 + W200/W204 + fix-it
}

// The five pinned strided-soundness regression nests: the analyzer's
// verdict on each must stay byte-stable (and agree with isLegal, which
// the fuzz oracle enforces globally).

TEST(GoldenFindings, Strided1BlockUnimodularChain) {
  checkGolden("strided1_block_unimodular");
}

TEST(GoldenFindings, Strided2LowerBoundPermute) {
  checkGolden("strided2_lower_bound_permute");
}

TEST(GoldenFindings, Strided3StripMineReversal) {
  checkGolden("strided3_stripmine_reversal");
}

TEST(GoldenFindings, Strided4FastPathSkewChain) {
  checkGolden("strided4_fast_path_skew");
}

TEST(GoldenFindings, Strided5SearchNestIdentity) {
  checkGolden("strided5_search_nest");
}

} // namespace
