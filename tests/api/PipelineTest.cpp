//===- tests/api/PipelineTest.cpp - irlt::api facade tests ----------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "api/Pipeline.h"

#include <gtest/gtest.h>

#include <thread>

using namespace irlt;
using namespace irlt::api;

namespace {

const char *Matmul = "arrays B, C\n"
                     "do i = 1, n\n"
                     "  do j = 1, n\n"
                     "    do k = 1, n\n"
                     "      A(i, j) += B(i, k) * C(k, j)\n"
                     "    enddo\n"
                     "  enddo\n"
                     "enddo\n";

const char *Stencil =
    "do i = 2, n - 1\n"
    "  do j = 2, n - 1\n"
    "    a(i, j) = (a(i, j) + a(i - 1, j) + a(i, j - 1) + a(i + 1, j) + "
    "a(i, j + 1)) / 5\n"
    "  enddo\n"
    "enddo\n";

LoopNest load(Pipeline &P, const char *Src) {
  ErrorOr<LoopNest> N = P.loadNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return N.take();
}

} // namespace

TEST(Pipeline, LoadParseApplyEmit) {
  Pipeline P;
  LoopNest Nest = load(P, Matmul);
  ErrorOr<TransformSequence> Seq = P.parseScript("interchange 1 3", 3);
  ASSERT_TRUE(static_cast<bool>(Seq)) << Seq.message();
  ErrorOr<LoopNest> Out = P.apply(*Seq, Nest);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->numLoops(), 3u);
  EXPECT_NE(P.emit(*Out, EmitKind::Loop).find("do"), std::string::npos);
  EXPECT_NE(P.emit(*Out, EmitKind::C).find("kernel"), std::string::npos);
  // applyScript is the one-shot composition of the two.
  ErrorOr<LoopNest> Out2 = P.applyScript(Nest, "interchange 1 3");
  ASSERT_TRUE(static_cast<bool>(Out2)) << Out2.message();
  EXPECT_EQ(Out->str(), Out2->str());
}

TEST(Pipeline, StructuredFailuresCarryDiags) {
  Pipeline P;
  ErrorOr<LoopNest> Bad = P.loadNest("do i = \n");
  EXPECT_FALSE(static_cast<bool>(Bad));
  EXPECT_FALSE(Bad.message().empty());
  ErrorOr<TransformSequence> BadSeq = P.parseScript("frobnicate 1 2", 2);
  EXPECT_FALSE(static_cast<bool>(BadSeq));
  EXPECT_FALSE(BadSeq.diags().empty());
}

TEST(Pipeline, DependenceCacheHitsOnRepeatAndRename) {
  Pipeline P;
  LoopNest Nest = load(P, Stencil);
  std::shared_ptr<const DepSet> D1 = P.dependences(Nest);
  CacheStats S1 = P.cacheStats();
  EXPECT_EQ(S1.DepMisses, 1u);
  EXPECT_EQ(S1.DepHits, 0u);

  std::shared_ptr<const DepSet> D2 = P.dependences(Nest);
  EXPECT_EQ(D1.get(), D2.get()) << "repeat lookup must share the entry";

  // An alpha-renamed copy of the same nest is the same cache entry.
  LoopNest Renamed = load(
      P, "do p = 2, n - 1\n"
         "  do q = 2, n - 1\n"
         "    a(p, q) = (a(p, q) + a(p - 1, q) + a(p, q - 1) + a(p + 1, q) + "
         "a(p, q + 1)) / 5\n"
         "  enddo\n"
         "enddo\n");
  std::shared_ptr<const DepSet> D3 = P.dependences(Renamed);
  EXPECT_EQ(D1.get(), D3.get());
  CacheStats S3 = P.cacheStats();
  EXPECT_EQ(S3.DepMisses, 1u);
  EXPECT_EQ(S3.DepHits, 2u);
  EXPECT_EQ(S3.DepEntries, 1u);
  EXPECT_GT(S3.depHitRate(), 0.5);
}

TEST(Pipeline, LegalityCacheKeysOnReducedSequence) {
  Pipeline P;
  LoopNest Nest = load(P, Matmul);
  ErrorOr<TransformSequence> A = P.parseScript("interchange 1 2", 3);
  ASSERT_TRUE(static_cast<bool>(A));
  LegalityResult L1 = P.checkLegality(*A, Nest);
  EXPECT_TRUE(L1.Legal);
  EXPECT_EQ(P.cacheStats().LegalityMisses, 1u);

  // A different spelling with the same reduced() form hits the entry.
  ErrorOr<TransformSequence> B = P.parseScript("permute 2 1 3", 3);
  ASSERT_TRUE(static_cast<bool>(B));
  ASSERT_EQ(A->reduced().str(), B->reduced().str());
  LegalityResult L2 = P.checkLegality(*B, Nest);
  EXPECT_EQ(P.cacheStats().LegalityHits, 1u);
  EXPECT_EQ(L1.Legal, L2.Legal);
  EXPECT_EQ(L1.FinalDeps.str(), L2.FinalDeps.str());

  // A genuinely different sequence is a different entry.
  ErrorOr<TransformSequence> C = P.parseScript("interchange 1 3", 3);
  ASSERT_TRUE(static_cast<bool>(C));
  P.checkLegality(*C, Nest);
  EXPECT_EQ(P.cacheStats().LegalityMisses, 2u);
}

TEST(Pipeline, CachedAndUncachedVerdictsAgree) {
  PipelineOptions Off;
  Off.EnableCache = false;
  Pipeline Cached, Uncached(Off);
  LoopNest Nest = load(Cached, Stencil);
  ErrorOr<TransformSequence> Seq =
      Cached.parseScript("skew 1 2 1\ninterchange 1 2", 2);
  ASSERT_TRUE(static_cast<bool>(Seq));
  TransformSequence R = Seq->reduced();
  for (const TransformSequence &S : {*Seq, R}) {
    LegalityResult LC = Cached.checkLegality(S, Nest);
    LegalityResult LU = Uncached.checkLegality(S, Nest);
    EXPECT_EQ(LC.Legal, LU.Legal);
    EXPECT_EQ(LC.Kind, LU.Kind);
    EXPECT_EQ(LC.Reason, LU.Reason);
    EXPECT_EQ(LC.FinalDeps.str(), LU.FinalDeps.str());
  }
  EXPECT_EQ(Uncached.cacheStats().DepMisses, 0u);
  EXPECT_EQ(Uncached.cacheStats().LegalityMisses, 0u);
}

TEST(Pipeline, ClearCachesDropsEntries) {
  Pipeline P;
  LoopNest Nest = load(P, Stencil);
  P.dependences(Nest);
  P.checkLegality(TransformSequence(), Nest);
  EXPECT_GT(P.cacheStats().DepEntries, 0u);
  P.clearCaches();
  EXPECT_EQ(P.cacheStats().DepEntries, 0u);
  EXPECT_EQ(P.cacheStats().LegalityEntries, 0u);
}

TEST(Pipeline, SearchAutoFindsLegalSequence) {
  Pipeline P;
  LoopNest Nest = load(P, Matmul);
  search::SearchOptions SO;
  SO.Beam = 4;
  SO.Depth = 1;
  search::SearchResult R = P.searchAuto(Nest, SO);
  EXPECT_TRUE(R.Error.empty()) << R.Error;
  ASSERT_TRUE(R.Best.has_value());
  LegalityResult L = P.checkLegality(R.Best->Seq, Nest);
  EXPECT_TRUE(L.Legal) << L.Reason;
}

TEST(Pipeline, ValidateLadderConfirmsLegalCandidate) {
  Pipeline P;
  LoopNest Nest = load(P, Matmul);
  ErrorOr<TransformSequence> Seq = P.parseScript("interchange 1 2", 3);
  ASSERT_TRUE(static_cast<bool>(Seq));
  witness::ValidateOptions VO = witness::ValidateOptions::defaults();
  VO.MaxInstances = 10'000;
  VO.ReproDir.clear();
  witness::LadderResult LR = P.validate(Nest, {*Seq}, VO);
  EXPECT_EQ(LR.Chosen, 0);
  ASSERT_EQ(LR.Outcomes.size(), 1u);
  EXPECT_EQ(LR.Outcomes[0].Status, witness::ValidateStatus::Confirmed)
      << LR.Outcomes[0].Detail;
}

TEST(Pipeline, CertifyAndCheckRoundTrip) {
  Pipeline P;
  LoopNest Nest = load(P, Matmul);
  ErrorOr<TransformSequence> Seq = P.parseScript("interchange 1 2", 3);
  ASSERT_TRUE(static_cast<bool>(Seq));
  witness::Certificate C = P.certify(*Seq, Nest);
  EXPECT_EQ(P.checkCertificate(C, *Seq, Nest), "");
}

TEST(Pipeline, ConcurrentLookupsAreSafeAndConsistent) {
  Pipeline P;
  LoopNest Nest = load(P, Stencil);
  ErrorOr<TransformSequence> Seq =
      P.parseScript("skew 1 2 1\ninterchange 1 2", 2);
  ASSERT_TRUE(static_cast<bool>(Seq));
  TransformSequence R = Seq->reduced();
  LegalityResult Expected = P.checkLegality(R, Nest);

  std::vector<std::thread> Threads;
  std::vector<int> Bad(8, 0);
  for (int T = 0; T < 8; ++T) {
    Threads.emplace_back([&, T] {
      for (int I = 0; I < 50; ++I) {
        LegalityResult L = P.checkLegality(R, Nest);
        if (L.Legal != Expected.Legal ||
            L.FinalDeps.str() != Expected.FinalDeps.str())
          Bad[T]++;
        if (!P.dependences(Nest))
          Bad[T]++;
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  for (int B : Bad)
    EXPECT_EQ(B, 0);
  CacheStats S = P.cacheStats();
  EXPECT_EQ(S.DepEntries, 1u);
  EXPECT_EQ(S.LegalityEntries, 1u);
}

TEST(Pipeline, CacheCapacityEvictsDeterministicallyAndRecomputesIdentically) {
  PipelineOptions Bounded;
  Bounded.CacheCapacity = 1;
  Pipeline Tiny(Bounded), Unbounded;
  LoopNest A = load(Tiny, Matmul);
  LoopNest B = load(Tiny, Stencil);
  LoopNest AU = load(Unbounded, Matmul);
  LoopNest BU = load(Unbounded, Stencil);

  // Alternating two nests through a capacity-1 cache churns constantly;
  // every recompute must match the unbounded pipeline's entry exactly.
  std::string RefA = Unbounded.dependences(AU)->str();
  std::string RefB = Unbounded.dependences(BU)->str();
  for (int I = 0; I < 4; ++I) {
    EXPECT_EQ(Tiny.dependences(A)->str(), RefA);
    EXPECT_EQ(Tiny.dependences(B)->str(), RefB);
  }

  CacheStats S = Tiny.cacheStats();
  EXPECT_GT(S.DepEvictions, 0u) << "capacity 1 under two keys must evict";
  EXPECT_LE(S.DepEntries, 1u);
  EXPECT_EQ(S.DepHits + S.DepMisses, S.DepLookups);
  EXPECT_EQ(S.DepInserts - S.DepEvictions, S.DepEntries);

  // Same churn on the legality cache: two sequences against one nest.
  ErrorOr<TransformSequence> S1 = Tiny.parseScript("interchange 1 2", 3);
  ErrorOr<TransformSequence> S2 = Tiny.parseScript("interchange 1 3", 3);
  ASSERT_TRUE(static_cast<bool>(S1) && static_cast<bool>(S2));
  LegalityResult R1 = Unbounded.checkLegality(*S1, AU);
  LegalityResult R2 = Unbounded.checkLegality(*S2, AU);
  for (int I = 0; I < 4; ++I) {
    LegalityResult T1 = Tiny.checkLegality(*S1, A);
    LegalityResult T2 = Tiny.checkLegality(*S2, A);
    EXPECT_EQ(T1.Legal, R1.Legal);
    EXPECT_EQ(T1.FinalDeps.str(), R1.FinalDeps.str());
    EXPECT_EQ(T2.Legal, R2.Legal);
    EXPECT_EQ(T2.FinalDeps.str(), R2.FinalDeps.str());
  }
  S = Tiny.cacheStats();
  EXPECT_GT(S.LegalityEvictions, 0u);
  EXPECT_LE(S.LegalityEntries, 1u);
  EXPECT_EQ(S.LegalityHits + S.LegalityMisses, S.LegalityLookups);
  EXPECT_EQ(S.LegalityInserts - S.LegalityEvictions, S.LegalityEntries);
}

TEST(Pipeline, CacheCountersAreStableAcrossIdenticalRuns) {
  // Eviction determinism: the same access sequence yields the same
  // counters, not merely the same values (recency is never timing-based).
  auto runOnce = [] {
    PipelineOptions O;
    O.CacheCapacity = 2;
    Pipeline P(O);
    LoopNest A = load(P, Matmul);
    LoopNest B = load(P, Stencil);
    for (int I = 0; I < 6; ++I)
      P.dependences(I % 3 == 0 ? B : A);
    return P.cacheStats();
  };
  CacheStats X = runOnce(), Y = runOnce();
  EXPECT_EQ(X.DepHits, Y.DepHits);
  EXPECT_EQ(X.DepMisses, Y.DepMisses);
  EXPECT_EQ(X.DepInserts, Y.DepInserts);
  EXPECT_EQ(X.DepEvictions, Y.DepEvictions);
  EXPECT_EQ(X.DepEntries, Y.DepEntries);
}
