//===- tests/bounds/BoundsMatricesTest.cpp ---------------------------------===//

#include "bounds/BoundsMatrices.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

TEST(BoundsMatrices, DecomposeBoundSplitsIndexAndInvariant) {
  ErrorOr<LoopNest> N = parseLoopNest("do i = 1, n\n"
                                      "  do j = 2*i + m - 4, n\n"
                                      "    a(i, j) = 1\n"
                                      "  enddo\n"
                                      "enddo\n");
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  BoundIneq Q = decomposeBound(LinExpr::fromExpr(N->Loops[1].Lower), *N);
  EXPECT_EQ(Q.Coef[0], 2); // coefficient of i
  EXPECT_EQ(Q.Coef[1], 0);
  EXPECT_EQ(Q.InvariantPart->str(), "m - 4");
  EXPECT_FALSE(Q.NonlinearFold);
}

TEST(BoundsMatrices, NonlinearTermsFoldIntoColumnZero) {
  ErrorOr<LoopNest> N = parseLoopNest("do i = 1, n\n"
                                      "  do j = i*i + 2*i, n\n"
                                      "    a(i, j) = 1\n"
                                      "  enddo\n"
                                      "enddo\n");
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  BoundIneq Q = decomposeBound(LinExpr::fromExpr(N->Loops[1].Lower), *N);
  EXPECT_EQ(Q.Coef[0], 2); // the linear part of i stays a coefficient
  EXPECT_TRUE(Q.NonlinearFold);
  EXPECT_EQ(Q.InvariantPart->str(), "i*i"); // i*i joins column 0
}

TEST(BoundsMatrices, NegativeStepSwapsSplittableSides) {
  // With a negative step, the *start* bound splits on min and the end
  // bound on max.
  ErrorOr<LoopNest> N = parseLoopNest("do i = min(n, m), max(1, p), -1\n"
                                      "  a(i) = 1\n"
                                      "enddo\n");
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  BoundsMatrices M = BoundsMatrices::fromNest(*N);
  EXPECT_EQ(M.lb(0).Ineqs.size(), 2u);
  EXPECT_EQ(M.ub(0).Ineqs.size(), 2u);
}

TEST(BoundsMatrices, UnsplittableMinMaxStaysOneOpaqueIneq) {
  // A min as a *lower* bound (positive step) cannot decompose into a
  // conjunction; it stays a single opaque inequality.
  ErrorOr<LoopNest> N = parseLoopNest("do i = min(n, m), 100\n"
                                      "  a(i) = 1\n"
                                      "enddo\n");
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  BoundsMatrices M = BoundsMatrices::fromNest(*N);
  ASSERT_EQ(M.lb(0).Ineqs.size(), 1u);
  EXPECT_EQ(M.lb(0).Ineqs[0].InvariantPart->str(), "min(n, m)");
}

TEST(BoundsMatrices, TypeTagsPerEntry) {
  ErrorOr<LoopNest> N = parseLoopNest("do i = 1, 10\n"
                                      "  do j = i, n + i\n"
                                      "    a(i, j) = 1\n"
                                      "  enddo\n"
                                      "enddo\n");
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  BoundsMatrices M = BoundsMatrices::fromNest(*N);
  EXPECT_EQ(M.lbType(0, 1), BoundType::Const); // l1 = 1 w.r.t. i
  EXPECT_EQ(M.lbType(1, 1), BoundType::Linear);
  EXPECT_EQ(M.ubType(1, 1), BoundType::Linear);
  EXPECT_EQ(M.ubType(0, 1), BoundType::Const);
}

} // namespace
