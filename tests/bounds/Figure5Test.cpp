//===- tests/bounds/Figure5Test.cpp - Paper Figure 5 ----------------------===//
//
// Reproduces Figure 5: the LB/UB/STEP coefficient-matrix representation
// of the sample nest
//
//   do i = max(n, 3), 100, 2
//     do j = 1, min(2, i + 512), 1
//       do k = sqrt(i) / 2, 2*j, i
//
// with the figure's entries and type tags:
//   LB(1,0) = <n, 3>;  UB(2,0) = <2, 512> with UB(2,1) = <0, 1>;
//   LB(3,0) = sqrt(i)/2 (nonlinear fold);  UB(3,2) = 2;  STEP(3,1) = 1;
//   type(u2, i) = linear, type(l3, i) = nonlinear, type(u3, j) = linear,
//   type(s3, i) = linear, type = invar or const in all other cases.
//
//===----------------------------------------------------------------------===//

#include "bounds/BoundsMatrices.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest fig5Nest() {
  ErrorOr<LoopNest> N = parseLoopNest("do i = max(n, 3), 100, 2\n"
                                      "  do j = 1, min(2, i + 512), 1\n"
                                      "    do k = sqrt(i) / 2, 2*j, i\n"
                                      "      a(i, j, k) = 1\n"
                                      "    enddo\n"
                                      "  enddo\n"
                                      "enddo\n");
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

TEST(Figure5, LBEntries) {
  BoundsMatrices M = BoundsMatrices::fromNest(fig5Nest());
  ASSERT_EQ(M.numLoops(), 3u);
  // Row 1: the max decomposes into the two inequalities <n, 3>.
  ASSERT_EQ(M.lb(0).Ineqs.size(), 2u);
  EXPECT_EQ(M.lb(0).Ineqs[0].InvariantPart->str(), "n");
  EXPECT_EQ(M.lb(0).Ineqs[1].InvariantPart->str(), "3");
  // Row 2: constant 1.
  ASSERT_EQ(M.lb(1).Ineqs.size(), 1u);
  EXPECT_EQ(M.lb(1).Ineqs[0].InvariantPart->str(), "1");
  // Row 3: sqrt(i)/2 folds into column 0 and is flagged nonlinear.
  ASSERT_EQ(M.lb(2).Ineqs.size(), 1u);
  EXPECT_EQ(M.lb(2).Ineqs[0].InvariantPart->str(), "sqrt(i) / 2");
  EXPECT_TRUE(M.lb(2).Ineqs[0].NonlinearFold);
  EXPECT_EQ(M.lb(2).Ineqs[0].Coef[0], 0); // i's coefficient column is zero
}

TEST(Figure5, UBEntries) {
  BoundsMatrices M = BoundsMatrices::fromNest(fig5Nest());
  // Row 1: 100.
  ASSERT_EQ(M.ub(0).Ineqs.size(), 1u);
  EXPECT_EQ(M.ub(0).Ineqs[0].InvariantPart->str(), "100");
  // Row 2: min<2, i + 512>: invariant parts <2, 512>, i-coefficients
  // <0, 1> - exactly the figure's list entries.
  ASSERT_EQ(M.ub(1).Ineqs.size(), 2u);
  EXPECT_EQ(M.ub(1).Ineqs[0].InvariantPart->str(), "2");
  EXPECT_EQ(M.ub(1).Ineqs[0].Coef[0], 0);
  EXPECT_EQ(M.ub(1).Ineqs[1].InvariantPart->str(), "512");
  EXPECT_EQ(M.ub(1).Ineqs[1].Coef[0], 1);
  // Row 3: 2*j.
  ASSERT_EQ(M.ub(2).Ineqs.size(), 1u);
  EXPECT_EQ(M.ub(2).Ineqs[0].Coef[1], 2);
  EXPECT_EQ(M.ub(2).Ineqs[0].InvariantPart->str(), "0");
}

TEST(Figure5, StepEntries) {
  BoundsMatrices M = BoundsMatrices::fromNest(fig5Nest());
  EXPECT_EQ(M.step(0).InvariantPart->str(), "2");
  EXPECT_EQ(M.step(1).InvariantPart->str(), "1");
  // Step of loop k is the index variable i: coefficient 1 in column 1.
  EXPECT_EQ(M.step(2).Coef[0], 1);
  EXPECT_EQ(M.step(2).InvariantPart->str(), "0");
}

TEST(Figure5, TypeTagsMatchTheFigure) {
  BoundsMatrices M = BoundsMatrices::fromNest(fig5Nest());
  // The figure's named cases (rows/cols are 1-based in the paper).
  EXPECT_EQ(M.ubType(1, 1), BoundType::Linear);    // type(u2, i)
  EXPECT_EQ(M.lbType(2, 1), BoundType::Nonlinear); // type(l3, i)
  EXPECT_EQ(M.ubType(2, 2), BoundType::Linear);    // type(u3, j)
  EXPECT_EQ(M.stepType(2, 1), BoundType::Linear);  // type(s3, i)
  // "type = invar or const, in all other cases."
  EXPECT_TRUE(typeLE(M.lbType(1, 1), BoundType::Invar));
  EXPECT_TRUE(typeLE(M.ubType(2, 1), BoundType::Invar));
  EXPECT_TRUE(typeLE(M.stepType(1, 1), BoundType::Invar));
  EXPECT_TRUE(typeLE(M.lbType(2, 2), BoundType::Invar)); // l3 wrt j
}

TEST(Figure5, RenderingShowsListsAndUndefinedRegion) {
  BoundsMatrices M = BoundsMatrices::fromNest(fig5Nest());
  std::string S = M.str();
  EXPECT_NE(S.find("LB ="), std::string::npos);
  EXPECT_NE(S.find("<n, 3>"), std::string::npos);
  EXPECT_NE(S.find("<2, 512>"), std::string::npos);
  EXPECT_NE(S.find("sqrt(i) / 2"), std::string::npos);
  EXPECT_NE(S.find("STEP ="), std::string::npos);
}

} // namespace
