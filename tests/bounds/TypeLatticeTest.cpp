//===- tests/bounds/TypeLatticeTest.cpp ------------------------------------===//

#include "bounds/TypeLattice.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

ExprRef parse(const std::string &S) {
  ErrorOr<ExprRef> E = parseExpr(S);
  EXPECT_TRUE(static_cast<bool>(E)) << E.message();
  return *E;
}

TEST(TypeLattice, OrderAndJoin) {
  EXPECT_TRUE(typeLE(BoundType::Const, BoundType::Invar));
  EXPECT_TRUE(typeLE(BoundType::Invar, BoundType::Linear));
  EXPECT_TRUE(typeLE(BoundType::Linear, BoundType::Nonlinear));
  EXPECT_FALSE(typeLE(BoundType::Linear, BoundType::Invar));
  EXPECT_TRUE(typeLE(BoundType::Linear, BoundType::Linear));
  EXPECT_EQ(typeJoin(BoundType::Const, BoundType::Linear), BoundType::Linear);
  EXPECT_EQ(typeJoin(BoundType::Nonlinear, BoundType::Invar),
            BoundType::Nonlinear);
}

TEST(TypeLattice, TypeNames) {
  EXPECT_STREQ(typeName(BoundType::Const), "const");
  EXPECT_STREQ(typeName(BoundType::Invar), "invar");
  EXPECT_STREQ(typeName(BoundType::Linear), "linear");
  EXPECT_STREQ(typeName(BoundType::Nonlinear), "nonlinear");
}

TEST(TypeLattice, BasicClassification) {
  EXPECT_EQ(typeOf(parse("3"), "i"), BoundType::Const);
  EXPECT_EQ(typeOf(parse("2*4 - 1"), "i"), BoundType::Const);
  EXPECT_EQ(typeOf(parse("n"), "i"), BoundType::Invar);
  EXPECT_EQ(typeOf(parse("n + 3"), "i"), BoundType::Invar);
  EXPECT_EQ(typeOf(parse("i"), "i"), BoundType::Linear);
  EXPECT_EQ(typeOf(parse("2*i + n"), "i"), BoundType::Linear);
  EXPECT_EQ(typeOf(parse("2*i + n"), "n"), BoundType::Linear);
  EXPECT_EQ(typeOf(parse("i*i"), "i"), BoundType::Nonlinear);
  EXPECT_EQ(typeOf(parse("colstr(i)"), "i"), BoundType::Nonlinear);
  EXPECT_EQ(typeOf(parse("i / 2"), "i"), BoundType::Nonlinear);
  EXPECT_EQ(typeOf(parse("sqrt(i) / 2"), "i"), BoundType::Nonlinear);
  EXPECT_EQ(typeOf(parse("colstr(j)"), "i"), BoundType::Invar);
  EXPECT_EQ(typeOf(parse("i*n"), "i"), BoundType::Nonlinear); // non-const coeff
}

TEST(TypeLattice, CancelledOccurrencesAreInvariant) {
  // i - i cancels in the canonical linear form.
  EXPECT_EQ(typeOf(parse("i - i + n"), "i"), BoundType::Invar);
  EXPECT_EQ(typeOf(parse("i - i + 3"), "i"), BoundType::Const);
}

TEST(TypeLattice, MaxMinSpecialCase) {
  // Positive step: a max lower bound / min upper bound splits per term.
  ExprRef MaxLower = parse("max(2, j - n + 1)");
  EXPECT_EQ(typeOfBound(MaxLower, "j", BoundSide::Lower, 1),
            BoundType::Linear);
  // As a plain expression (or on the wrong side), the max is opaque.
  EXPECT_EQ(typeOf(MaxLower, "j"), BoundType::Nonlinear);
  EXPECT_EQ(typeOfBound(MaxLower, "j", BoundSide::Upper, 1),
            BoundType::Nonlinear);

  ExprRef MinUpper = parse("min(n - 1, j - 2)");
  EXPECT_EQ(typeOfBound(MinUpper, "j", BoundSide::Upper, 1),
            BoundType::Linear);
  EXPECT_EQ(typeOfBound(MinUpper, "j", BoundSide::Lower, 1),
            BoundType::Nonlinear);

  // Negative step mirrors the roles.
  EXPECT_EQ(typeOfBound(MinUpper, "j", BoundSide::Lower, -1),
            BoundType::Linear);
  EXPECT_EQ(typeOfBound(MaxLower, "j", BoundSide::Upper, -1),
            BoundType::Linear);

  // Unknown step sign: no special case.
  EXPECT_EQ(typeOfBound(MaxLower, "j", BoundSide::Lower, 0),
            BoundType::Nonlinear);
}

TEST(TypeLattice, NestedMaxInsideMinStaysOpaque) {
  ExprRef E = parse("min(n, max(i, 2))");
  EXPECT_EQ(typeOfBound(E, "i", BoundSide::Upper, 1), BoundType::Nonlinear);
}

TEST(TypeLattice, IsCompileTimeConst) {
  EXPECT_TRUE(isCompileTimeConst(parse("7")));
  EXPECT_TRUE(isCompileTimeConst(parse("3*4 - 2")));
  EXPECT_FALSE(isCompileTimeConst(parse("n")));
  EXPECT_FALSE(isCompileTimeConst(parse("sqrt(4)"))); // opaque call
}

} // namespace
