//===- tests/cachesim/CacheTest.cpp ----------------------------------------===//

#include "cachesim/Cache.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

TEST(CacheSim, ColdMissesThenHits) {
  CacheSim C(CacheConfig{1024, 64, 2});
  EXPECT_FALSE(C.access(0));
  EXPECT_TRUE(C.access(8));   // same line
  EXPECT_TRUE(C.access(63));  // same line
  EXPECT_FALSE(C.access(64)); // next line
  EXPECT_EQ(C.misses(), 2u);
  EXPECT_EQ(C.hits(), 2u);
}

TEST(CacheSim, LruEviction) {
  // Direct-mapped-ish: 2 sets x 1 way x 64B lines = 128 B.
  CacheSim C(CacheConfig{128, 64, 1});
  EXPECT_FALSE(C.access(0));    // set 0
  EXPECT_FALSE(C.access(128));  // set 0, evicts line 0
  EXPECT_FALSE(C.access(0));    // miss again
  EXPECT_EQ(C.misses(), 3u);
}

TEST(CacheSim, AssociativityKeepsBothWays) {
  CacheSim C(CacheConfig{128, 64, 2}); // one set, two ways
  EXPECT_FALSE(C.access(0));
  EXPECT_FALSE(C.access(64));
  EXPECT_TRUE(C.access(0));
  EXPECT_TRUE(C.access(64));
  // Last uses: 0@3, 64@4 -> line 0 is LRU and gets evicted by line 128.
  EXPECT_FALSE(C.access(128));
  EXPECT_FALSE(C.access(0));   // was evicted
  EXPECT_TRUE(C.access(128));  // most recent lines survive
}

TEST(CacheSim, Reset) {
  CacheSim C(CacheConfig{128, 64, 2});
  C.access(0);
  C.reset();
  EXPECT_EQ(C.accesses(), 0u);
  EXPECT_FALSE(C.access(0));
}

TEST(ArrayLayout, ColumnMajorAddresses) {
  ArrayLayout L;
  L.declare("a", {1, 1}, {10, 10});
  uint64_t Base = L.addressOf("a", {1, 1});
  // Column-major: first subscript varies fastest.
  EXPECT_EQ(L.addressOf("a", {2, 1}) - Base, 8u);
  EXPECT_EQ(L.addressOf("a", {1, 2}) - Base, 80u);
}

TEST(ArrayLayout, DisjointArrays) {
  ArrayLayout L;
  L.declare("a", {1}, {100});
  L.declare("b", {1}, {100});
  // 800 bytes each, 4KiB aligned with a guard page between.
  EXPECT_GE(L.addressOf("b", {1}), L.addressOf("a", {100}) + 4096);
}

TEST(CacheSim, StreamingVsBlockedTraceShape) {
  // Column-major matrix walked row-wise misses every access with a tiny
  // cache; walked column-wise it hits within lines.
  ErrorOr<LoopNest> RowWise =
      parseLoopNest("arrays a\ndo i = 1, 64\n  do j = 1, 64\n"
                    "    s(1) = a(j, i)\n  enddo\nenddo\n");
  ErrorOr<LoopNest> ColWise =
      parseLoopNest("arrays a\ndo i = 1, 64\n  do j = 1, 64\n"
                    "    s(1) = a(i, j)\n  enddo\nenddo\n");
  ASSERT_TRUE(static_cast<bool>(RowWise));
  ASSERT_TRUE(static_cast<bool>(ColWise));
  // Note: in "a(j, i)" the first (fastest) subscript is the inner loop j:
  // that's the friendly order; "a(i, j)" strides by 64 elements.
  (void)0;

  ArrayLayout L;
  L.declare("a", {1, 1}, {64, 64});
  L.declare("s", {1}, {1});
  CacheConfig CC{2048, 64, 2};

  EvalConfig C;
  C.RecordAccesses = true;
  ArrayStore S1, S2;
  EvalResult R1 = evaluate(*RowWise, C, S1); // friendly (unit stride)
  EvalResult R2 = evaluate(*ColWise, C, S2); // strided

  double FriendlyMiss = replayTrace(R1.Accesses, L, CC);
  double StridedMiss = replayTrace(R2.Accesses, L, CC);
  EXPECT_LT(FriendlyMiss, StridedMiss);
  EXPECT_LT(FriendlyMiss, 0.2);
  EXPECT_GT(StridedMiss, 0.4);
}

} // namespace
