//===- tests/cgen/CgenGoldenTest.cpp - Byte-exact emitted-C goldens -------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the byte-exact C translation unit emitProgram() produces for one
/// nest per Table 1 kernel template (plus the StripMine extension) and
/// for the five strided-soundness regression nests (ISSUE 3's corpus).
/// Any change to the emitted harness - seeding, checksum, bounds-checked
/// accessors, kernel rendering, the IRLT_RESULT record - shows up as a
/// reviewable golden diff instead of silently altering what the native
/// validation tier executes.
///
/// Data lives in tests/data/cgen/: <case>.nest, <case>.script (may be
/// empty - identity), and <case>.golden.c. Set IRLT_UPDATE_GOLDEN=1 to
/// regenerate after an intentional emitter change; review the diff like
/// any other. All cases use seed 42 and bindings n=8, m=6, b=2.
///
//===----------------------------------------------------------------------===//

#include "cgen/Cgen.h"
#include "driver/Script.h"
#include "ir/Parser.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

using namespace irlt;

namespace {

std::string dataPath(const std::string &Name) {
  return std::string(IRLT_CGEN_DATA_DIR) + "/" + Name;
}

std::string readFileOrEmpty(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Emits the differential program for one corpus case and compares it
/// byte-for-byte against <case>.golden.c.
void checkGolden(const std::string &Case) {
  std::string NestSrc = readFileOrEmpty(dataPath(Case + ".nest"));
  ASSERT_FALSE(NestSrc.empty()) << "missing " << Case << ".nest";
  ErrorOr<LoopNest> NestOr = parseLoopNest(NestSrc);
  ASSERT_TRUE(static_cast<bool>(NestOr)) << NestOr.message();
  LoopNest Nest = NestOr.take();

  std::string Script = readFileOrEmpty(dataPath(Case + ".script"));
  ErrorOr<TransformSequence> SeqOr =
      parseTransformScript(Script, Nest.numLoops());
  ASSERT_TRUE(static_cast<bool>(SeqOr)) << SeqOr.message();
  ErrorOr<LoopNest> Out = applySequence(*SeqOr, Nest);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();

  cgen::ProgramOptions PO;
  PO.Seed = 42;
  PO.Bindings = {{"n", 8}, {"m", 6}, {"b", 2}};
  ErrorOr<std::vector<cgen::ArrayShape>> Shapes =
      cgen::arrayShapes(Nest, PO.Bindings, 1u << 22);
  ASSERT_TRUE(static_cast<bool>(Shapes)) << Shapes.message();
  ErrorOr<std::string> Program =
      cgen::emitProgram(Nest, &*Out, *Shapes, PO);
  ASSERT_TRUE(static_cast<bool>(Program)) << Program.message();

  std::string GoldenPath = dataPath(Case + ".golden.c");
  if (std::getenv("IRLT_UPDATE_GOLDEN")) {
    std::ofstream OutF(GoldenPath);
    ASSERT_TRUE(OutF.good()) << "cannot write " << GoldenPath;
    OutF << *Program;
    return;
  }
  std::string Expected = readFileOrEmpty(GoldenPath);
  ASSERT_FALSE(Expected.empty())
      << "missing golden file " << GoldenPath
      << " (run with IRLT_UPDATE_GOLDEN=1 to generate)";
  EXPECT_EQ(*Program, Expected) << "emitted C drifted for " << Case;
}

// One legal script per Table 1 kernel template.

TEST(CgenGolden, UnimodularStencil) { checkGolden("unimodular_stencil"); }

TEST(CgenGolden, ReversePermuteRect) {
  checkGolden("reverse_permute_rect");
}

TEST(CgenGolden, ParallelizeInner) { checkGolden("parallelize_inner"); }

TEST(CgenGolden, BlockMatmul) { checkGolden("block_matmul"); }

TEST(CgenGolden, CoalesceRect) { checkGolden("coalesce_rect"); }

TEST(CgenGolden, InterleaveRect) { checkGolden("interleave_rect"); }

TEST(CgenGolden, StripMineRect) { checkGolden("stripmine_rect"); }

// The five pinned strided-soundness regression nests: emission over the
// exact (nest, script) pairs of the original reproducer dumps must stay
// byte-stable. (Legality is irrelevant here - the harness is exactly
// the thing that catches an illegal sequence at run time.)

TEST(CgenGolden, Strided1BlockUnimodularChain) {
  checkGolden("strided1_block_unimodular");
}

TEST(CgenGolden, Strided2LowerBoundPermute) {
  checkGolden("strided2_lower_bound_permute");
}

TEST(CgenGolden, Strided3StripMineReversal) {
  checkGolden("strided3_stripmine_reversal");
}

TEST(CgenGolden, Strided4FastPathSkewChain) {
  checkGolden("strided4_fast_path_skew");
}

TEST(CgenGolden, Strided5SearchNestIdentity) {
  checkGolden("strided5_search_nest");
}

} // namespace
