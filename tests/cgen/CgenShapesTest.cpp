//===- tests/cgen/CgenShapesTest.cpp - Shape inference for emission -------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for cgen's dense-storage shape inference: the interval
/// analysis (inferShapes), the interpreter probe (probeShapes), and the
/// production fallback chain (arrayShapes). Shapes must soundly cover
/// every access of the *original* nest - the harness's bounds-checked
/// macros handle anything a transformed nest does beyond them.
///
//===----------------------------------------------------------------------===//

#include "cgen/Cgen.h"
#include "ir/Parser.h"

#include <algorithm>

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return N.take();
}

const cgen::ArrayShape *find(const std::vector<cgen::ArrayShape> &Shapes,
                             const std::string &Name) {
  for (const cgen::ArrayShape &S : Shapes)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

TEST(CgenShapes, RectangularNest) {
  LoopNest N = parse("do i = 1, n\n  do j = 1, m\n"
                     "    a(i, j) = a(i, j) + 1\n  enddo\nenddo\n");
  auto Shapes = cgen::inferShapes(N, {{"n", 8}, {"m", 6}});
  ASSERT_TRUE(static_cast<bool>(Shapes)) << Shapes.message();
  const cgen::ArrayShape *A = find(*Shapes, "a");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->Lower, (std::vector<int64_t>{1, 1}));
  EXPECT_EQ(A->Extent, (std::vector<int64_t>{8, 6}));
  EXPECT_EQ(A->cells(), 48u);
}

TEST(CgenShapes, StencilOffsetsWidenTheShape) {
  // a(i - 1, j + 1) pushes the lower bound to 0 and the upper to m + 1.
  LoopNest N = parse("do i = 1, n\n  do j = 1, m\n"
                     "    a(i, j) = a(i - 1, j + 1) + 1\n  enddo\nenddo\n");
  auto Shapes = cgen::inferShapes(N, {{"n", 8}, {"m", 6}});
  ASSERT_TRUE(static_cast<bool>(Shapes)) << Shapes.message();
  const cgen::ArrayShape *A = find(*Shapes, "a");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->Lower, (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(A->Extent, (std::vector<int64_t>{9, 7}));
}

TEST(CgenShapes, TriangularBoundsUseTheHull) {
  // j ranges over [1, i] with i in [1, 8]: the hull is [1, 8].
  LoopNest N = parse("do i = 1, n\n  do j = 1, i\n"
                     "    a(i, j) = a(i, j) * 2\n  enddo\nenddo\n");
  auto Shapes = cgen::inferShapes(N, {{"n", 8}});
  ASSERT_TRUE(static_cast<bool>(Shapes)) << Shapes.message();
  const cgen::ArrayShape *A = find(*Shapes, "a");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->Lower, (std::vector<int64_t>{1, 1}));
  EXPECT_EQ(A->Extent, (std::vector<int64_t>{8, 8}));
}

TEST(CgenShapes, ProbeMatchesIntervalOnExactNests) {
  // On a rectangular dense nest the interval analysis is exact, so the
  // interpreter probe must agree with it access-for-access.
  LoopNest N = parse("arrays b\ndo i = 1, n\n  do j = 1, m\n"
                     "    a(i, j) = a(i, j) + b(j)\n  enddo\nenddo\n");
  std::map<std::string, int64_t> Bind{{"n", 8}, {"m", 6}};
  auto ByInterval = cgen::inferShapes(N, Bind);
  auto ByProbe = cgen::probeShapes(N, Bind, 1u << 20);
  ASSERT_TRUE(static_cast<bool>(ByInterval)) << ByInterval.message();
  ASSERT_TRUE(static_cast<bool>(ByProbe)) << ByProbe.message();
  ASSERT_EQ(ByInterval->size(), ByProbe->size());
  for (const cgen::ArrayShape &S : *ByInterval) {
    const cgen::ArrayShape *P = find(*ByProbe, S.Name);
    ASSERT_NE(P, nullptr) << S.Name;
    EXPECT_EQ(S.Lower, P->Lower) << S.Name;
    EXPECT_EQ(S.Extent, P->Extent) << S.Name;
  }
}

TEST(CgenShapes, DivisorStraddlingZeroFallsBackToProbe) {
  // The divisor interval of 2*i - 9 over i in [1, 8] is [-7, 7], which
  // the interval analysis refuses (it straddles zero), but no concrete
  // iteration ever divides by zero - the probe succeeds, so the
  // production chain (arrayShapes) succeeds too.
  LoopNest N = parse("do i = 1, n\n"
                     "  a(i + 6 / (2 * i - 9)) = i\nenddo\n");
  std::map<std::string, int64_t> Bind{{"n", 8}};
  auto ByInterval = cgen::inferShapes(N, Bind);
  EXPECT_FALSE(static_cast<bool>(ByInterval));
  auto Shapes = cgen::arrayShapes(N, Bind, 1u << 20);
  ASSERT_TRUE(static_cast<bool>(Shapes)) << Shapes.message();
  const cgen::ArrayShape *A = find(*Shapes, "a");
  ASSERT_NE(A, nullptr);
  // i + 6/(2i-9) over i = 1..8: minimum 1 + 6/(-7) = 0, maximum 8.
  ASSERT_EQ(A->Lower.size(), 1u);
  EXPECT_LE(A->Lower[0], 1);
  EXPECT_GE(A->Lower[0] + A->Extent[0] - 1, 8);
}

TEST(CgenShapes, InconsistentArityIsAnError) {
  LoopNest N = parse("do i = 1, n\n  do j = 1, n\n"
                     "    a(i, j) = a(i) + 1\n  enddo\nenddo\n");
  auto Shapes = cgen::inferShapes(N, {{"n", 8}});
  ASSERT_FALSE(static_cast<bool>(Shapes));
  EXPECT_NE(Shapes.message().find("a"), std::string::npos)
      << Shapes.message();
}

TEST(CgenShapes, UnboundParameterIsAnError) {
  LoopNest N = parse("do i = 1, n\n  a(i) = i\nenddo\n");
  auto Shapes = cgen::inferShapes(N, {});
  EXPECT_FALSE(static_cast<bool>(Shapes));
}

TEST(CgenShapes, SeededCellIsDeterministicAndBounded) {
  for (uint64_t Arr = 0; Arr < 3; ++Arr)
    for (uint64_t Flat = 0; Flat < 256; ++Flat) {
      int64_t V = cgen::seededCell(42, Arr, Flat);
      EXPECT_EQ(V, cgen::seededCell(42, Arr, Flat));
      EXPECT_GE(V, -63);
      EXPECT_LE(V, 63);
    }
  // Different seeds decorrelate the image.
  bool AnyDiff = false;
  for (uint64_t Flat = 0; Flat < 64; ++Flat)
    AnyDiff |= cgen::seededCell(42, 0, Flat) != cgen::seededCell(43, 0, Flat);
  EXPECT_TRUE(AnyDiff);
}

TEST(CgenShapes, CheckEmittableAcceptsPlainNests) {
  LoopNest N = parse("do i = 1, n\n  a(i) = a(i) + 1\nenddo\n");
  EXPECT_EQ(cgen::checkEmittable(N), "");
}

} // namespace
