//===- tests/cgen/CgenToolTest.cpp - irlt-cgen end to end -----------------===//
//
// Drives the installed irlt-cgen binary as a subprocess: nest file in,
// emitted C or a compile-and-run verdict out, with the documented exit
// status contract (0 emitted/matched, 1 error, 2 mismatch, 3 compile/run
// failure, 4 no compiler). The binary path comes from the build system
// (IRLT_CGEN_PATH).
//
//===----------------------------------------------------------------------===//

#include "cgen/NativeRunner.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

namespace {

#ifndef IRLT_CGEN_PATH
#define IRLT_CGEN_PATH "irlt-cgen"
#endif

struct RunResult {
  int ExitCode;
  std::string Output;
};

RunResult runTool(const std::string &Args) {
  std::string Cmd = std::string(IRLT_CGEN_PATH) + " " + Args + " 2>&1";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  std::string Out;
  std::array<char, 4096> Buf;
  size_t Got;
  while ((Got = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
    Out.append(Buf.data(), Got);
  int Status = pclose(Pipe);
  return RunResult{WEXITSTATUS(Status), Out};
}

std::string writeNest(const std::string &Tag, const std::string &Text) {
  std::string Path = ::testing::TempDir() + "/irlt_cgen_" + Tag + ".loop";
  std::ofstream Out(Path);
  Out << Text;
  return Path;
}

bool haveCompiler() { return !irlt::cgen::probeCompiler().empty(); }

TEST(CgenTool, EmitsTheDifferentialProgram) {
  std::string Path = writeNest("t1", "do i = 1, n\n  do j = 1, m\n"
                                     "    a(i, j) = a(i, j) + 1\n"
                                     "  enddo\nenddo\n");
  RunResult R = runTool(Path + " -s 'interchange 1 2'");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("irlt_original"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("irlt_transformed"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("IRLT_RESULT"), std::string::npos) << R.Output;
}

TEST(CgenTool, JsonRecordCarriesTheProgram) {
  std::string Path = writeNest("t2", "do i = 1, n\n  a(i) = a(i) + 1\nenddo\n");
  RunResult R = runTool(Path + " --json");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("\"schema_version\""), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("\"tool\":\"irlt-cgen\""), std::string::npos)
      << R.Output;
}

TEST(CgenTool, RunMatchExitsZero) {
  if (!haveCompiler())
    GTEST_SKIP() << "no host C compiler";
  std::string Path = writeNest("t3", "do i = 1, n\n  do j = 1, m\n"
                                     "    a(i, j) = a(i, j) + 1\n"
                                     "  enddo\nenddo\n");
  RunResult R = runTool(Path + " -s 'interchange 1 2' --run --no-openmp"
                               " --bind n=8,m=6");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("match"), std::string::npos) << R.Output;
}

TEST(CgenTool, RunMismatchExitsTwo) {
  if (!haveCompiler())
    GTEST_SKIP() << "no host C compiler";
  // Reversing a recurrence is illegal; the harness must catch it.
  std::string Path = writeNest("t4", "do i = 2, n\n"
                                     "  a(i) = a(i - 1) + 1\nenddo\n");
  RunResult R = runTool(Path + " -s 'reverse 1' --run --no-openmp"
                               " --bind n=8");
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
  EXPECT_NE(R.Output.find("mismatch"), std::string::npos) << R.Output;
}

TEST(CgenTool, MissingCompilerExitsFour) {
  std::string Path = writeNest("t5", "do i = 1, n\n  a(i) = a(i) + 1\nenddo\n");
  RunResult R = runTool(Path + " --run --cc /nonexistent/irlt-no-such-cc"
                               " --bind n=8");
  EXPECT_EQ(R.ExitCode, 4) << R.Output;
}

TEST(CgenTool, BadScriptExitsOne) {
  std::string Path = writeNest("t6", "do i = 1, n\n  a(i) = a(i) + 1\nenddo\n");
  RunResult R = runTool(Path + " -s 'interchange 1 7'");
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
}

} // namespace
