//===- tests/cgen/NativeCheckTest.cpp - checkNative classification --------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-call native differential check the validator, fuzzer, and
/// tools share: legal transformations come back Match with the
/// interpreter agreeing cell-for-cell; illegal ones come back Mismatch;
/// uncheckable cases (unbound parameter, cell cap) come back Skipped
/// with a deterministic Detail; a missing compiler is Unavailable.
///
//===----------------------------------------------------------------------===//

#include "cgen/NativeCheck.h"
#include "driver/Script.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

const std::string &hostCompiler() {
  static const std::string CC = cgen::probeCompiler();
  return CC;
}

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return N.take();
}

LoopNest apply(const LoopNest &Nest, const std::string &Script) {
  ErrorOr<TransformSequence> Seq =
      parseTransformScript(Script, Nest.numLoops());
  EXPECT_TRUE(static_cast<bool>(Seq)) << Seq.message();
  ErrorOr<LoopNest> Out = applySequence(*Seq, Nest);
  EXPECT_TRUE(static_cast<bool>(Out)) << Out.message();
  return Out.take();
}

cgen::NativeCheckOptions smallOptions() {
  cgen::NativeCheckOptions NC;
  NC.Bindings = {{"n", 8}, {"m", 6}};
  NC.UseOpenMP = false;
  NC.Runner.Compiler = hostCompiler();
  NC.Runner.OpenMP = false;
  NC.CrossCheckInterpreter = true;
  return NC;
}

TEST(NativeCheck, LegalInterchangeMatches) {
  if (hostCompiler().empty())
    GTEST_SKIP() << "no host C compiler";
  LoopNest N = parse("arrays b\ndo i = 1, n\n  do j = 1, m\n"
                     "    a(i, j) = a(i, j) + b(j)\n  enddo\nenddo\n");
  LoopNest T = apply(N, "interchange 1 2");
  cgen::NativeCheckResult R = cgen::checkNative(N, &T, smallOptions());
  EXPECT_EQ(R.Status, cgen::NativeCheckStatus::Match)
      << cgen::nativeCheckStatusName(R.Status) << ": " << R.Detail;
  // The cross-checked interpreter agreed with both native checksums.
  EXPECT_TRUE(R.Interp.Ok) << R.Interp.Detail;
  EXPECT_EQ(R.Interp.Original, R.Native.ChecksumOriginal);
}

TEST(NativeCheck, IllegalReversalMismatches) {
  if (hostCompiler().empty())
    GTEST_SKIP() << "no host C compiler";
  // a(i1) = a(i1 - 1) + 1 carries a (1) dependence; reversing the loop
  // computes a different fixpoint, which the harness must catch.
  LoopNest N = parse("do i = 2, n\n  a(i) = a(i - 1) + 1\nenddo\n");
  LoopNest T = apply(N, "reverse 1");
  cgen::NativeCheckResult R = cgen::checkNative(N, &T, smallOptions());
  EXPECT_EQ(R.Status, cgen::NativeCheckStatus::Mismatch)
      << cgen::nativeCheckStatusName(R.Status) << ": " << R.Detail;
  EXPECT_NE(R.Detail.find("native mismatch"), std::string::npos) << R.Detail;
}

TEST(NativeCheck, UnboundParameterIsSkipped) {
  LoopNest N = parse("do i = 1, n\n  a(i) = a(i) + 1\nenddo\n");
  cgen::NativeCheckOptions NC = smallOptions();
  NC.Bindings = {{"m", 6}}; // n is free but unbound
  cgen::NativeCheckResult R = cgen::checkNative(N, &N, NC);
  EXPECT_EQ(R.Status, cgen::NativeCheckStatus::Skipped)
      << cgen::nativeCheckStatusName(R.Status) << ": " << R.Detail;
}

TEST(NativeCheck, CellCapIsSkippedDeterministically) {
  LoopNest N = parse("do i = 1, n\n  do j = 1, n\n"
                     "    a(i, j) = a(i, j) + 1\n  enddo\nenddo\n");
  cgen::NativeCheckOptions NC = smallOptions();
  NC.Bindings = {{"n", 4096}};
  NC.MaxCells = 1u << 10; // 4096 x 4096 cells blow a 1K cap
  cgen::NativeCheckResult R = cgen::checkNative(N, &N, NC);
  EXPECT_EQ(R.Status, cgen::NativeCheckStatus::Skipped)
      << cgen::nativeCheckStatusName(R.Status) << ": " << R.Detail;
}

TEST(NativeCheck, MissingCompilerIsUnavailable) {
  LoopNest N = parse("do i = 1, n\n  a(i) = a(i) + 1\nenddo\n");
  cgen::NativeCheckOptions NC = smallOptions();
  NC.Runner.Compiler = "/nonexistent/irlt-no-such-cc";
  cgen::NativeCheckResult R = cgen::checkNative(N, &N, NC);
  EXPECT_EQ(R.Status, cgen::NativeCheckStatus::Unavailable)
      << cgen::nativeCheckStatusName(R.Status) << ": " << R.Detail;
  EXPECT_EQ(R.Detail, "no host C compiler");
}

} // namespace
