//===- tests/cgen/NativeRunnerTest.cpp - Compile-and-run failure matrix ---===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The NativeRunner contract: every way a compile-and-run can fail -
/// missing compiler, compile error, runtime timeout, harness mismatch,
/// unparseable output - comes back as a structured NativeStatus, never a
/// crash, hang, or stray temp file. Tests that need a real host compiler
/// GTEST_SKIP when the probe finds none (the CI cgen lane runs them).
///
//===----------------------------------------------------------------------===//

#include "cgen/Cgen.h"
#include "cgen/NativeRunner.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

/// Probed once; tests that drive a real compiler skip when empty.
const std::string &hostCompiler() {
  static const std::string CC = cgen::probeCompiler();
  return CC;
}

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return N.take();
}

/// Emits a differential program over (Original, Transformed) with the
/// default small bindings.
std::string emitPair(const LoopNest &Original, const LoopNest &Transformed) {
  cgen::ProgramOptions PO;
  PO.Bindings = {{"n", 8}, {"m", 6}};
  PO.UseOpenMP = false;
  ErrorOr<std::vector<cgen::ArrayShape>> Shapes =
      cgen::arrayShapes(Original, PO.Bindings, 1u << 20);
  EXPECT_TRUE(static_cast<bool>(Shapes)) << Shapes.message();
  ErrorOr<std::string> Program =
      cgen::emitProgram(Original, &Transformed, *Shapes, PO);
  EXPECT_TRUE(static_cast<bool>(Program)) << Program.message();
  return *Program;
}

TEST(NativeRunner, MissingCompilerIsAStatusNotACrash) {
  LoopNest N = parse("do i = 1, n\n  a(i) = a(i) + 1\nenddo\n");
  cgen::NativeRunOptions Opts;
  Opts.Compiler = "/nonexistent/irlt-no-such-cc";
  cgen::NativeResult R = cgen::runNative(emitPair(N, N), Opts);
  EXPECT_EQ(R.Status, cgen::NativeStatus::NoCompiler)
      << cgen::nativeStatusName(R.Status) << ": " << R.Detail;
}

TEST(NativeRunner, MatchingPairRunsClean) {
  if (hostCompiler().empty())
    GTEST_SKIP() << "no host C compiler";
  LoopNest N = parse("arrays b\ndo i = 1, n\n  do j = 1, m\n"
                     "    a(i, j) = a(i, j) + b(j)\n  enddo\nenddo\n");
  cgen::NativeRunOptions Opts;
  Opts.Compiler = hostCompiler();
  Opts.OpenMP = false;
  cgen::NativeResult R = cgen::runNative(emitPair(N, N), Opts);
  EXPECT_EQ(R.Status, cgen::NativeStatus::Ok)
      << cgen::nativeStatusName(R.Status) << ": " << R.Detail;
  EXPECT_TRUE(R.Match);
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.ChecksumOriginal, R.ChecksumTransformed);
  EXPECT_EQ(R.OobOriginal, 0u);
  EXPECT_EQ(R.OobTransformed, 0u);
}

TEST(NativeRunner, DivergentPairReportsMismatch) {
  if (hostCompiler().empty())
    GTEST_SKIP() << "no host C compiler";
  // The "transformed" side computes something else entirely; the harness
  // must report a checksum mismatch and exit 7, not crash.
  LoopNest Orig = parse("do i = 1, n\n  a(i) = a(i) + 1\nenddo\n");
  LoopNest Wrong = parse("do i = 1, n\n  a(i) = a(i) + 2\nenddo\n");
  cgen::NativeRunOptions Opts;
  Opts.Compiler = hostCompiler();
  Opts.OpenMP = false;
  cgen::NativeResult R = cgen::runNative(emitPair(Orig, Wrong), Opts);
  EXPECT_EQ(R.Status, cgen::NativeStatus::Mismatch)
      << cgen::nativeStatusName(R.Status) << ": " << R.Detail;
  EXPECT_FALSE(R.Match);
  EXPECT_EQ(R.ExitCode, 7);
  EXPECT_NE(R.ChecksumOriginal, R.ChecksumTransformed);
}

TEST(NativeRunner, CompileErrorIsAStatus) {
  if (hostCompiler().empty())
    GTEST_SKIP() << "no host C compiler";
  cgen::NativeRunOptions Opts;
  Opts.Compiler = hostCompiler();
  cgen::NativeResult R =
      cgen::runNative("int main(void) { this is not C;\n", Opts);
  EXPECT_EQ(R.Status, cgen::NativeStatus::CompileError)
      << cgen::nativeStatusName(R.Status) << ": " << R.Detail;
  EXPECT_FALSE(R.Detail.empty());
}

TEST(NativeRunner, RunTimeoutKillsTheProcessGroup) {
  if (hostCompiler().empty())
    GTEST_SKIP() << "no host C compiler";
  cgen::NativeRunOptions Opts;
  Opts.Compiler = hostCompiler();
  Opts.OpenMP = false;
  Opts.RunTimeoutMs = 300;
  cgen::NativeResult R =
      cgen::runNative("int main(void) { for (;;) { } return 0; }\n", Opts);
  EXPECT_EQ(R.Status, cgen::NativeStatus::RunTimeout)
      << cgen::nativeStatusName(R.Status) << ": " << R.Detail;
}

TEST(NativeRunner, SilentBinaryIsBadOutput) {
  if (hostCompiler().empty())
    GTEST_SKIP() << "no host C compiler";
  cgen::NativeRunOptions Opts;
  Opts.Compiler = hostCompiler();
  Opts.OpenMP = false;
  cgen::NativeResult R =
      cgen::runNative("int main(void) { return 0; }\n", Opts);
  EXPECT_EQ(R.Status, cgen::NativeStatus::BadOutput)
      << cgen::nativeStatusName(R.Status) << ": " << R.Detail;
}

TEST(NativeRunner, StatusNamesAreStable) {
  EXPECT_STREQ(cgen::nativeStatusName(cgen::NativeStatus::Ok), "ok");
  EXPECT_STREQ(cgen::nativeStatusName(cgen::NativeStatus::Mismatch),
               "mismatch");
  EXPECT_STREQ(cgen::nativeStatusName(cgen::NativeStatus::NoCompiler),
               "no-compiler");
  EXPECT_STREQ(cgen::nativeStatusName(cgen::NativeStatus::CompileError),
               "compile-error");
  EXPECT_STREQ(cgen::nativeStatusName(cgen::NativeStatus::RunTimeout),
               "run-timeout");
  EXPECT_STREQ(cgen::nativeStatusName(cgen::NativeStatus::RunError),
               "run-error");
  EXPECT_STREQ(cgen::nativeStatusName(cgen::NativeStatus::BadOutput),
               "bad-output");
}

} // namespace
