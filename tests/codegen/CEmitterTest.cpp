//===- tests/codegen/CEmitterTest.cpp --------------------------------------===//

#include "codegen/CEmitter.h"
#include "ir/Parser.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

ExprRef parseE(const std::string &Src) {
  ErrorOr<ExprRef> E = parseExpr(Src);
  EXPECT_TRUE(static_cast<bool>(E)) << E.message();
  return *E;
}

TEST(CEmitter, ExprLowering) {
  EXPECT_EQ(emitCExpr(parseE("i + 2*j - 1")), "i + 2*j - 1");
  EXPECT_EQ(emitCExpr(parseE("(a + b) / 4")), "irlt_floordiv(a + b, 4)");
  EXPECT_EQ(emitCExpr(parseE("mod(q, m)")), "irlt_floormod(q, m)");
  EXPECT_EQ(emitCExpr(parseE("min(a, b, 3)")), "irlt_min(irlt_min(a, b), 3)");
  EXPECT_EQ(emitCExpr(parseE("max(n - 1, j - 2)")),
            "irlt_max(n - 1, j - 2)");
  EXPECT_EQ(emitCExpr(parseE("colstr(j + 1)")), "colstr(j + 1)");
  EXPECT_EQ(emitCExpr(parseE("-i + 1")), "-i + 1");
}

TEST(CEmitter, FreeParameters) {
  LoopNest N = parse("do i = 1, n\n  do j = m, 2*i\n    a(i, j) = b + i\n"
                     "  enddo\nenddo\n");
  EXPECT_EQ(freeParameters(N), (std::vector<std::string>{"b", "m", "n"}));
  // Init-defined variables are not parameters.
  N.Inits.push_back(InitStmt{"t", parseE("i + q")});
  EXPECT_EQ(freeParameters(N), (std::vector<std::string>{"b", "m", "n", "q"}));
}

TEST(CEmitter, SimpleNestStructure) {
  LoopNest N = parse("do i = 1, n\n  pardo j = 1, i\n    a(i, j) = i + j\n"
                     "  enddo\nenddo\n");
  std::string C = emitC(N);
  EXPECT_NE(C.find("void kernel(int64_t n) {"), std::string::npos) << C;
  EXPECT_NE(C.find("for (int64_t i = 1; i <= n; i += 1) {"),
            std::string::npos)
      << C;
  EXPECT_NE(C.find("#pragma omp parallel for"), std::string::npos) << C;
  EXPECT_NE(C.find("a(i, j) = i + j;"), std::string::npos) << C;
  EXPECT_NE(C.find("irlt_floordiv"), std::string::npos); // helpers emitted
}

TEST(CEmitter, NegativeStepLoopCondition) {
  LoopNest N = parse("do i = 9, 2, -2\n  a(i) = i\nenddo\n");
  std::string C = emitC(N);
  EXPECT_NE(C.find("for (int64_t i = 9; i >= 2; i += -2) {"),
            std::string::npos)
      << C;
}

TEST(CEmitter, SymbolicStepBranchesOnSign) {
  LoopNest N = parse("do i = 1, n, s\n  a(i) = i\nenddo\n");
  std::string C = emitC(N);
  EXPECT_NE(C.find("(s) > 0 ? i <= n : i >= n"), std::string::npos) << C;
}

TEST(CEmitter, InitStatementsBecomeLocals) {
  LoopNest N = parse("do i = 1, 4\n  a(i) = i\nenddo\n");
  TransformSequence Seq = TransformSequence::of(
      {makeUnimodular(1, UnimodularMatrix::reversal(1, 0))});
  ErrorOr<LoopNest> Out = applySequence(Seq, N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  std::string C = emitC(*Out);
  EXPECT_NE(C.find("int64_t i = -ii;"), std::string::npos) << C;
}

TEST(CEmitter, NoHelpersOption) {
  LoopNest N = parse("do i = 1, 4\n  a(i) = i\nenddo\n");
  CEmitOptions O;
  O.EmitHelpers = false;
  O.FunctionName = "stencil_v2";
  std::string C = emitC(N, O);
  EXPECT_EQ(C.find("irlt_floordiv"), std::string::npos);
  EXPECT_NE(C.find("void stencil_v2"), std::string::npos);
}

} // namespace
