//===- tests/codegen/CompileAndRunTest.cpp ---------------------------------===//
//
// End-to-end ground truth for the C emitter: compile the emitted C with
// the host compiler, run it, and compare the array results against the
// evaluator's interpretation - for the original *and* the transformed
// Figure 1 nest. Skipped when no host C compiler is available.
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "eval/Evaluator.h"
#include "ir/Parser.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace irlt;

namespace {

bool hostCompilerAvailable() {
  return std::system("cc --version > /dev/null 2>&1") == 0;
}

/// Compiles \p Prelude (array storage and accessor macros), then the
/// emitted \p CSource, then \p MainFn; returns the program's output. The
/// macros must precede the kernel so array accesses expand to lvalues.
std::string compileAndRun(const std::string &Prelude,
                          const std::string &CSource,
                          const std::string &MainFn, const std::string &Tag) {
  std::string Dir = ::testing::TempDir();
  std::string CPath = Dir + "/irlt_" + Tag + ".c";
  std::string BinPath = Dir + "/irlt_" + Tag + ".bin";
  {
    std::ofstream Out(CPath);
    Out << Prelude << "\n" << CSource << "\n" << MainFn;
  }
  std::string Cmd = "cc -O1 -o " + BinPath + " " + CPath + " 2>&1";
  if (std::system(Cmd.c_str()) != 0)
    return "<compile failed>";
  std::string RunCmd = BinPath + " > " + BinPath + ".out";
  if (std::system(RunCmd.c_str()) != 0)
    return "<run failed>";
  std::ifstream In(BinPath + ".out");
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

const char *StencilPrelude = R"(
#include <stdint.h>
static int64_t storage[64][64];
#define a(i, j) storage[i][j]
)";

const char *StencilMain = R"(
#include <stdio.h>
int main(void) {
  for (int i = 0; i < 64; ++i)
    for (int j = 0; j < 64; ++j)
      storage[i][j] = (int64_t)(i * 31 + j * 7);
  kernel(20);
  long long sum = 0;
  for (int i = 0; i < 64; ++i)
    for (int j = 0; j < 64; ++j)
      sum += (long long)storage[i][j] * (i + 2 * j + 1);
  printf("%lld\n", sum);
  return 0;
}
)";

/// The evaluator's answer for the same harness.
std::string evaluatorChecksum(const LoopNest &Nest) {
  ArrayStore Store;
  for (int64_t I = 0; I < 64; ++I)
    for (int64_t J = 0; J < 64; ++J)
      Store.write("a", {I, J}, I * 31 + J * 7);
  EvalConfig C;
  C.Params["n"] = 20;
  evaluate(Nest, C, Store);
  long long Sum = 0;
  for (int64_t I = 0; I < 64; ++I)
    for (int64_t J = 0; J < 64; ++J)
      Sum += Store.read("a", {I, J}) * (I + 2 * J + 1);
  return std::to_string(Sum) + "\n";
}

TEST(CompileAndRun, EmittedStencilMatchesEvaluator) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";
  ErrorOr<LoopNest> N = parseLoopNest(
      "do i = 2, n - 1\n"
      "  do j = 2, n - 1\n"
      "    a(i, j) = (a(i, j) + a(i - 1, j) + a(i, j - 1) + a(i + 1, j) + "
      "a(i, j + 1)) / 5\n"
      "  enddo\n"
      "enddo\n");
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();

  std::string Want = evaluatorChecksum(*N);
  CEmitOptions O;
  O.UseOpenMP = false;
  std::string Got =
      compileAndRun(StencilPrelude, emitC(*N, O), StencilMain, "orig");
  EXPECT_EQ(Got, Want);
}

TEST(CompileAndRun, EmittedTransformedStencilMatchesOriginal) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";
  ErrorOr<LoopNest> N = parseLoopNest(
      "do i = 2, n - 1\n"
      "  do j = 2, n - 1\n"
      "    a(i, j) = (a(i, j) + a(i - 1, j) + a(i, j - 1) + a(i + 1, j) + "
      "a(i, j + 1)) / 5\n"
      "  enddo\n"
      "enddo\n");
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  TransformSequence Seq = TransformSequence::of(
      {makeUnimodular(2, UnimodularMatrix(2, {1, 1, 1, 0}))});
  ErrorOr<LoopNest> Out = applySequence(Seq, *N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();

  std::string Want = evaluatorChecksum(*N);
  CEmitOptions O;
  O.UseOpenMP = false;
  std::string Got =
      compileAndRun(StencilPrelude, emitC(*Out, O), StencilMain, "xform");
  EXPECT_EQ(Got, Want);
}

TEST(CompileAndRun, EmittedBlockedMatmulMatchesEvaluator) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no host C compiler";
  ErrorOr<LoopNest> N = parseLoopNest("arrays B, C\n"
                                      "do i = 1, n\n"
                                      "  do j = 1, n\n"
                                      "    do k = 1, n\n"
                                      "      A(i, j) += B(i, k) * C(k, j)\n"
                                      "    enddo\n"
                                      "  enddo\n"
                                      "enddo\n");
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  ExprRef B4 = Expr::intConst(4);
  ErrorOr<LoopNest> Out = applySequence(
      TransformSequence::of({makeBlock(3, 1, 3, {B4, B4, B4})}), *N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();

  const char *Prelude = R"(
#include <stdint.h>
static int64_t sa[20][20], sb[20][20], sc[20][20];
#define A(i, j) sa[i][j]
#define B(i, j) sb[i][j]
#define C(i, j) sc[i][j]
)";
  const char *MainFn = R"(
#include <stdio.h>
int main(void) {
  for (int i = 0; i < 20; ++i)
    for (int j = 0; j < 20; ++j) {
      sb[i][j] = i - 2 * j;
      sc[i][j] = 3 * i + j;
    }
  kernel(14);
  long long sum = 0;
  for (int i = 0; i < 20; ++i)
    for (int j = 0; j < 20; ++j)
      sum += (long long)sa[i][j] * (i + j + 1);
  printf("%lld\n", sum);
  return 0;
}
)";

  // Evaluator reference.
  ArrayStore Store;
  for (int64_t I = 0; I < 20; ++I)
    for (int64_t J = 0; J < 20; ++J) {
      Store.write("B", {I, J}, I - 2 * J);
      Store.write("C", {I, J}, 3 * I + J);
    }
  EvalConfig C;
  C.Params["n"] = 14;
  evaluate(*Out, C, Store);
  long long Sum = 0;
  for (int64_t I = 0; I < 20; ++I)
    for (int64_t J = 0; J < 20; ++J)
      Sum += Store.read("A", {I, J}) * (I + J + 1);

  CEmitOptions O;
  O.UseOpenMP = false;
  std::string Got = compileAndRun(Prelude, emitC(*Out, O), MainFn, "matmul");
  EXPECT_EQ(Got, std::to_string(Sum) + "\n");
}

} // namespace
