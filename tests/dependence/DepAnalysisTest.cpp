//===- tests/dependence/DepAnalysisTest.cpp --------------------------------===//

#include "dependence/DepAnalysis.h"
#include "eval/Verify.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

DepSet analyze(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return analyzeDependences(*N);
}

TEST(DepAnalysis, UniformDistanceFlow) {
  // a(i) = a(i-2): flow distance 2 (and only that).
  DepSet D = analyze("do i = 3, n\n"
                     "  a(i) = a(i - 2)\n"
                     "enddo\n");
  EXPECT_EQ(D.str(), "{(2)}");
}

TEST(DepAnalysis, NoDependenceOnDisjointSubscripts) {
  // ZIV: a(1) vs a(2) never alias.
  DepSet D = analyze("do i = 1, n\n"
                     "  a(1) = a(2)\n"
                     "enddo\n");
  // Only the write-write self pair on a(1) carries (+) - a(1) is written
  // every iteration.
  EXPECT_EQ(D.str(), "{(+)}");
}

TEST(DepAnalysis, GcdFilterKillsParityMismatch) {
  // a(2i) = a(2i+1): 2i == 2i'+1 has no integer solution.
  DepSet D = analyze("do i = 1, n\n"
                     "  a(2*i) = a(2*i + 1)\n"
                     "enddo\n");
  EXPECT_EQ(D.str(), "{}");
}

TEST(DepAnalysis, CoupledSubscriptsStencil) {
  DepSet D = analyze("do i = 2, n - 1\n"
                     "  do j = 2, n - 1\n"
                     "    a(i, j) = a(i - 1, j) + a(i, j - 1)\n"
                     "  enddo\n"
                     "enddo\n");
  EXPECT_EQ(D.str(), "{(0, 1), (1, 0)}");
}

TEST(DepAnalysis, AntiDependenceFromForwardRead) {
  // Reading a(i+1) makes iteration i+1's write wait: anti distance 1.
  DepSet D = analyze("do i = 1, n - 1\n"
                     "  a(i) = a(i + 1)\n"
                     "enddo\n");
  EXPECT_EQ(D.str(), "{(1)}");
}

TEST(DepAnalysis, ReductionCarriesAllOuter) {
  // Matmul: A(i, j) accumulated over k -> (0, 0, +).
  DepSet D = analyze("arrays B, C\n"
                     "do i = 1, n\n"
                     "  do j = 1, n\n"
                     "    do k = 1, n\n"
                     "      A(i, j) += B(i, k) * C(k, j)\n"
                     "    enddo\n"
                     "  enddo\n"
                     "enddo\n");
  EXPECT_EQ(D.str(), "{(0, 0, +)}");
}

TEST(DepAnalysis, ScalarLikeArrayCarriesEverything) {
  // b(1) is written and read by every iteration: distances refine to
  // nothing better than (+) at the outer level.
  DepSet D = analyze("do i = 1, n\n"
                     "  b(1) = b(1) + a(i)\n"
                     "enddo\n");
  EXPECT_EQ(D.str(), "{(+)}");
}

TEST(DepAnalysis, TriangularBoundsRespectRegion) {
  // In the triangle j <= i, a(i, j) = a(j, i) only self-conflicts on the
  // diagonal (j == i), which is the same instance: transposed-read pairs
  // lie outside the triangle, so no cross-iteration dependence... except
  // the diagonal write/read which is intra-instance. Expect empty.
  DepSet D = analyze("do i = 1, n\n"
                     "  do j = 1, i\n"
                     "    a(i, j) = a(j, i) + 1\n"
                     "  enddo\n"
                     "enddo\n");
  EXPECT_EQ(D.str(), "{}");
}

TEST(DepAnalysis, WithoutBoundsTriangularPairWouldAlias) {
  // Same body over the full square: (i,j) writes what (j,i) reads.
  DepSet D = analyze("do i = 1, n\n"
                     "  do j = 1, n\n"
                     "    a(i, j) = a(j, i) + 1\n"
                     "  enddo\n"
                     "enddo\n");
  EXPECT_FALSE(D.empty());
  // The flow i1=j2, j1=i2 gives d = (j1-i1, i1-j1) = (d, -d): directions.
  bool FoundSkewPair = false;
  for (const DepVector &V : D.vectors())
    if (V.str() == "(+, -)")
      FoundSkewPair = true;
  EXPECT_TRUE(FoundSkewPair) << D.str();
}

TEST(DepAnalysis, NonlinearSubscriptFallsBackConservatively) {
  DepSet D = analyze("do i = 1, n\n"
                     "  a(idx(i)) = a(i) + 1\n"
                     "enddo\n");
  // idx(i) is opaque: the analyzer must assume any forward dependence.
  EXPECT_EQ(D.str(), "{(+)}");
}

TEST(DepAnalysis, SymbolicOffsetsAnalyzeExactly) {
  // a(i + m) vs a(i): distance m unknown, but the *pairing* m apart is
  // linear in the shared symbol; direction refinement keeps both signs
  // out when bounds cannot order them - the result must cover distance m
  // for any m, i.e. direction entries.
  DepSet D = analyze("do i = 1, n\n"
                     "  a(i + m) = a(i) + 1\n"
                     "enddo\n");
  EXPECT_FALSE(D.empty());
  for (const DepVector &V : D.vectors())
    EXPECT_FALSE(V.canBeLexNegative()) << V.str();
}

TEST(DepAnalysis, MatchesGroundTruthOnConcreteRuns) {
  // The analyzer's set must cover every concretely observed dependence
  // distance (soundness against the evaluator's ground truth).
  struct Case {
    const char *Src;
    int64_t N;
  } Cases[] = {
      {"do i = 2, n - 1\n  do j = 2, n - 1\n"
       "    a(i, j) = a(i - 1, j + 1) + a(i, j - 1)\n  enddo\nenddo\n",
       8},
      {"do i = 1, n\n  do j = 1, i\n    a(i, j) = a(j, i) + 1\n"
       "  enddo\nenddo\n",
       7},
      {"do i = 3, n\n  a(i) = a(i - 2) + a(i - 3)\nenddo\n", 12},
  };
  for (const Case &Cs : Cases) {
    ErrorOr<LoopNest> N = parseLoopNest(Cs.Src);
    ASSERT_TRUE(static_cast<bool>(N)) << N.message();
    DepSet D = analyzeDependences(*N);

    EvalConfig C;
    C.Params["n"] = Cs.N;
    C.RecordAccesses = true;
    ArrayStore Store;
    EvalResult Run = evaluate(*N, C, Store);
    for (const auto &[A, B] : dependentInstancePairs(Run)) {
      std::vector<int64_t> Delta;
      // Index-value deltas: the analyzer's vectors are in value units
      // (they differ from activation ordinals in non-rectangular nests).
      for (size_t K = 0; K < Run.Instances[A].size(); ++K)
        Delta.push_back(Run.Instances[B][K] - Run.Instances[A][K]);
      bool Covered = false;
      for (const DepVector &V : D.vectors())
        if (V.containsTuple(Delta))
          Covered = true;
      EXPECT_TRUE(Covered) << Cs.Src << " misses "
                           << DepVector::distances(Delta).str() << " in "
                           << D.str();
    }
  }
}

//===--- Stand-alone classic tests -----------------------------------------===

TEST(ClassicTests, Ziv) {
  EXPECT_TRUE(deptest::zivEqual(3, 3));
  EXPECT_FALSE(deptest::zivEqual(3, 4));
}

TEST(ClassicTests, Gcd) {
  EXPECT_TRUE(deptest::gcdFeasible({2, -2}, 4));
  EXPECT_FALSE(deptest::gcdFeasible({2, -2}, 3));
  EXPECT_TRUE(deptest::gcdFeasible({3, 6}, 9));
  EXPECT_TRUE(deptest::gcdFeasible({}, 0));
  EXPECT_FALSE(deptest::gcdFeasible({}, 1));
  EXPECT_FALSE(deptest::gcdFeasible({4, 6}, 5));
}

TEST(ClassicTests, StrongSIV) {
  // a*i + CA == a*i' + CB with a=2, CA=0, CB=4: distance (0-4)/2... the
  // convention: distance = (CA - CB)/a from the callee's doc:
  // i1 - i2 = (CB - CA)/a.
  deptest::SIVResult R = deptest::strongSIV(2, 0, 4, 1, 100);
  EXPECT_TRUE(R.Dependent);
  EXPECT_EQ(*R.Distance, 2);
  // Non-integral distance: independent.
  EXPECT_FALSE(deptest::strongSIV(2, 0, 3, 1, 100).Dependent);
  // Distance exceeding the iteration span: independent.
  EXPECT_FALSE(deptest::strongSIV(1, 0, 50, 1, 10).Dependent);
  // Unknown bounds: dependent with the computed distance.
  deptest::SIVResult R2 =
      deptest::strongSIV(1, 5, 2, std::nullopt, std::nullopt);
  EXPECT_TRUE(R2.Dependent);
  EXPECT_EQ(*R2.Distance, -3);
}

TEST(ClassicTests, BanerjeeBounds) {
  // h = i - j + 0 with i, j in [1, 10]: range [-9, 9] contains 0.
  EXPECT_TRUE(deptest::banerjeeFeasible({1, -1}, 0, {1, 1}, {10, 10}));
  // h = i - j + 20: range [11, 29] excludes 0.
  EXPECT_FALSE(deptest::banerjeeFeasible({1, -1}, 20, {1, 1}, {10, 10}));
  // Unbounded variable with non-zero coefficient: cannot exclude.
  EXPECT_TRUE(deptest::banerjeeFeasible({1, -1}, 20, {1, std::nullopt},
                                        {10, std::nullopt}));
  // Zero-coefficient unbounded variable is irrelevant.
  EXPECT_FALSE(deptest::banerjeeFeasible({1, 0}, 20, {1, std::nullopt},
                                         {10, std::nullopt}));
}

} // namespace
