//===- tests/dependence/DepElemTest.cpp ------------------------------------===//

#include "dependence/DepElem.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

std::vector<DepElem> allKinds() {
  return {DepElem::distance(-3), DepElem::distance(0), DepElem::distance(2),
          DepElem::pos(),        DepElem::neg(),       DepElem::zeroPos(),
          DepElem::zeroNeg(),    DepElem::nonZero(),   DepElem::any()};
}

TEST(DepElem, PaperRendering) {
  EXPECT_EQ(DepElem::distance(3).str(), "3");
  EXPECT_EQ(DepElem::distance(-1).str(), "-1");
  EXPECT_EQ(DepElem::pos().str(), "+");
  EXPECT_EQ(DepElem::neg().str(), "-");
  EXPECT_EQ(DepElem::zeroPos().str(), "0+");
  EXPECT_EQ(DepElem::zeroNeg().str(), "0-");
  EXPECT_EQ(DepElem::nonZero().str(), "+-");
  EXPECT_EQ(DepElem::any().str(), "*");
}

TEST(DepElem, EqualsDirectionNormalizesToZeroDistance) {
  // The paper: "= is equivalent to a zero distance."
  DepElem E = DepElem::direction(DepElem::SignZero);
  EXPECT_TRUE(E.isDistance());
  EXPECT_EQ(E.dist(), 0);
  EXPECT_EQ(E, DepElem::zero());
}

TEST(DepElem, Contains) {
  EXPECT_TRUE(DepElem::distance(2).contains(2));
  EXPECT_FALSE(DepElem::distance(2).contains(3));
  EXPECT_TRUE(DepElem::pos().contains(7));
  EXPECT_FALSE(DepElem::pos().contains(0));
  EXPECT_TRUE(DepElem::zeroNeg().contains(0));
  EXPECT_TRUE(DepElem::zeroNeg().contains(-4));
  EXPECT_FALSE(DepElem::zeroNeg().contains(4));
  EXPECT_TRUE(DepElem::nonZero().contains(-1));
  EXPECT_FALSE(DepElem::nonZero().contains(0));
  EXPECT_TRUE(DepElem::any().contains(0));
}

TEST(DepElem, ReverseTable) {
  // Table 2's reverse() row: - <-> +, 0- <-> 0+, +- and * fixed, d -> -d.
  EXPECT_EQ(DepElem::pos().reversed(), DepElem::neg());
  EXPECT_EQ(DepElem::neg().reversed(), DepElem::pos());
  EXPECT_EQ(DepElem::zeroPos().reversed(), DepElem::zeroNeg());
  EXPECT_EQ(DepElem::zeroNeg().reversed(), DepElem::zeroPos());
  EXPECT_EQ(DepElem::nonZero().reversed(), DepElem::nonZero());
  EXPECT_EQ(DepElem::any().reversed(), DepElem::any());
  EXPECT_EQ(DepElem::distance(5).reversed(), DepElem::distance(-5));
  EXPECT_EQ(DepElem::distance(0).reversed(), DepElem::distance(0));
}

TEST(DepElem, ReverseIsPointwise) {
  // S(reverse(e)) == { -v | v in S(e) } on a sample window.
  for (const DepElem &E : allKinds()) {
    DepElem R = E.reversed();
    for (int64_t V = -6; V <= 6; ++V)
      EXPECT_EQ(E.contains(V), R.contains(-V)) << E.str() << " @ " << V;
  }
}

TEST(DepElem, DirOnly) {
  // dir() of Table 2: identity on directions and zero; sign of distances.
  EXPECT_EQ(DepElem::distance(7).dirOnly(), DepElem::pos());
  EXPECT_EQ(DepElem::distance(-7).dirOnly(), DepElem::neg());
  EXPECT_EQ(DepElem::distance(0).dirOnly(), DepElem::zero());
  EXPECT_EQ(DepElem::zeroPos().dirOnly(), DepElem::zeroPos());
}

TEST(DepElem, ParMapSymmetrizes) {
  EXPECT_EQ(DepElem::zero().parMapped(), DepElem::zero());
  EXPECT_EQ(DepElem::pos().parMapped(), DepElem::nonZero());
  EXPECT_EQ(DepElem::distance(3).parMapped(), DepElem::nonZero());
  EXPECT_EQ(DepElem::zeroPos().parMapped(), DepElem::any());
  EXPECT_EQ(DepElem::any().parMapped(), DepElem::any());
}

TEST(DepElem, AddExactOnDistances) {
  EXPECT_EQ(DepElem::add(DepElem::distance(2), DepElem::distance(-5)),
            DepElem::distance(-3));
}

TEST(DepElem, AddIsSoundOverapproximation) {
  // S(add(a, b)) must cover every v1 + v2 with v1 in S(a), v2 in S(b).
  for (const DepElem &A : allKinds())
    for (const DepElem &B : allKinds()) {
      DepElem S = DepElem::add(A, B);
      for (int64_t V1 : A.valuesWithin(4))
        for (int64_t V2 : B.valuesWithin(4))
          EXPECT_TRUE(S.contains(V1 + V2))
              << A.str() << " + " << B.str() << " misses " << (V1 + V2);
    }
}

TEST(DepElem, ScaleIsSoundAndExactOnDistances) {
  EXPECT_EQ(DepElem::distance(3).scaled(-2), DepElem::distance(-6));
  EXPECT_EQ(DepElem::pos().scaled(2), DepElem::pos());
  EXPECT_EQ(DepElem::pos().scaled(-1), DepElem::neg());
  EXPECT_EQ(DepElem::zeroNeg().scaled(-3), DepElem::zeroPos());
  EXPECT_EQ(DepElem::any().scaled(0), DepElem::zero());
  for (const DepElem &A : allKinds())
    for (int64_t C : {-2, -1, 0, 1, 3}) {
      DepElem S = A.scaled(C);
      for (int64_t V : A.valuesWithin(4))
        EXPECT_TRUE(S.contains(V * C))
            << A.str() << " * " << C << " misses " << V * C;
    }
}

TEST(DepElem, ExpandSummary) {
  std::vector<DepElem> E = DepElem::any().expandSummary();
  ASSERT_EQ(E.size(), 3u);
  EXPECT_EQ(E[0], DepElem::neg());
  EXPECT_EQ(E[1], DepElem::zero());
  EXPECT_EQ(E[2], DepElem::pos());
  EXPECT_EQ(DepElem::zeroPos().expandSummary().size(), 2u);
  EXPECT_EQ(DepElem::pos().expandSummary().size(), 1u);
  EXPECT_EQ(DepElem::distance(4).expandSummary().size(), 1u);
}

TEST(DepElem, Covers) {
  EXPECT_TRUE(DepElem::any().covers(DepElem::pos()));
  EXPECT_TRUE(DepElem::zeroPos().covers(DepElem::pos()));
  EXPECT_FALSE(DepElem::pos().covers(DepElem::zeroPos()));
  EXPECT_TRUE(DepElem::pos().covers(DepElem::distance(2))); // {2} in S(+)
  EXPECT_TRUE(DepElem::distance(2).covers(DepElem::distance(2)));
  EXPECT_FALSE(DepElem::distance(2).covers(DepElem::pos()));
}

} // namespace
