//===- tests/dependence/DepVectorTest.cpp ----------------------------------===//

#include "dependence/DepVector.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

TEST(DepVector, Rendering) {
  DepVector V({DepElem::distance(1), DepElem::neg(), DepElem::zeroPos()});
  EXPECT_EQ(V.str(), "(1, -, 0+)");
  EXPECT_EQ(DepVector::distances({0, -2}).str(), "(0, -2)");
}

TEST(DepVector, LexNegativityOnDistances) {
  EXPECT_FALSE(DepVector::distances({1, -1}).canBeLexNegative());
  EXPECT_TRUE(DepVector::distances({-1, 1}).canBeLexNegative());
  EXPECT_TRUE(DepVector::distances({0, -1}).canBeLexNegative());
  EXPECT_FALSE(DepVector::distances({0, 0}).canBeLexNegative());
  EXPECT_FALSE(DepVector::distances({0, 0}).canBeLexPositive());
}

TEST(DepVector, LexNegativityWithDirections) {
  // (0+, -): the 0 choice exposes the negative second entry.
  EXPECT_TRUE(
      DepVector({DepElem::zeroPos(), DepElem::neg()}).canBeLexNegative());
  // (+, -): the head is never zero and never negative.
  EXPECT_FALSE(DepVector({DepElem::pos(), DepElem::neg()}).canBeLexNegative());
  // (*, 1): the * can be negative at the first position.
  EXPECT_TRUE(
      DepVector({DepElem::any(), DepElem::distance(1)}).canBeLexNegative());
  // (0-, 0-): every tuple is lex-non-positive; negativity is reachable.
  EXPECT_TRUE(
      DepVector({DepElem::zeroNeg(), DepElem::zeroNeg()}).canBeLexNegative());
}

TEST(DepVector, LexNegativityMatchesTupleEnumeration) {
  std::vector<DepElem> Pool = {
      DepElem::distance(-1), DepElem::distance(0), DepElem::distance(2),
      DepElem::pos(),        DepElem::neg(),       DepElem::zeroPos(),
      DepElem::zeroNeg(),    DepElem::nonZero(),   DepElem::any()};
  for (const DepElem &A : Pool)
    for (const DepElem &B : Pool) {
      DepVector V({A, B});
      bool Expected = false;
      for (int64_t X : A.valuesWithin(3))
        for (int64_t Y : B.valuesWithin(3))
          if (X < 0 || (X == 0 && Y < 0))
            Expected = true;
      EXPECT_EQ(V.canBeLexNegative(), Expected) << V.str();
    }
}

TEST(DepVector, ContainsTuple) {
  DepVector V({DepElem::zeroPos(), DepElem::distance(2)});
  EXPECT_TRUE(V.containsTuple({0, 2}));
  EXPECT_TRUE(V.containsTuple({5, 2}));
  EXPECT_FALSE(V.containsTuple({-1, 2}));
  EXPECT_FALSE(V.containsTuple({0, 3}));
}

TEST(DepVector, ExpandSummaries) {
  DepVector V({DepElem::any(), DepElem::distance(1)});
  std::vector<DepVector> E = V.expandSummaries();
  ASSERT_EQ(E.size(), 3u);
  EXPECT_EQ(E[0].str(), "(-, 1)");
  EXPECT_EQ(E[1].str(), "(0, 1)");
  EXPECT_EQ(E[2].str(), "(+, 1)");
}

TEST(DepVector, Covers) {
  DepVector Big({DepElem::any(), DepElem::zeroPos()});
  DepVector Small({DepElem::pos(), DepElem::zero()});
  EXPECT_TRUE(Big.covers(Small));
  EXPECT_FALSE(Small.covers(Big));
}

TEST(DepSet, InsertDedupesAndSorts) {
  DepSet S;
  S.insert(DepVector::distances({1, 0}));
  S.insert(DepVector::distances({0, 1}));
  S.insert(DepVector::distances({1, 0}));
  EXPECT_EQ(S.size(), 2u);
  EXPECT_EQ(S.str(), "{(0, 1), (1, 0)}");
}

TEST(DepSet, AllLexNonNegative) {
  DepSet S;
  S.insert(DepVector::distances({1, -5}));
  EXPECT_TRUE(S.allLexNonNegative());
  S.insert(DepVector({DepElem::zeroPos(), DepElem::neg()}));
  EXPECT_FALSE(S.allLexNonNegative());
}

TEST(DepSet, Minimized) {
  DepSet S;
  S.insert(DepVector({DepElem::any(), DepElem::any()}));
  S.insert(DepVector::distances({1, 2}));
  S.insert(DepVector({DepElem::pos(), DepElem::zeroPos()}));
  DepSet M = S.minimized();
  EXPECT_EQ(M.size(), 1u);
  EXPECT_EQ(M.str(), "{(*, *)}");
}

TEST(DepElem, JoinedWith) {
  EXPECT_EQ(DepElem::distance(2).joinedWith(DepElem::distance(2)),
            DepElem::distance(2));
  EXPECT_EQ(DepElem::distance(2).joinedWith(DepElem::distance(3)),
            DepElem::pos());
  EXPECT_EQ(DepElem::distance(-1).joinedWith(DepElem::distance(2)),
            DepElem::nonZero());
  EXPECT_EQ(DepElem::zero().joinedWith(DepElem::pos()), DepElem::zeroPos());
  EXPECT_EQ(DepElem::neg().joinedWith(DepElem::zeroPos()), DepElem::any());
}

TEST(DepSet, SummarizedWidensWithinLexLevels) {
  DepSet S;
  S.insert(DepVector::distances({0, 1}));
  S.insert(DepVector::distances({0, 3}));
  S.insert(DepVector::distances({1, -2}));
  S.insert(DepVector::distances({2, 5}));
  DepSet W = S.summarized(2);
  // Level-0-zero group joins to (0, +); level-0-nonzero to (+, +-).
  EXPECT_EQ(W.str(), "{(0, +), (+, +-)}");
  // Superset property: every original tuple stays covered.
  for (const DepVector &V : S.vectors()) {
    bool Covered = false;
    for (const DepVector &U : W.vectors())
      Covered |= U.covers(V);
    EXPECT_TRUE(Covered) << V.str();
  }
  // Widening never creates a lex-negative capability here.
  EXPECT_TRUE(W.allLexNonNegative());
}

TEST(DepSet, SummarizedIsIdentityWhenSmall) {
  DepSet S;
  S.insert(DepVector::distances({1, 0}));
  EXPECT_EQ(S.summarized(4).str(), S.str());
}

TEST(DepSet, ExpandedSummaries) {
  DepSet S;
  S.insert(DepVector({DepElem::zeroPos(), DepElem::distance(0)}));
  DepSet E = S.expandedSummaries();
  EXPECT_EQ(E.str(), "{(0, 0), (+, 0)}");
}

} // namespace
