//===- tests/dependence/DirectionHierarchyTest.cpp -------------------------===//
//
// Harder dependence-analysis scenarios: coupled (MIV) subscripts,
// crossing dependences, bound-sensitive refinement, and soundness of the
// computed sets against brute-force ground truth on concrete runs.
//
//===----------------------------------------------------------------------===//

#include "dependence/DepAnalysis.h"
#include "eval/Verify.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

DepSet analyze(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return analyzeDependences(*N);
}

TEST(DirectionHierarchy, CoupledSubscriptsMIV) {
  // a(i + j) couples both loops: many (d_i, d_j) pairs with d_i = -d_j
  // alias, but only lexicographically positive ones survive.
  DepSet D = analyze("do i = 1, n\n  do j = 1, n\n"
                     "    a(i + j) = a(i + j) + 1\n  enddo\nenddo\n");
  EXPECT_FALSE(D.empty());
  for (const DepVector &V : D.vectors())
    EXPECT_FALSE(V.canBeLexNegative()) << V.str();
  // The classic (+, -) anti-diagonal pair must be represented.
  bool Found = false;
  for (const DepVector &V : D.vectors())
    if (V.containsTuple({1, -1}))
      Found = true;
  EXPECT_TRUE(Found) << D.str();
}

TEST(DirectionHierarchy, CrossingDependence) {
  // a(n - i): iterations i and n-i touch the same cell - a crossing
  // dependence whose distance varies with i; must be a direction.
  DepSet D = analyze("do i = 1, n\n  a(n - i) = a(i) + 1\nenddo\n");
  EXPECT_FALSE(D.empty());
  bool HasDirection = false;
  for (const DepVector &V : D.vectors())
    if (!V.allDistances())
      HasDirection = true;
  EXPECT_TRUE(HasDirection) << D.str();
}

TEST(DirectionHierarchy, BoundsKillInfeasibleDirections) {
  // a(i + 10) with i in [1, 5]: the write range [11, 15] and read range
  // [1, 5] never overlap - constant bounds prove independence.
  DepSet D = analyze("do i = 1, 5\n  a(i + 10) = a(i) + 1\nenddo\n");
  EXPECT_EQ(D.str(), "{}");
  // Same pattern with overlapping ranges keeps the dependence.
  DepSet D2 = analyze("do i = 1, 15\n  a(i + 10) = a(i) + 1\nenddo\n");
  EXPECT_FALSE(D2.empty());
}

TEST(DirectionHierarchy, ExactDistanceThroughCoupling) {
  // a(2i + j, j): equality forces 2*di + dj = 0 and dj = 0 -> di = 0:
  // no cross-iteration dependence at all.
  DepSet D = analyze("do i = 1, n\n  do j = 1, n\n"
                     "    a(2*i + j, j) = a(2*i + j, j) + 1\n"
                     "  enddo\nenddo\n");
  EXPECT_EQ(D.str(), "{}");
}

TEST(DirectionHierarchy, NegativePatternAfterPositiveHead) {
  // a(i-1, j+1): flow distance (1, -1) - a '<' then '>' hierarchy path.
  DepSet D = analyze("do i = 2, n\n  do j = 1, n - 1\n"
                     "    a(i, j) = a(i - 1, j + 1) + 1\n  enddo\nenddo\n");
  bool Found = false;
  for (const DepVector &V : D.vectors())
    if (V.str() == "(1, -1)")
      Found = true;
  EXPECT_TRUE(Found) << D.str();
}

TEST(DirectionHierarchy, RefinementOffSkipsDistances) {
  DepAnalysisOptions Opts;
  Opts.RefineDistances = false;
  ErrorOr<LoopNest> N = parseLoopNest("do i = 3, n\n  a(i) = a(i - 2)\nenddo\n");
  ASSERT_TRUE(static_cast<bool>(N));
  DepSet D = analyzeDependences(*N, Opts);
  // Without refinement the flow dependence stays a direction.
  EXPECT_EQ(D.str(), "{(+)}");
}

TEST(DirectionHierarchy, FastTestsToggleDoesNotChangeResults) {
  const char *Srcs[] = {
      "do i = 2, n - 1\n  do j = 2, n - 1\n"
      "    a(i, j) = a(i - 1, j) + a(i, j - 1)\n  enddo\nenddo\n",
      "do i = 1, n\n  a(2*i) = a(2*i + 1)\nenddo\n",
      "do i = 1, n\n  do j = 1, n\n    a(i + j) = a(i + j) + 1\n"
      "  enddo\nenddo\n",
  };
  for (const char *Src : Srcs) {
    ErrorOr<LoopNest> N = parseLoopNest(Src);
    ASSERT_TRUE(static_cast<bool>(N));
    DepAnalysisOptions Fast, Slow;
    Slow.UseFastTests = false;
    EXPECT_EQ(analyzeDependences(*N, Fast).str(),
              analyzeDependences(*N, Slow).str())
        << Src;
  }
}

TEST(DirectionHierarchy, GroundTruthSoundnessSweep) {
  // The analyzer's set must cover every concretely observed dependence
  // across a corpus of awkward nests.
  const char *Srcs[] = {
      "do i = 1, n\n  do j = 1, n\n    a(i + j) = a(i + j) + 1\n"
      "  enddo\nenddo\n",
      "do i = 1, n\n  a(n - i) = a(i) + 1\nenddo\n",
      "do i = 1, n\n  do j = i, n\n    a(j - i) = a(j) + 1\n"
      "  enddo\nenddo\n",
      "do i = 1, n\n  do j = 1, n\n    a(2*i + j) = a(i + 2*j) + 1\n"
      "  enddo\nenddo\n",
  };
  for (const char *Src : Srcs) {
    ErrorOr<LoopNest> N = parseLoopNest(Src);
    ASSERT_TRUE(static_cast<bool>(N)) << Src;
    DepSet D = analyzeDependences(*N);
    EvalConfig C;
    C.Params["n"] = 7;
    C.RecordAccesses = true;
    ArrayStore S;
    EvalResult Run = evaluate(*N, C, S);
    for (const auto &[A, B] : dependentInstancePairs(Run)) {
      std::vector<int64_t> Delta;
      // Index-value deltas: the analyzer's vectors are in value units
      // (they differ from activation ordinals in non-rectangular nests).
      for (size_t K = 0; K < Run.Instances[A].size(); ++K)
        Delta.push_back(Run.Instances[B][K] - Run.Instances[A][K]);
      bool Covered = false;
      for (const DepVector &V : D.vectors())
        if (V.containsTuple(Delta))
          Covered = true;
      EXPECT_TRUE(Covered) << Src << " misses "
                           << DepVector::distances(Delta).str() << " in "
                           << D.str();
    }
  }
}

} // namespace
