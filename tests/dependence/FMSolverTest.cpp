//===- tests/dependence/FMSolverTest.cpp -----------------------------------===//

#include "dependence/FMSolver.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

TEST(FMSolver, TrivialFeasibility) {
  FMSystem S(1);
  S.addGE({1}, 0);
  S.addLE({1}, 10);
  EXPECT_TRUE(S.feasible());
}

TEST(FMSolver, TrivialInfeasibility) {
  FMSystem S(1);
  S.addGE({1}, 5);
  S.addLE({1}, 3);
  EXPECT_FALSE(S.feasible());
}

TEST(FMSolver, ConstantContradiction) {
  FMSystem S(2);
  S.addLE({0, 0}, -1); // 0 <= -1
  EXPECT_FALSE(S.feasible());
}

TEST(FMSolver, TwoVariableChain) {
  // x <= y - 1, y <= 10, x >= 5  -> feasible (x=5, y=6..10).
  FMSystem S(2);
  S.addLE({1, -1}, -1);
  S.addLE({0, 1}, 10);
  S.addGE({1, 0}, 5);
  EXPECT_TRUE(S.feasible());
  // Tighten: x >= 10 forces y >= 11 > 10.
  S.addGE({1, 0}, 10);
  EXPECT_FALSE(S.feasible());
}

TEST(FMSolver, EqualityConstraints) {
  // x + y == 4, x - y == 0 -> x = y = 2.
  FMSystem S(2);
  S.addEQ({1, 1}, 4);
  S.addEQ({1, -1}, 0);
  EXPECT_TRUE(S.feasible());
  VarRange RX = S.rangeOf(0);
  ASSERT_TRUE(RX.Feasible);
  ASSERT_TRUE(RX.Lo && RX.Hi);
  EXPECT_EQ(*RX.Lo, Rational(2));
  EXPECT_EQ(*RX.Hi, Rational(2));
}

TEST(FMSolver, RangeProjection) {
  // 0 <= x <= 4, x <= y <= x + 2: y in [0, 6].
  FMSystem S(2);
  S.addGE({1, 0}, 0);
  S.addLE({1, 0}, 4);
  S.addLE({1, -1}, 0);  // x - y <= 0
  S.addLE({-1, 1}, 2);  // y - x <= 2
  VarRange RY = S.rangeOf(1);
  ASSERT_TRUE(RY.Feasible);
  ASSERT_TRUE(RY.Lo && RY.Hi);
  EXPECT_EQ(*RY.Lo, Rational(0));
  EXPECT_EQ(*RY.Hi, Rational(6));
}

TEST(FMSolver, UnboundedRange) {
  FMSystem S(2);
  S.addGE({1, 0}, 3); // x >= 3, y free
  VarRange RY = S.rangeOf(1);
  ASSERT_TRUE(RY.Feasible);
  EXPECT_FALSE(RY.Lo.has_value());
  EXPECT_FALSE(RY.Hi.has_value());
  VarRange RX = S.rangeOf(0);
  ASSERT_TRUE(RX.Feasible);
  ASSERT_TRUE(RX.Lo.has_value());
  EXPECT_EQ(*RX.Lo, Rational(3));
  EXPECT_FALSE(RX.Hi.has_value());
}

TEST(FMSolver, RationalVertices) {
  // 2x <= 7, 2x >= 7  ->  x = 7/2.
  FMSystem S(1);
  S.addEQ({2}, 7);
  VarRange R = S.rangeOf(0);
  ASSERT_TRUE(R.Feasible);
  EXPECT_EQ(*R.Lo, Rational(7, 2));
  EXPECT_EQ(*R.Hi, Rational(7, 2));
}

TEST(FMSolver, FixVar) {
  FMSystem S(2);
  S.addLE({1, 1}, 10);
  S.fixVar(0, 4);
  VarRange RY = S.rangeOf(1);
  ASSERT_TRUE(RY.Feasible);
  EXPECT_EQ(*RY.Hi, Rational(6));
}

TEST(FMSolver, ThreeVariableElimination) {
  // Simplex-ish: x + y + z == 6, x,y,z >= 0, z >= 4 -> x in [0, 2].
  FMSystem S(3);
  S.addEQ({1, 1, 1}, 6);
  S.addGE({1, 0, 0}, 0);
  S.addGE({0, 1, 0}, 0);
  S.addGE({0, 0, 1}, 0);
  S.addGE({0, 0, 1}, 4);
  VarRange RX = S.rangeOf(0);
  ASSERT_TRUE(RX.Feasible);
  EXPECT_EQ(*RX.Lo, Rational(0));
  EXPECT_EQ(*RX.Hi, Rational(2));
}

} // namespace
