//===- tests/deps/CrossCheckTest.cpp - Differential comparison tests -----===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "deps/CrossCheck.h"

#include <gtest/gtest.h>

using namespace irlt;
using namespace irlt::deps;

namespace {

DepResult result(std::vector<DepVector> Vs, bool Overflowed = false) {
  DepResult R;
  R.Deps = DepSet(std::move(Vs));
  R.Overflowed = Overflowed;
  return R;
}

TEST(CrossCheck, AgreeOnIdenticalSets) {
  DepResult Fast = result({DepVector::distances({1, 0})});
  DepResult Exact = result({DepVector::distances({1, 0})});
  CrossCheckResult CC = crossCheckDeps(Fast, Exact);
  EXPECT_EQ(CC.Stat, CrossCheckResult::Status::Agree);
  EXPECT_TRUE(CC.sound());
  EXPECT_EQ(CC.str(), "agree");
}

TEST(CrossCheck, AgreeUnderEntrywiseCover) {
  // Fast (0+, 1) covers exact (0, 1) and (1, 1) piecewise-free; exact
  // union covers the fast summary only via expansion - still Agree.
  DepResult Fast =
      result({DepVector({DepElem::zeroPos(), DepElem::distance(1)})});
  DepResult Exact = result({DepVector::distances({0, 1}),
                            DepVector({DepElem::pos(), DepElem::distance(1)})});
  CrossCheckResult CC = crossCheckDeps(Fast, Exact);
  EXPECT_EQ(CC.Stat, CrossCheckResult::Status::Agree) << CC.str();
}

TEST(CrossCheck, PrecisionGapWhenFastOverReports) {
  DepResult Fast = result({DepVector::distances({1, 0}),
                           DepVector({DepElem::zero(), DepElem::pos()})});
  DepResult Exact = result({DepVector::distances({1, 0})});
  CrossCheckResult CC = crossCheckDeps(Fast, Exact);
  EXPECT_EQ(CC.Stat, CrossCheckResult::Status::PrecisionGap);
  EXPECT_TRUE(CC.sound());
  ASSERT_EQ(CC.Extra.size(), 1u);
  EXPECT_EQ(CC.Extra[0].str(), "(0, +)");
  EXPECT_TRUE(CC.Uncovered.empty());
}

TEST(CrossCheck, SoundnessWhenFastUnderReports) {
  DepResult Fast = result({DepVector::distances({0, 1})});
  DepResult Exact = result({DepVector::distances({0, 1}),
                            DepVector::distances({1, -1})});
  CrossCheckResult CC = crossCheckDeps(Fast, Exact);
  EXPECT_EQ(CC.Stat, CrossCheckResult::Status::Soundness);
  EXPECT_FALSE(CC.sound());
  ASSERT_EQ(CC.Uncovered.size(), 1u);
  EXPECT_EQ(CC.Uncovered[0].str(), "(1, -1)");
}

TEST(CrossCheck, SkippedWhenEitherOracleOverflowed) {
  DepResult Clean = result({DepVector::distances({1})});
  DepResult Hot = result({}, /*Overflowed=*/true);
  EXPECT_EQ(crossCheckDeps(Hot, Clean).Stat,
            CrossCheckResult::Status::Skipped);
  EXPECT_EQ(crossCheckDeps(Clean, Hot).Stat,
            CrossCheckResult::Status::Skipped);
  EXPECT_TRUE(crossCheckDeps(Hot, Clean).sound());
}

TEST(CrossCheck, CoveredBySingleVector) {
  DepSet Set({DepVector({DepElem::any(), DepElem::zeroPos()})});
  EXPECT_TRUE(coveredBy(DepVector::distances({-3, 2}), Set));
  EXPECT_FALSE(coveredBy(DepVector::distances({0, -1}), Set));
}

TEST(CrossCheck, CoveredByPiecewiseExpansion) {
  // (0+) has no single cover in {(0), (+)} but is covered piecewise.
  DepSet Set({DepVector({DepElem::zero()}), DepVector({DepElem::pos()})});
  EXPECT_TRUE(coveredBy(DepVector({DepElem::zeroPos()}), Set));
  EXPECT_FALSE(coveredBy(DepVector({DepElem::any()}), Set));
}

TEST(CrossCheck, ReportsRenderWitnesses) {
  DepResult Fast = result({});
  DepResult Exact = result({DepVector::distances({2})});
  CrossCheckResult CC = crossCheckDeps(Fast, Exact);
  EXPECT_NE(CC.str().find("soundness"), std::string::npos);
  EXPECT_NE(CC.str().find("(2)"), std::string::npos);
}

} // namespace
