//===- tests/deps/DepOracleTest.cpp - Oracle registry and pipeline backend ===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "deps/DepOracle.h"

#include "dependence/DepAnalysis.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace irlt;
using namespace irlt::deps;

namespace {

LoopNest parse(const std::string &Src) {
  auto N = parseLoopNest(Src);
  EXPECT_TRUE(N) << N.message();
  return N.take();
}

const char *Stencil = "do i = 1, n\n"
                      "  do j = 1, m\n"
                      "    a(i, j) = a(i - 1, j) + a(i, j - 1)\n"
                      "  enddo\n"
                      "enddo\n";

TEST(DepOracle, RegistryNamesAndLookup) {
  std::vector<std::string> Names = oracleNames();
  ASSERT_EQ(Names.size(), 2u);
  EXPECT_EQ(Names[0], "pipeline");
  EXPECT_EQ(Names[1], "fm-exact");
  for (const std::string &N : Names) {
    const DepOracle *O = oracleByName(N);
    ASSERT_NE(O, nullptr);
    EXPECT_EQ(O->name(), N);
  }
  EXPECT_EQ(oracleByName("banerjee-only"), nullptr);
  EXPECT_EQ(oracleByName(""), nullptr);
}

TEST(DepOracle, PipelineBackendMatchesDirectAnalysis) {
  LoopNest Nest = parse(Stencil);
  DepSet Direct = analyzeDependences(Nest);
  DepResult R = pipelineOracle().analyze(Nest);
  EXPECT_FALSE(R.Overflowed);
  EXPECT_EQ(R.Deps.str(), Direct.str());
  EXPECT_EQ(R.Deps, Direct);
}

TEST(DepOracle, PipelineProvenanceCoversAllPairs) {
  LoopNest Nest = parse(Stencil);
  DepResult R = pipelineOracle().analyze(Nest);
  // One write and two reads of `a`: write-write plus two write/read pairs
  // in both orders.
  ASSERT_EQ(R.Pairs.size(), 5u);
  unsigned Vectors = 0;
  for (const DepPairInfo &P : R.Pairs) {
    EXPECT_EQ(P.Array, "a");
    EXPECT_TRUE(P.Independent == (P.NumVectors == 0));
    EXPECT_NE(std::string(depDecisionName(P.Decided)), "");
    Vectors += P.NumVectors;
  }
  // Dedup can only shrink the union of per-pair contributions.
  EXPECT_GE(Vectors, R.Deps.size());
}

TEST(DepOracle, ProvenanceRecordsPrefilterDecisions) {
  // Subscripts 2i vs 2i+1 differ in parity: the pipeline disproves the
  // pair with the GCD test and says so in the provenance.
  LoopNest Nest = parse("do i = 1, 100\n"
                        "  a(2 * i) = a(2 * i + 1)\n"
                        "enddo\n");
  DepResult R = pipelineOracle().analyze(Nest);
  bool SawGcd = false;
  for (const DepPairInfo &P : R.Pairs)
    if (P.Decided == DepDecision::GCD) {
      SawGcd = true;
      EXPECT_TRUE(P.Independent);
    }
  EXPECT_TRUE(SawGcd);
}

TEST(DepOracle, ConfiguredPipelineOracleHonorsOptions) {
  LoopNest Nest = parse(Stencil);
  DepAnalysisOptions Opts;
  Opts.UseFastTests = false;
  std::unique_ptr<DepOracle> O = makePipelineOracle(Opts);
  ASSERT_NE(O, nullptr);
  EXPECT_EQ(O->name(), "pipeline");
  DepResult R = O->analyze(Nest);
  // Disabling the prefilters must not change the dependence set.
  EXPECT_EQ(R.Deps, analyzeDependences(Nest));
}

TEST(DepOracle, DecisionNamesAreStable) {
  EXPECT_STREQ(depDecisionName(DepDecision::IllTyped), "ill-typed");
  EXPECT_STREQ(depDecisionName(DepDecision::NonLinear), "nonlinear");
  EXPECT_STREQ(depDecisionName(DepDecision::ZIV), "ziv");
  EXPECT_STREQ(depDecisionName(DepDecision::GCD), "gcd");
  EXPECT_STREQ(depDecisionName(DepDecision::FM), "fm");
}

} // namespace
