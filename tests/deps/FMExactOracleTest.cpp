//===- tests/deps/FMExactOracleTest.cpp - First-principles FM backend ----===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the fm-exact backend plus the soundness invariant the
/// differential fuzzer checks at scale: on every nest the exact oracle's
/// vectors must be covered by the pipeline's (exact subset-of fast). The
/// corpus sweep runs the 12 tests/data/deps nests; the property sweep
/// runs a deterministic sample of generated fuzzer nests in-process so
/// the invariant stays pinned in ctest even without irlt-fuzz --deps.
///
//===----------------------------------------------------------------------===//

#include "deps/CrossCheck.h"
#include "deps/DepOracle.h"

#include "fuzz/NestGen.h"
#include "fuzz/Rng.h"
#include "ir/Parser.h"

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace irlt;
using namespace irlt::deps;

namespace {

LoopNest parse(const std::string &Src) {
  auto N = parseLoopNest(Src);
  EXPECT_TRUE(N) << N.message();
  return N.take();
}

std::string readFileOrEmpty(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return "";
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::string dataPath(const std::string &Name) {
  return std::string(IRLT_DEPS_DATA_DIR) + "/" + Name;
}

const char *CorpusNests[] = {
    "block_matmul",   "coalesce_rect",
    "interleave_rect", "parallelize_inner",
    "reverse_permute_rect", "strided1_block_unimodular",
    "strided2_lower_bound_permute", "strided3_stripmine_reversal",
    "strided4_fast_path_skew", "strided5_search_nest",
    "stripmine_rect", "unimodular_stencil"};

TEST(FMExactOracle, FlowDependenceDistanceOne) {
  LoopNest Nest = parse("do i = 1, 100\n"
                        "  a(i) = a(i - 1)\n"
                        "enddo\n");
  DepResult R = fmExactOracle().analyze(Nest);
  EXPECT_FALSE(R.Overflowed);
  EXPECT_EQ(R.Deps.str(), "{(1)}");
}

TEST(FMExactOracle, TwoDimStencilDistances) {
  LoopNest Nest = parse("do i = 1, n\n"
                        "  do j = 1, m\n"
                        "    a(i, j) = a(i - 1, j) + a(i, j - 1)\n"
                        "  enddo\n"
                        "enddo\n");
  DepResult R = fmExactOracle().analyze(Nest);
  EXPECT_FALSE(R.Overflowed);
  EXPECT_EQ(R.Deps.str(), "{(0, 1), (1, 0)}");
}

TEST(FMExactOracle, IntegerTighteningProvesParityIndependence) {
  // 2i vs 2i+1 has rational solutions but no integer ones; the
  // integer-tightened FM must prove independence with no GCD prefilter.
  LoopNest Nest = parse("do i = 1, 100\n"
                        "  a(2 * i) = a(2 * i + 1)\n"
                        "enddo\n");
  DepResult R = fmExactOracle().analyze(Nest);
  EXPECT_FALSE(R.Overflowed);
  EXPECT_TRUE(R.Deps.empty()) << R.Deps.str();
  for (const DepPairInfo &P : R.Pairs)
    if (P.Array == "a" && P.SrcIsWrite != P.DstIsWrite) {
      EXPECT_TRUE(P.Independent);
    }
}

TEST(FMExactOracle, BoundedRangeKillsFarDependences) {
  // a(i) vs a(i - 50) over i in [1, 10]: the source of the would-be
  // dependence lies outside the iteration space.
  LoopNest Nest = parse("do i = 1, 10\n"
                        "  a(i) = a(i - 50)\n"
                        "enddo\n");
  DepResult R = fmExactOracle().analyze(Nest);
  EXPECT_FALSE(R.Overflowed);
  EXPECT_TRUE(R.Deps.empty()) << R.Deps.str();
}

TEST(FMExactOracle, StridedLoopUsesTripCounterSpace) {
  // With step 2 the d-space is counted in trip counters: a(i) = a(i - 2)
  // is distance 1, not 2, matching the pipeline's stride model.
  LoopNest Nest = parse("do i = 1, 100, 2\n"
                        "  a(i) = a(i - 2)\n"
                        "enddo\n");
  DepResult Exact = fmExactOracle().analyze(Nest);
  DepResult Fast = pipelineOracle().analyze(Nest);
  EXPECT_EQ(Exact.Deps.str(), "{(1)}");
  EXPECT_EQ(Fast.Deps.str(), Exact.Deps.str());
}

TEST(FMExactOracle, StridedParityIndependence) {
  // Step 2 from 1 touches odd indices only; a(i + 1) touches even ones.
  LoopNest Nest = parse("do i = 1, 100, 2\n"
                        "  a(i) = a(i + 1)\n"
                        "enddo\n");
  DepResult Exact = fmExactOracle().analyze(Nest);
  EXPECT_FALSE(Exact.Overflowed);
  EXPECT_TRUE(Exact.Deps.empty()) << Exact.Deps.str();
}

TEST(FMExactOracle, NonLinearSubscriptFallsBackConservatively) {
  // i*i is outside the affine subset in every dimension, so both
  // backends must emit the same conservative (+, *...) family.
  LoopNest Nest = parse("do i = 1, 10\n"
                        "  do j = 1, 10\n"
                        "    a(i * i, j * j) = a(i, j)\n"
                        "  enddo\n"
                        "enddo\n");
  DepResult Exact = fmExactOracle().analyze(Nest);
  DepResult Fast = pipelineOracle().analyze(Nest);
  EXPECT_EQ(Exact.Deps.str(), Fast.Deps.str());
  CrossCheckResult CC = crossCheckDeps(Fast, Exact);
  EXPECT_EQ(CC.Stat, CrossCheckResult::Status::Agree) << CC.str();
}

TEST(FMExactOracle, KnownPrecisionGapIsClassifiedNotFailed) {
  // Strided-outer triangular nest (fuzz-found): the pipeline keeps a
  // (0, 2) vector the exact backend disproves - the inner range at the
  // only live outer iteration is too narrow. This is the precision-gap
  // class, never a soundness failure.
  LoopNest Nest = parse("do i = 0, 5, 2\n"
                        "  do j = 3, i\n"
                        "    a(i, j) = a(i, j) + a(i - 1, j + 1) + "
                        "a(i, j - 2)\n"
                        "  enddo\n"
                        "enddo\n");
  DepResult Fast = pipelineOracle().analyze(Nest);
  DepResult Exact = fmExactOracle().analyze(Nest);
  EXPECT_TRUE(Exact.Deps.empty()) << Exact.Deps.str();
  CrossCheckResult CC = crossCheckDeps(Fast, Exact);
  EXPECT_EQ(CC.Stat, CrossCheckResult::Status::PrecisionGap) << CC.str();
  ASSERT_EQ(CC.Extra.size(), 1u);
  EXPECT_EQ(CC.Extra[0].str(), "(0, 2)");
}

TEST(FMExactOracle, CorpusSoundnessSweep) {
  for (const char *Name : CorpusNests) {
    std::string Src = readFileOrEmpty(dataPath(std::string(Name) + ".nest"));
    ASSERT_FALSE(Src.empty()) << Name;
    LoopNest Nest = parse(Src);
    DepResult Fast = pipelineOracle().analyze(Nest);
    DepResult Exact = fmExactOracle().analyze(Nest);
    CrossCheckResult CC = crossCheckDeps(Fast, Exact);
    EXPECT_TRUE(CC.sound()) << Name << ": " << CC.str();
    EXPECT_NE(CC.Stat, CrossCheckResult::Status::Skipped) << Name;
  }
}

TEST(FMExactOracle, GeneratedNestSoundnessProperty) {
  // A deterministic in-process slice of what irlt-fuzz --deps checks at
  // scale: the pipeline must cover the exact oracle on generated nests.
  fuzz::NestGenOptions Opts;
  Opts.MaxDepth = 3;
  unsigned Skipped = 0;
  for (unsigned Case = 0; Case < 200; ++Case) {
    fuzz::Rng Rng(fuzz::mix64(0xdeb5ull ^ Case));
    fuzz::NestSpec Spec = fuzz::generateNest(Rng, Opts);
    auto Parsed = parseLoopNest(Spec.render());
    ASSERT_TRUE(Parsed) << Spec.render() << "\n" << Parsed.message();
    LoopNest Nest = Parsed.take();
    DepResult Fast = pipelineOracle().analyze(Nest);
    DepResult Exact = fmExactOracle().analyze(Nest);
    CrossCheckResult CC = crossCheckDeps(Fast, Exact);
    if (CC.Stat == CrossCheckResult::Status::Skipped) {
      ++Skipped;
      continue;
    }
    ASSERT_TRUE(CC.sound())
        << "case " << Case << "\n" << Spec.render() << CC.str();
  }
  // Overflow skips must stay the exception on plain generated nests.
  EXPECT_LT(Skipped, 20u);
}

} // namespace
