//===- tests/deps/ScopIOTest.cpp - OpenScop round-trip goldens -----------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-exact goldens for the scop dialect over the 12-nest corpus (one
/// nest per Table 1 template plus the five strided-soundness nests):
/// export matches <case>.golden.scop byte-for-byte, import(export) is
/// accepted, and export(import(export)) reaches a fixpoint. Regenerate
/// the goldens with IRLT_UPDATE_GOLDEN=1 after sanctioned format changes.
///
//===----------------------------------------------------------------------===//

#include "deps/ScopIO.h"

#include "deps/DepOracle.h"
#include "ir/Parser.h"

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace irlt;
using namespace irlt::deps;

namespace {

std::string readFileOrEmpty(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return "";
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::string dataPath(const std::string &Name) {
  return std::string(IRLT_DEPS_DATA_DIR) + "/" + Name;
}

bool updateGolden() { return std::getenv("IRLT_UPDATE_GOLDEN") != nullptr; }

LoopNest parse(const std::string &Src) {
  auto N = parseLoopNest(Src);
  EXPECT_TRUE(N) << N.message();
  return N.take();
}

void checkCase(const std::string &Name) {
  SCOPED_TRACE(Name);
  std::string Src = readFileOrEmpty(dataPath(Name + ".nest"));
  ASSERT_FALSE(Src.empty());
  LoopNest Nest = parse(Src);

  auto Scop = exportScop(Nest);
  ASSERT_TRUE(Scop) << Scop.message();
  std::string Text = Scop.take();

  std::string GoldenPath = dataPath(Name + ".golden.scop");
  if (updateGolden()) {
    std::ofstream Out(GoldenPath, std::ios::binary);
    ASSERT_TRUE(Out.good());
    Out << Text;
  } else {
    EXPECT_EQ(Text, readFileOrEmpty(GoldenPath))
        << "golden mismatch; regenerate with IRLT_UPDATE_GOLDEN=1";
  }

  // Import accepts what export produced...
  auto Back = importScop(Text);
  ASSERT_TRUE(Back) << Back.message();
  LoopNest Again = Back.take();

  // ...reaches a byte fixpoint on re-export...
  auto Scop2 = exportScop(Again);
  ASSERT_TRUE(Scop2) << Scop2.message();
  EXPECT_EQ(Scop2.take(), Text);

  // ...and preserves dependence semantics through the round trip.
  EXPECT_EQ(pipelineOracle().analyze(Again).Deps.str(),
            pipelineOracle().analyze(Nest).Deps.str());
}

TEST(ScopIO, GoldenBlockMatmul) { checkCase("block_matmul"); }
TEST(ScopIO, GoldenCoalesceRect) { checkCase("coalesce_rect"); }
TEST(ScopIO, GoldenInterleaveRect) { checkCase("interleave_rect"); }
TEST(ScopIO, GoldenParallelizeInner) { checkCase("parallelize_inner"); }
TEST(ScopIO, GoldenReversePermuteRect) { checkCase("reverse_permute_rect"); }
TEST(ScopIO, GoldenStripmineRect) { checkCase("stripmine_rect"); }
TEST(ScopIO, GoldenUnimodularStencil) { checkCase("unimodular_stencil"); }
TEST(ScopIO, GoldenStrided1BlockUnimodular) {
  checkCase("strided1_block_unimodular");
}
TEST(ScopIO, GoldenStrided2LowerBoundPermute) {
  checkCase("strided2_lower_bound_permute");
}
TEST(ScopIO, GoldenStrided3StripmineReversal) {
  checkCase("strided3_stripmine_reversal");
}
TEST(ScopIO, GoldenStrided4FastPathSkew) {
  checkCase("strided4_fast_path_skew");
}
TEST(ScopIO, GoldenStrided5SearchNest) { checkCase("strided5_search_nest"); }

TEST(ScopIO, ExportRejectsNonAffineBound) {
  LoopNest Nest = parse("do i = 1, n * n\n"
                        "  a(i) = a(i - 1)\n"
                        "enddo\n");
  auto Scop = exportScop(Nest);
  EXPECT_FALSE(Scop);
}

TEST(ScopIO, ExportRejectsNonConstantStep) {
  LoopNest Nest = parse("do i = 1, 100, n\n"
                        "  a(i) = a(i - 1)\n"
                        "enddo\n");
  auto Scop = exportScop(Nest);
  EXPECT_FALSE(Scop);
}

TEST(ScopIO, ImportRejectsMalformedText) {
  EXPECT_FALSE(importScop(""));
  EXPECT_FALSE(importScop("do i = 1, 10\n  a(i) = a(i - 1)\nenddo\n"));
  // A truncated document: header but no sections.
  EXPECT_FALSE(importScop("<OpenScop>\n</OpenScop>\n"));
}

TEST(ScopIO, ImportRejectsTamperedMatrix) {
  LoopNest Nest = parse("do i = 1, 10\n"
                        "  a(i) = a(i - 1)\n"
                        "enddo\n");
  auto Scop = exportScop(Nest);
  ASSERT_TRUE(Scop) << Scop.message();
  std::string Text = Scop.take();
  // Flip the e/i flag of the first constraint row: inequality rows are
  // mandatory in this dialect.
  size_t Pos = Text.find("\n1 ");
  ASSERT_NE(Pos, std::string::npos);
  Text[Pos + 1] = '0';
  EXPECT_FALSE(importScop(Text));
}

} // namespace
