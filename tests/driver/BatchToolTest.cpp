//===- tests/driver/BatchToolTest.cpp - irlt-batch end to end -------------===//
//
// Drives the irlt-batch binary as a subprocess: ndjson corpus in, one
// versioned JSON record per request out, byte-identical across --jobs
// values. The binary path comes from the build system (IRLT_BATCH_PATH).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace irlt;

namespace {

#ifndef IRLT_BATCH_PATH
#define IRLT_BATCH_PATH "irlt-batch"
#endif

struct RunResult {
  int ExitCode;
  std::string Output;
};

RunResult runBatch(const std::string &Args, bool MergeStderr = false) {
  std::string Cmd = std::string(IRLT_BATCH_PATH) + " " + Args +
                    (MergeStderr ? " 2>&1" : " 2>/dev/null");
  FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  std::string Out;
  std::array<char, 4096> Buf;
  size_t Got;
  while ((Got = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
    Out.append(Buf.data(), Got);
  int Status = pclose(Pipe);
  return RunResult{WEXITSTATUS(Status), Out};
}

std::string writeCorpus(const std::string &Tag, const std::string &Text) {
  std::string Path = ::testing::TempDir() + "/irlt_batch_" + Tag + ".ndjson";
  std::ofstream Out(Path);
  Out << Text;
  return Path;
}

std::vector<std::string> lines(const std::string &Text) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string::npos)
      Nl = Text.size();
    Out.push_back(Text.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  return Out;
}

const char *Corpus =
    R"({"id": "a", "nest": "do i = 1, n\n  do j = 1, n\n    a(i, j) = a(i, j) + 1\n  enddo\nenddo\n", "script": "interchange 1 2", "emit": "loop"})"
    "\n"
    R"({"id": "b", "nest": "do i = 2, n\n  do j = 1, n\n    a(i, j) = a(i - 1, j) + 1\n  enddo\nenddo\n", "script": "parallelize 2"})"
    "\n"
    R"({"id": "c", "nest": "do i = 1, n\n  a(i) = a(i) + 1\nenddo\n", "auto": "par", "beam": 2, "depth": 1})"
    "\n";

} // namespace

TEST(BatchTool, ServesCorpusWithSchemaValidRecords) {
  std::string Path = writeCorpus("ok", Corpus);
  RunResult R = runBatch(Path + " --jobs 2");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  std::vector<std::string> Records = lines(R.Output);
  ASSERT_EQ(Records.size(), 3u) << R.Output;
  const char *Ids[] = {"a", "b", "c"};
  for (size_t I = 0; I < Records.size(); ++I) {
    ErrorOr<json::JsonValue> V = json::JsonValue::parse(Records[I]);
    ASSERT_TRUE(static_cast<bool>(V)) << Records[I];
    EXPECT_EQ(V->intOr("schema_version", 0), json::SchemaVersion);
    EXPECT_EQ(V->stringOr("tool"), "irlt-batch");
    EXPECT_EQ(V->stringOr("id"), Ids[I]);
    EXPECT_TRUE(V->boolOr("ok", false)) << Records[I];
  }
}

TEST(BatchTool, OutputIsByteIdenticalAcrossJobCounts) {
  std::string Path = writeCorpus("det", Corpus);
  RunResult One = runBatch(Path + " --jobs 1");
  RunResult Four = runBatch(Path + " --jobs 4");
  RunResult Eight = runBatch(Path + " --jobs 8");
  EXPECT_EQ(One.ExitCode, 0);
  EXPECT_EQ(One.Output, Four.Output);
  EXPECT_EQ(One.Output, Eight.Output);
}

TEST(BatchTool, IllegalSequenceExitsTwo) {
  std::string Path = writeCorpus(
      "illegal",
      R"({"id": "x", "nest": "do i = 2, n\n  do j = 1, n\n    a(i, j) = a(i - 1, j) + 1\n  enddo\nenddo\n", "script": "parallelize 1"})"
      "\n");
  RunResult R = runBatch(Path);
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
  ErrorOr<json::JsonValue> V = json::JsonValue::parse(lines(R.Output)[0]);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_TRUE(V->boolOr("ok", false));
  EXPECT_FALSE(V->boolOr("legal", true));
  EXPECT_EQ(V->stringOr("reject_kind"), "lex-negative");
}

TEST(BatchTool, MalformedRequestExitsTwoWithErrorRecord) {
  std::string Path = writeCorpus("bad", "{\"script\": \"reverse 1\"}\n");
  RunResult R = runBatch(Path);
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
  ErrorOr<json::JsonValue> V = json::JsonValue::parse(lines(R.Output)[0]);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_FALSE(V->boolOr("ok", true));
  ASSERT_NE(V->find("error"), nullptr);
}

TEST(BatchTool, StatsGoToStderrAsMetricsRecord) {
  std::string Path = writeCorpus("stats", Corpus);
  RunResult Clean = runBatch(Path + " --jobs 2 --stats");
  // stdout carries only result records even with --stats on.
  for (const std::string &L : lines(Clean.Output))
    EXPECT_EQ(json::JsonValue::parse(L)->stringOr("record"), "");
  RunResult Merged = runBatch(Path + " --jobs 2 --stats",
                              /*MergeStderr=*/true);
  bool SawMetrics = false;
  for (const std::string &L : lines(Merged.Output)) {
    ErrorOr<json::JsonValue> V = json::JsonValue::parse(L);
    if (static_cast<bool>(V) && V->stringOr("record") == "metrics") {
      SawMetrics = true;
      EXPECT_EQ(V->intOr("requests", 0), 3);
      EXPECT_EQ(V->intOr("jobs", 0), 2);
    }
  }
  EXPECT_TRUE(SawMetrics) << Merged.Output;
}

TEST(BatchTool, ReadsFromStdin) {
  std::string Path = writeCorpus("stdin", Corpus);
  std::string Cmd = std::string(IRLT_BATCH_PATH) + " < " + Path +
                    " 2>/dev/null";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  ASSERT_NE(Pipe, nullptr);
  std::string Out;
  std::array<char, 4096> Buf;
  size_t Got;
  while ((Got = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
    Out.append(Buf.data(), Got);
  int Status = pclose(Pipe);
  EXPECT_EQ(WEXITSTATUS(Status), 0);
  EXPECT_EQ(lines(Out).size(), 3u);
}

TEST(BatchTool, UsageErrorsExitOne) {
  EXPECT_EQ(runBatch("--jobs 0", true).ExitCode, 1);
  EXPECT_EQ(runBatch("--frobnicate", true).ExitCode, 1);
  EXPECT_EQ(runBatch("/nonexistent/corpus.ndjson", true).ExitCode, 1);
}

TEST(BatchTool, CacheCapDoesNotChangeTheStream) {
  // Repeat the corpus so the caches actually churn under --cache-cap 1.
  std::string Text;
  for (int I = 0; I < 3; ++I)
    Text += Corpus;
  std::string Path = writeCorpus("cachecap", Text);
  RunResult Unbounded = runBatch(Path);
  RunResult Capped = runBatch(Path + " --cache-cap 1");
  RunResult Off = runBatch(Path + " --no-cache");
  EXPECT_EQ(Unbounded.ExitCode, 0);
  EXPECT_EQ(Capped.Output, Unbounded.Output)
      << "eviction must never change a result record";
  EXPECT_EQ(Off.Output, Unbounded.Output);
}

TEST(BatchTool, MaxLineBytesRejectsWithoutEcho) {
  std::string Marker = "SECRET_PAYLOAD_DO_NOT_ECHO";
  std::string Path = writeCorpus(
      "maxline", "{\"id\": \"big\", \"nest\": \"" + Marker +
                     std::string(300, 'x') + "\"}\n");
  RunResult R = runBatch(Path + " --max-line-bytes 128", true);
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
  EXPECT_EQ(R.Output.find(Marker), std::string::npos);
  ErrorOr<json::JsonValue> V = json::JsonValue::parse(lines(R.Output)[0]);
  ASSERT_TRUE(static_cast<bool>(V)) << R.Output;
  ASSERT_NE(V->find("error"), nullptr);
  EXPECT_EQ(V->find("error")->stringOr("kind"), "oversized_line");
}

TEST(BatchTool, WorkerThrowFaultViaFlagAndEnv) {
  std::string Path = writeCorpus(
      "boom",
      R"({"id": "boom-1", "nest": "do i = 1, n\n  a(i) = 0\nenddo\n", "script": "reverse 1"})"
      "\n");
  for (const std::string &Cmd :
       {std::string(IRLT_BATCH_PATH) + " " + Path + " --fault worker-throw",
        "IRLT_FAULT=worker-throw " + std::string(IRLT_BATCH_PATH) + " " +
            Path}) {
    FILE *Pipe = popen((Cmd + " 2>/dev/null").c_str(), "r");
    ASSERT_NE(Pipe, nullptr);
    std::string Out;
    std::array<char, 4096> Buf;
    size_t Got;
    while ((Got = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
      Out.append(Buf.data(), Got);
    int Status = pclose(Pipe);
    EXPECT_EQ(WEXITSTATUS(Status), 2) << Cmd << "\n" << Out;
    ErrorOr<json::JsonValue> V = json::JsonValue::parse(lines(Out)[0]);
    ASSERT_TRUE(static_cast<bool>(V)) << Out;
    ASSERT_NE(V->find("error"), nullptr);
    EXPECT_EQ(V->find("error")->stringOr("kind"), "internal");
  }
}

TEST(BatchTool, BadFaultSpecExitsOne) {
  EXPECT_EQ(runBatch("--fault no-such-kind /dev/null", true).ExitCode, 1);
}

TEST(BatchTool, SigintFinishesInFlightAndExitsThree) {
  // A corpus big enough to still be in flight 200ms in; SIGINT must
  // yield a clean record prefix, one "interrupted" marker, and exit 3.
  std::string Text;
  for (int I = 0; I < 200; ++I)
    Text += R"({"id": "s)" + std::to_string(I) +
            R"(", "nest": "arrays B, C\ndo i = 1, n\n  do j = 1, n\n    do k = 1, n\n      A(i, j) += B(i, k) * C(k, j)\n    enddo\n  enddo\nenddo\n", "auto": "locality", "beam": 4, "depth": 2})"
            "\n";
  std::string Path = writeCorpus("sigint", Text);
  std::string Cmd = std::string("sh -c '") + IRLT_BATCH_PATH + " " + Path +
                    " --jobs 1 --no-cache 2>/dev/null & P=$!; sleep 0.3; "
                    "kill -INT $P; wait $P; echo EXIT=$?'";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  ASSERT_NE(Pipe, nullptr);
  std::string Out;
  std::array<char, 4096> Buf;
  size_t Got;
  while ((Got = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
    Out.append(Buf.data(), Got);
  pclose(Pipe);

  std::vector<std::string> L = lines(Out);
  ASSERT_GE(L.size(), 2u) << Out;
  EXPECT_EQ(L.back(), "EXIT=3") << Out;
  // Every emitted line before the exit marker is a whole, valid record;
  // the last one is the interruption marker with a consistent count.
  uint64_t ResultLines = 0;
  bool SawMarker = false;
  for (size_t I = 0; I + 1 < L.size(); ++I) {
    ErrorOr<json::JsonValue> V = json::JsonValue::parse(L[I]);
    ASSERT_TRUE(static_cast<bool>(V)) << "torn record: " << L[I];
    if (V->stringOr("record") == "interrupted") {
      SawMarker = true;
      EXPECT_EQ(static_cast<uint64_t>(V->intOr("served", -1)), ResultLines);
      EXPECT_EQ(V->intOr("requests", 0), 200);
      EXPECT_EQ(I + 2, L.size()) << "marker must be the final record";
    } else {
      ++ResultLines;
    }
  }
  EXPECT_TRUE(SawMarker) << Out;
  EXPECT_LT(ResultLines, 200u) << "the run should not have completed";
}
