//===- tests/driver/ScriptTest.cpp -----------------------------------------===//

#include "driver/Script.h"
#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

TEST(Script, SimpleDirectives) {
  ErrorOr<TransformSequence> S =
      parseTransformScript("interchange 1 2\nreverse 2\n", 2);
  ASSERT_TRUE(static_cast<bool>(S)) << S.message();
  ASSERT_EQ(S->size(), 2u);
  EXPECT_EQ(S->steps()[0]->name(), "ReversePermute");
  EXPECT_EQ(S->steps()[1]->name(), "ReversePermute");
}

TEST(Script, SemicolonsAndComments) {
  ErrorOr<TransformSequence> S = parseTransformScript(
      "interchange 1 2 ; parallelize 1   ! make outer parallel\n", 2);
  ASSERT_TRUE(static_cast<bool>(S)) << S.message();
  EXPECT_EQ(S->size(), 2u);
}

TEST(Script, SizeThreadingThroughStructuralDirectives) {
  // block grows the nest; the next directive sees the new size.
  ErrorOr<TransformSequence> S = parseTransformScript(
      "block 1 2 8 8\nparallelize 1 3\ncoalesce 1 2\ninterchange 1 2\n", 2);
  ASSERT_TRUE(static_cast<bool>(S)) << S.message();
  ASSERT_EQ(S->size(), 4u);
  EXPECT_EQ(S->steps()[1]->inputSize(), 4u);
  EXPECT_EQ(S->steps()[2]->inputSize(), 4u);
  EXPECT_EQ(S->steps()[3]->inputSize(), 3u);
}

TEST(Script, SymbolicSizes) {
  ErrorOr<TransformSequence> S =
      parseTransformScript("block 1 2 bs bs\nstripmine 4 w\n", 2);
  ASSERT_TRUE(static_cast<bool>(S)) << S.message();
  const auto *B = dyn_cast<BlockTemplate>(S->steps()[0].get());
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->bsize()[0]->str(), "bs");
}

TEST(Script, UnimodularMatrixRows) {
  ErrorOr<TransformSequence> S =
      parseTransformScript("unimodular 1 1 / 1 0\n", 2);
  ASSERT_TRUE(static_cast<bool>(S)) << S.message();
  const auto *U = dyn_cast<UnimodularTemplate>(S->steps()[0].get());
  ASSERT_NE(U, nullptr);
  EXPECT_EQ(U->matrix().str(), "[[1, 1], [1, 0]]");
}

TEST(Script, SkewDirective) {
  ErrorOr<TransformSequence> S = parseTransformScript("skew 1 2 3\n", 2);
  ASSERT_TRUE(static_cast<bool>(S)) << S.message();
  const auto *U = dyn_cast<UnimodularTemplate>(S->steps()[0].get());
  ASSERT_NE(U, nullptr);
  EXPECT_EQ(U->matrix().str(), "[[1, 0], [3, 1]]");
}

TEST(Script, CoalesceWithName) {
  ErrorOr<TransformSequence> S = parseTransformScript("coalesce 1 2 jic\n", 3);
  ASSERT_TRUE(static_cast<bool>(S)) << S.message();
  EXPECT_EQ(S->steps()[0]->outputSize(), 2u);
}

TEST(Script, Errors) {
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("frobnicate 1\n", 2)));
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("interchange 1\n", 2)));
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("interchange 0 2\n", 2)));
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("interchange 1 3\n", 2)));
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("block 2 1 4\n", 2)));
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("block 1 2 4\n", 2)));
  EXPECT_FALSE(
      static_cast<bool>(parseTransformScript("unimodular 2 0 / 0 2\n", 2)));
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("permute 1 1\n", 2)));
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("skew 1 1 1\n", 2)));
  // Error messages carry line numbers.
  ErrorOr<TransformSequence> S =
      parseTransformScript("interchange 1 2\nbogus\n", 2);
  ASSERT_FALSE(static_cast<bool>(S));
  EXPECT_NE(S.message().find("line 2"), std::string::npos) << S.message();
}

TEST(Script, ErrorsOnMalformedDirectives) {
  // Missing operands, junk operands, and trailing garbage all fail.
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("reverse\n", 2)));
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("reverse x\n", 2)));
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("block 1 2\n", 3)));
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("coalesce 1\n", 3)));
  EXPECT_FALSE(
      static_cast<bool>(parseTransformScript("parallelize 1 2 3\n", 2)));
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("skew 2 1\n", 2)));
  EXPECT_FALSE(
      static_cast<bool>(parseTransformScript("interleave 1 2\n", 3)));
}

TEST(Script, ErrorsOnOutOfRangePositions) {
  // Positions are 1-based; 0 and past-the-end both fail, for every
  // position-bearing directive.
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("reverse 0\n", 2)));
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("reverse 3\n", 2)));
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("permute 0 1\n", 2)));
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("block 0 2 4\n", 2)));
  EXPECT_FALSE(
      static_cast<bool>(parseTransformScript("coalesce 2 4\n", 3)));
  EXPECT_FALSE(
      static_cast<bool>(parseTransformScript("parallelize 0 1\n", 2)));
  EXPECT_FALSE(
      static_cast<bool>(parseTransformScript("interleave 3 3 2\n", 2)));
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("stripmine 0 4\n", 2)));
  EXPECT_FALSE(static_cast<bool>(parseTransformScript("skew 1 3 1\n", 2)));
}

TEST(Script, ErrorsOnBadUnimodularMatrices) {
  // Non-square rows.
  EXPECT_FALSE(
      static_cast<bool>(parseTransformScript("unimodular 1 0 / 0\n", 2)));
  // Row count != nest depth.
  EXPECT_FALSE(
      static_cast<bool>(parseTransformScript("unimodular 1 0 / 0 1\n", 3)));
  // Singular (determinant 0).
  EXPECT_FALSE(
      static_cast<bool>(parseTransformScript("unimodular 1 1 / 1 1\n", 2)));
  // |det| != 1.
  EXPECT_FALSE(
      static_cast<bool>(parseTransformScript("unimodular 2 0 / 0 1\n", 2)));
  // Coefficient overflows int64: rejected cleanly, not UB.
  EXPECT_FALSE(static_cast<bool>(parseTransformScript(
      "unimodular 99999999999999999999 0 / 0 1\n", 2)));
}

TEST(Script, MultiErrorRecoveryReportsEveryBadLine) {
  // The parser keeps going after an error, so one pass reports them all.
  ErrorOr<TransformSequence> S = parseTransformScript("frobnicate 1 2\n"
                                                      "interchange 1 2\n"
                                                      "reverse 9\n"
                                                      "unimodular 1 / 2\n",
                                                      2);
  ASSERT_FALSE(static_cast<bool>(S));
  std::vector<unsigned> ErrorLines;
  for (const Diag &D : S.diags())
    if (D.Severity == DiagSeverity::Error)
      ErrorLines.push_back(D.Line);
  EXPECT_EQ(ErrorLines, (std::vector<unsigned>{1, 3, 4})) << S.message();
}

TEST(Script, DiagnosticsCarryStructuredLocations) {
  ErrorOr<TransformSequence> S =
      parseTransformScript("interchange 1 2\nblock 0 1 4\n", 2);
  ASSERT_FALSE(static_cast<bool>(S));
  ASSERT_GE(S.diags().size(), 1u);
  const Diag &D = S.diags().front();
  EXPECT_EQ(D.Line, 2u);
  EXPECT_EQ(D.TemplateName, "block");
  // The rendered message still mentions the line for humans.
  EXPECT_NE(S.message().find("line 2"), std::string::npos) << S.message();
}

TEST(Script, Figure7ScriptEndToEnd) {
  // The whole Appendix A pipeline as a script, verified by execution.
  ErrorOr<LoopNest> N = parseLoopNest("arrays B, C\n"
                                      "do i = 1, n\n"
                                      "  do j = 1, n\n"
                                      "    do k = 1, n\n"
                                      "      A(i, j) += B(i, k) * C(k, j)\n"
                                      "    enddo\n"
                                      "  enddo\n"
                                      "enddo\n");
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  ErrorOr<TransformSequence> S = parseTransformScript(
      "permute 3 1 2\n"
      "block 1 3 bj bk bi\n"
      "parallelize 1 3\n"
      "interchange 2 3\n"
      "coalesce 1 2 jic\n",
      3);
  ASSERT_TRUE(static_cast<bool>(S)) << S.message();
  ErrorOr<LoopNest> Out = applySequence(*S, *N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->Loops[0].IndexVar, "jic");
  EvalConfig C;
  C.Params = {{"n", 9}, {"bj", 3}, {"bk", 2}, {"bi", 4}};
  VerifyResult V = verifyTransformed(*N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

} // namespace
