//===- tests/driver/ServeToolTest.cpp - irlt-serve end to end -------------===//
//
// Drives the irlt-serve daemon and the irlt-servectl client as real
// subprocesses: the SIGTERM drain lifecycle, crash-safe journal
// persistence (including a SIGKILL-mid-dump stand-in), byte-identical
// replay after restart, and the client-side fault matrix. Binary paths
// come from the build system (IRLT_SERVE_PATH / IRLT_SERVECTL_PATH).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <sys/types.h>

using namespace irlt;

namespace {

#ifndef IRLT_SERVE_PATH
#define IRLT_SERVE_PATH "irlt-serve"
#endif
#ifndef IRLT_SERVECTL_PATH
#define IRLT_SERVECTL_PATH "irlt-servectl"
#endif

struct RunResult {
  int ExitCode;
  std::string Output;
};

/// Runs a foreground command (servectl invocations) capturing stdout.
RunResult run(const std::string &Cmd) {
  FILE *Pipe = popen((Cmd + " 2>/dev/null").c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  std::string Out;
  std::array<char, 4096> Buf;
  size_t Got;
  while ((Got = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
    Out.append(Buf.data(), Got);
  int Status = pclose(Pipe);
  return RunResult{WEXITSTATUS(Status), Out};
}

std::string tmpFile(const std::string &Name) {
  return ::testing::TempDir() + "irlt_servetool_" + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// A daemon started in the background through the shell; the pid is the
/// daemon's own (echo $! of the exec'd binary).
struct Daemon {
  pid_t Pid = -1;
  std::string OutFile;
  std::string Sock;

  bool alive() const { return Pid > 0 && ::kill(Pid, 0) == 0; }
};

/// Starts irlt-serve detached; \p Extra is appended to the command line,
/// \p Env (optional) is prefixed ("IRLT_FAULT=worker-throw").
Daemon startDaemon(const std::string &Tag, const std::string &Extra,
                   const std::string &Env = "") {
  Daemon D;
  D.Sock = tmpFile(Tag + ".sock");
  D.OutFile = tmpFile(Tag + ".out");
  std::remove(D.Sock.c_str());
  std::string Cmd = Env + (Env.empty() ? "" : " ") + "exec " +
                    IRLT_SERVE_PATH + " --socket " + D.Sock + " " + Extra +
                    " > " + D.OutFile + " 2>&1 & echo $!";
  FILE *Pipe = popen(("sh -c '" + Cmd + "'").c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  if (!Pipe)
    return D;
  long Pid = -1;
  if (std::fscanf(Pipe, "%ld", &Pid) != 1)
    Pid = -1;
  pclose(Pipe);
  D.Pid = static_cast<pid_t>(Pid);
  EXPECT_GT(D.Pid, 0);
  // Wait until the daemon answers (retry connects every 50 ms).
  RunResult Ping = run(std::string(IRLT_SERVECTL_PATH) + " --socket " +
                       D.Sock + " ping --retry 200");
  EXPECT_EQ(Ping.ExitCode, 0) << "daemon never came up: " << slurp(D.OutFile);
  return D;
}

/// Signals the daemon and waits for it to exit (its stdout records are
/// then complete in OutFile).
void stopDaemon(Daemon &D, int Sig = SIGTERM) {
  ASSERT_GT(D.Pid, 0);
  ASSERT_EQ(::kill(D.Pid, Sig), 0);
  for (int I = 0; I < 1500; ++I) { // up to 15s
    if (::kill(D.Pid, 0) != 0 && errno == ESRCH)
      return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "daemon did not exit after signal " << Sig << "\n"
         << slurp(D.OutFile);
}

/// Waits for a daemon that is expected to die on its own (dump-partial).
bool waitGone(const Daemon &D, int Millis) {
  for (int I = 0; I < Millis / 10; ++I) {
    if (::kill(D.Pid, 0) != 0 && errno == ESRCH)
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

std::string ctl(const Daemon &D, const std::string &Rest) {
  // Generous default timeout: auto-search requests can take several
  // seconds on a loaded ctest -j machine. Per-call "--timeout-ms N" in
  // Rest still wins (the later flag overrides).
  return std::string(IRLT_SERVECTL_PATH) + " --socket " + D.Sock +
         " --timeout-ms 60000 " + Rest;
}

/// The all-ok request corpus (so servectl send exits 0 and the output is
/// byte-comparable across runs).
std::string writeCorpus(const std::string &Tag) {
  std::string Path = tmpFile(Tag + ".ndjson");
  std::ofstream Out(Path);
  Out << R"({"id": "a", "nest": "arrays B, C\ndo i = 1, n\n  do j = 1, n\n    do k = 1, n\n      A(i, j) += B(i, k) * C(k, j)\n    enddo\n  enddo\nenddo\n", "script": "block 1 3 8 8 8", "emit": "loop"})"
      << "\n"
      << R"({"id": "b", "nest": "arrays B, C\ndo i = 1, n\n  do j = 1, n\n    do k = 1, n\n      A(i, j) += B(i, k) * C(k, j)\n    enddo\n  enddo\nenddo\n", "auto": "locality", "beam": 2, "depth": 1})"
      << "\n"
      << R"({"id": "c", "nest": "do i = 1, n\n  do j = 1, n\n    a(i, j) = a(i, j) + 1\n  enddo\nenddo\n", "script": "interchange 1 2", "emit": "loop"})"
      << "\n";
  return Path;
}

/// Finds the "drained" (or "serving") record in a daemon's stdout file.
ErrorOr<json::JsonValue> toolRecord(const std::string &OutFile,
                                    const std::string &Kind) {
  std::string Text = slurp(OutFile);
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string::npos)
      Nl = Text.size();
    std::string Line = Text.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    ErrorOr<json::JsonValue> V = json::JsonValue::parse(Line);
    if (static_cast<bool>(V) && V->stringOr("record") == Kind)
      return V;
  }
  return Failure(Diag::error("no '" + Kind + "' record in " + OutFile +
                             ":\n" + Text));
}

} // namespace

TEST(ServeTool, SigtermDrainPersistsAndRestartReplaysByteIdentical) {
  std::string Corpus = writeCorpus("lifecycle");
  std::string Journal = tmpFile("lifecycle.journal");
  std::remove(Journal.c_str());

  Daemon A = startDaemon("lc_a", "--jobs 2 --persist " + Journal);
  RunResult SendA = run(ctl(A, "send " + Corpus));
  EXPECT_EQ(SendA.ExitCode, 0) << SendA.Output;
  EXPECT_FALSE(SendA.Output.empty());
  stopDaemon(A, SIGTERM);

  auto DrainedA = toolRecord(A.OutFile, "drained");
  ASSERT_TRUE(static_cast<bool>(DrainedA)) << DrainedA.message();
  EXPECT_EQ(DrainedA->intOr("write_failures", -1), 0);
  EXPECT_GE(DrainedA->intOr("persisted_entries", 0), 2);
  EXPECT_TRUE(std::ifstream(Journal).good()) << "journal must exist";

  // Restart on the same journal: replay must rewarm, and the same corpus
  // must serve byte-identically against the restored cache.
  Daemon B = startDaemon("lc_b", "--jobs 2 --persist " + Journal);
  auto ServingB = toolRecord(B.OutFile, "serving");
  ASSERT_TRUE(static_cast<bool>(ServingB)) << ServingB.message();
  EXPECT_TRUE(ServingB->boolOr("journal_found", false));
  EXPECT_GE(ServingB->intOr("journal_replayed", 0), 2);
  EXPECT_EQ(ServingB->intOr("journal_discarded", -1), 0);

  RunResult SendB = run(ctl(B, "send " + Corpus));
  EXPECT_EQ(SendB.ExitCode, 0);
  EXPECT_EQ(SendB.Output, SendA.Output)
      << "restored-cache responses diverged from the first run";
  stopDaemon(B, SIGINT); // SIGINT drains identically
  auto DrainedB = toolRecord(B.OutFile, "drained");
  ASSERT_TRUE(static_cast<bool>(DrainedB)) << DrainedB.message();
  EXPECT_EQ(DrainedB->intOr("write_failures", -1), 0);
}

TEST(ServeTool, DumpPartialCrashLeavesPreviousJournalIntact) {
  std::string Corpus = writeCorpus("crash");
  std::string Journal = tmpFile("crash.journal");
  std::remove(Journal.c_str());

  // Run 1: produce a complete journal.
  Daemon A = startDaemon("crash_a", "--persist " + Journal);
  RunResult SendA = run(ctl(A, "send " + Corpus));
  EXPECT_EQ(SendA.ExitCode, 0);
  stopDaemon(A);
  std::string Golden = slurp(Journal);
  ASSERT_FALSE(Golden.empty());

  // Run 2: same journal, dump-partial armed. The persist op makes the
  // daemon _exit() halfway through the temp file - the deterministic
  // SIGKILL-mid-dump stand-in. The rename never happens.
  Daemon B = startDaemon("crash_b",
                         "--persist " + Journal + " --fault dump-partial");
  RunResult SendB = run(ctl(B, "send " + Corpus));
  EXPECT_EQ(SendB.ExitCode, 0);
  run(ctl(B, "--timeout-ms 10000 persist")); // daemon dies mid-dump
  ASSERT_TRUE(waitGone(B, 15000)) << "dump-partial daemon should have died";

  EXPECT_EQ(slurp(Journal), Golden)
      << "a torn dump must never replace the previous complete journal";

  // Run 3: recovery. The intact journal replays fully; responses match
  // run 1 byte for byte.
  Daemon C = startDaemon("crash_c", "--persist " + Journal);
  auto Serving = toolRecord(C.OutFile, "serving");
  ASSERT_TRUE(static_cast<bool>(Serving)) << Serving.message();
  EXPECT_TRUE(Serving->boolOr("journal_found", false));
  EXPECT_GE(Serving->intOr("journal_replayed", 0), 2);
  RunResult SendC = run(ctl(C, "send " + Corpus));
  EXPECT_EQ(SendC.Output, SendA.Output);
  stopDaemon(C);
}

TEST(ServeTool, CorruptJournalDiscardsEntriesButStillStarts) {
  std::string Corpus = writeCorpus("corrupt");
  std::string Journal = tmpFile("corrupt.journal");
  std::remove(Journal.c_str());

  Daemon A = startDaemon("corrupt_a", "--persist " + Journal);
  run(ctl(A, "send " + Corpus));
  stopDaemon(A);

  // cache-corrupt mangles every entry line at load: all discarded, the
  // daemon starts cold - availability is never hostage to the journal.
  Daemon B = startDaemon("corrupt_b", "--persist " + Journal +
                                          " --fault cache-corrupt");
  auto Serving = toolRecord(B.OutFile, "serving");
  ASSERT_TRUE(static_cast<bool>(Serving)) << Serving.message();
  EXPECT_TRUE(Serving->boolOr("journal_found", false));
  EXPECT_EQ(Serving->intOr("journal_replayed", -1), 0);
  EXPECT_GE(Serving->intOr("journal_discarded", 0), 2);
  RunResult Send = run(ctl(B, "send " + Corpus));
  EXPECT_EQ(Send.ExitCode, 0) << "cold start still serves";
  stopDaemon(B);
}

TEST(ServeTool, FaultMatrixGetsStructuredRejectsWithoutHangingTheDaemon) {
  Daemon D = startDaemon("faults", "--jobs 2");
  const char *Kinds[] = {"truncated-frame", "lying-length", "garbage-frame",
                         "oversized-frame", "slow-client"};
  for (const char *K : Kinds) {
    RunResult R = run(ctl(D, std::string("--timeout-ms 10000 fault ") + K));
    EXPECT_EQ(R.ExitCode, 0) << K << " misbehaved:\n" << R.Output;
    // The daemon survives every broken client.
    EXPECT_EQ(run(ctl(D, "ping")).ExitCode, 0) << "daemon down after " << K;
  }
  EXPECT_EQ(run(ctl(D, "fault no-such-kind")).ExitCode, 1);
  stopDaemon(D);
  auto Drained = toolRecord(D.OutFile, "drained");
  ASSERT_TRUE(static_cast<bool>(Drained)) << Drained.message();
  EXPECT_GE(Drained->intOr("bad_frames", 0), 3)
      << "the broken-frame kinds must be counted";
  EXPECT_EQ(Drained->intOr("write_failures", -1), 0);
}

TEST(ServeTool, WorkerThrowViaEnvironmentYieldsInternalRecord) {
  std::string Path = tmpFile("boom.ndjson");
  {
    std::ofstream Out(Path);
    Out << R"({"id": "boom-1", "nest": "do i = 1, n\n  a(i) = 0\nenddo\n", "script": "reverse 1"})"
        << "\n";
  }
  Daemon D = startDaemon("boom", "", "IRLT_FAULT=worker-throw");
  RunResult R = run(ctl(D, "send " + Path));
  EXPECT_EQ(R.ExitCode, 2) << "an internal error response is an error exit";
  EXPECT_NE(R.Output.find("\"kind\":\"internal\""), std::string::npos)
      << R.Output;
  // Only marker ids throw; the daemon still serves and drains cleanly.
  EXPECT_EQ(run(ctl(D, "ping")).ExitCode, 0);
  stopDaemon(D);
  auto Drained = toolRecord(D.OutFile, "drained");
  ASSERT_TRUE(static_cast<bool>(Drained)) << Drained.message();
  EXPECT_EQ(Drained->intOr("errors", 0), 1);
}

TEST(ServeTool, StatsOpReportsReconcilingCounters) {
  std::string Corpus = writeCorpus("stats");
  Daemon D = startDaemon("stats", "--cache-cap 1");
  run(ctl(D, "send " + Corpus));
  RunResult R = run(ctl(D, "stats"));
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  ErrorOr<json::JsonValue> V = json::JsonValue::parse(
      R.Output.substr(0, R.Output.find('\n')));
  ASSERT_TRUE(static_cast<bool>(V)) << R.Output;
  EXPECT_EQ(V->stringOr("record"), "statz");
  stopDaemon(D);
}

TEST(ServeTool, UsageErrorsExitOne) {
  EXPECT_EQ(run(std::string(IRLT_SERVE_PATH) + " --frobnicate").ExitCode, 1);
  EXPECT_EQ(run(std::string(IRLT_SERVE_PATH) + " --jobs 0").ExitCode, 1);
  EXPECT_EQ(run(std::string(IRLT_SERVECTL_PATH) + " ping").ExitCode, 1)
      << "a target (--socket/--port) is required";
}
