//===- tests/driver/ToolTest.cpp - irlt-opt end to end ---------------------===//
//
// Drives the installed irlt-opt binary as a subprocess: nest file in,
// transformed code / legality verdicts / C out. The binary path comes
// from the build system (IRLT_OPT_PATH).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

namespace {

#ifndef IRLT_OPT_PATH
#define IRLT_OPT_PATH "irlt-opt"
#endif

struct RunResult {
  int ExitCode;
  std::string Output;
};

RunResult runTool(const std::string &Args) {
  std::string Cmd = std::string(IRLT_OPT_PATH) + " " + Args + " 2>&1";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  std::string Out;
  std::array<char, 4096> Buf;
  size_t Got;
  while ((Got = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
    Out.append(Buf.data(), Got);
  int Status = pclose(Pipe);
  return RunResult{WEXITSTATUS(Status), Out};
}

std::string writeNest(const std::string &Tag, const std::string &Text) {
  std::string Path = ::testing::TempDir() + "/irlt_tool_" + Tag + ".loop";
  std::ofstream Out(Path);
  Out << Text;
  return Path;
}

TEST(Tool, PrintsTransformedNest) {
  std::string Path = writeNest("t1", "do i = 1, n\n  do j = 1, n\n"
                                     "    a(i, j) = i + j\n  enddo\nenddo\n");
  RunResult R = runTool(Path + " -s 'interchange 1 2'");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("do j = 1, n"), std::string::npos) << R.Output;
}

TEST(Tool, LegalityVerdictAndExitCode) {
  std::string Path = writeNest("t2", "do i = 2, n\n  do j = 1, n\n"
                                     "    a(i, j) = a(i - 1, j) + 1\n"
                                     "  enddo\nenddo\n");
  RunResult Legal = runTool(Path + " -s 'parallelize 2' --legality --deps");
  EXPECT_EQ(Legal.ExitCode, 0) << Legal.Output;
  EXPECT_NE(Legal.Output.find("legal: yes"), std::string::npos);
  EXPECT_NE(Legal.Output.find("reject-kind: none"), std::string::npos);
  EXPECT_NE(Legal.Output.find("dependences: {(1, 0)}"), std::string::npos);

  // Illegal sequences exit 2 (1 is reserved for tool/usage errors) and
  // carry the structured reject kind.
  RunResult Illegal = runTool(Path + " -s 'parallelize 1' --legality");
  EXPECT_EQ(Illegal.ExitCode, 2) << Illegal.Output;
  EXPECT_NE(Illegal.Output.find("legal: no"), std::string::npos);
  EXPECT_NE(Illegal.Output.find("reject-kind: lex-negative"),
            std::string::npos)
      << Illegal.Output;
  EXPECT_NE(Illegal.Output.find("lexicographically negative"),
            std::string::npos);
}

TEST(Tool, FastLegalityReportsRejectKind) {
  std::string Path = writeNest("t2b", "do i = 2, n\n  do j = 1, n\n"
                                      "    a(i, j) = a(i - 1, j) + 1\n"
                                      "  enddo\nenddo\n");
  RunResult R = runTool(Path + " -s 'parallelize 1' --fast-legality");
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
  EXPECT_NE(R.Output.find("reject-kind: lex-negative"), std::string::npos)
      << R.Output;
}

TEST(Tool, UsageErrorsExitOne) {
  RunResult R = runTool("/nonexistent/nest.loop");
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
  RunResult Bad = runTool("--definitely-not-a-flag");
  EXPECT_EQ(Bad.ExitCode, 1) << Bad.Output;
}

TEST(Tool, AutoSelectsLegalSequence) {
  std::string Path = writeNest("t_auto", "arrays B, C\n"
                                         "do i = 1, n\n  do j = 1, n\n"
                                         "    do k = 1, n\n"
                                         "      A(i, j) += B(i, k) * C(k, j)\n"
                                         "    enddo\n  enddo\nenddo\n");
  RunResult R = runTool(Path + " --auto par --legality");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("auto sequence:"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("Parallelize"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("legal: yes"), std::string::npos) << R.Output;

  RunResult Conflict = runTool(Path + " --auto par -s 'parallelize 1'");
  EXPECT_EQ(Conflict.ExitCode, 1) << Conflict.Output;
}

TEST(Tool, FastLegalityAgrees) {
  std::string Path = writeNest("t3", "do i = 2, n\n  do j = 1, n\n"
                                     "    a(i, j) = a(i - 1, j) + 1\n"
                                     "  enddo\nenddo\n");
  RunResult R = runTool(Path + " -s 'parallelize 2' --fast-legality");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("legal: yes"), std::string::npos);
}

TEST(Tool, EmitC) {
  std::string Path = writeNest("t4", "do i = 1, n\n  a(i) = i\nenddo\n");
  RunResult R = runTool(Path + " --emit c");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("void kernel(int64_t n)"), std::string::npos)
      << R.Output;
}

TEST(Tool, VerifyBindings) {
  std::string Path = writeNest("t5", "do i = 1, n\n  do j = 1, n\n"
                                     "    a(i, j) = a(i, j) + b\n"
                                     "  enddo\nenddo\n");
  RunResult R = runTool(Path + " -s 'block 1 2 4 4' --verify n=9,b=3");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("equivalent"), std::string::npos) << R.Output;
}

TEST(Tool, MatricesOutput) {
  std::string Path =
      writeNest("t6", "do i = max(n, 3), 100, 2\n  a(i) = i\nenddo\n");
  RunResult R = runTool(Path + " --matrices");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("LB ="), std::string::npos);
  EXPECT_NE(R.Output.find("<n, 3>"), std::string::npos) << R.Output;
}

TEST(Tool, BadScriptReportsLine) {
  std::string Path = writeNest("t7", "do i = 1, n\n  a(i) = i\nenddo\n");
  RunResult R = runTool(Path + " -s 'explode 1'");
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("unknown directive"), std::string::npos)
      << R.Output;
}

TEST(Tool, ReduceFusesUnimodularChain) {
  std::string Path = writeNest("t8", "do i = 1, n\n  do j = 1, n\n"
                                     "    a(i, j) = 1\n  enddo\nenddo\n");
  RunResult R = runTool(Path + " -s 'skew 1 2 1; unimodular 0 1 / 1 0' "
                               "--reduce --legality");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("sequence: <Unimodular(n=2, M=[[1, 1], [1, 0]])>"),
            std::string::npos)
      << R.Output;
}

} // namespace
