//===- tests/engine/EngineTest.cpp - Batch engine tests -------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "fuzz/Fuzzer.h"
#include "support/Json.h"

#include <gtest/gtest.h>

using namespace irlt;
using namespace irlt::engine;

namespace {

/// A JSON-encoded request line (the nest newlines need escaping).
std::string requestLine(const std::string &Fields) {
  std::string Out = "{";
  Out += Fields;
  Out += '}';
  return Out;
}

std::string jsonStr(const std::string &S) {
  std::string Out = "\"";
  Out += json::escape(S);
  Out += '"';
  return Out;
}

const char *MatmulEscaped =
    "arrays B, C\\ndo i = 1, n\\n  do j = 1, n\\n    do k = 1, n\\n"
    "      A(i, j) += B(i, k) * C(k, j)\\n    enddo\\n  enddo\\nenddo\\n";

std::vector<std::string> smokeCorpus() {
  std::vector<std::string> Lines;
  Lines.push_back(requestLine(
      std::string("\"id\": \"block\", \"nest\": \"") + MatmulEscaped +
      "\", \"script\": \"block 1 3 8 8 8\", \"emit\": \"loop\""));
  Lines.push_back(""); // blank lines are ignored
  Lines.push_back(requestLine(
      std::string("\"id\": \"auto\", \"nest\": \"") + MatmulEscaped +
      "\", \"auto\": \"locality\", \"beam\": 2, \"depth\": 1"));
  Lines.push_back(requestLine(
      std::string("\"id\": \"illegal\", \"nest\": ") +
      jsonStr("do i = 1, n\n  do j = 1, i\n    a(i, j) = a(i, j) + 1\n"
              "  enddo\nenddo\n") +
      ", \"script\": \"interchange 1 2\""));
  Lines.push_back(requestLine("\"id\": \"bad\", \"script\": \"x\""));
  Lines.push_back("this is not json");
  return Lines;
}

} // namespace

TEST(Wire, ParsesMinimalScriptRequest) {
  ErrorOr<BatchRequest> R = parseRequestLine(
      R"({"nest": "do i = 1, n\n  a(i) = 0\nenddo\n", "script": "reverse 1"})",
      7);
  ASSERT_TRUE(static_cast<bool>(R)) << R.message();
  EXPECT_EQ(R->Id, "7"); // defaults to the line number
  EXPECT_EQ(R->Script, "reverse 1");
  EXPECT_TRUE(R->Auto.empty());
  EXPECT_TRUE(R->Legality);
  EXPECT_FALSE(R->Reduce);
  EXPECT_EQ(R->ValidateBudget, 0u);
}

TEST(Wire, ParsesAutoRequestWithKnobs) {
  ErrorOr<BatchRequest> R = parseRequestLine(
      R"({"id": "a", "nest": "x", "auto": "par", "beam": 3, "depth": 0,)"
      R"( "topk": 2, "validate": 500, "reduce": true, "emit": "c"})",
      1);
  ASSERT_TRUE(static_cast<bool>(R)) << R.message();
  EXPECT_EQ(R->Id, "a");
  EXPECT_EQ(R->Auto, "par");
  EXPECT_EQ(R->Beam, 3u);
  EXPECT_EQ(R->Depth, 0u);
  EXPECT_EQ(R->TopK, 2u);
  EXPECT_EQ(R->ValidateBudget, 500u);
  EXPECT_TRUE(R->Reduce);
  EXPECT_EQ(R->Emit, "c");
}

TEST(Wire, RejectsMalformedRequests) {
  EXPECT_FALSE(static_cast<bool>(parseRequestLine("nonsense", 1)));
  EXPECT_FALSE(static_cast<bool>(parseRequestLine("[1]", 1)));
  EXPECT_FALSE(static_cast<bool>(parseRequestLine(R"({"script": "r 1"})", 1)))
      << "nest is required";
  EXPECT_FALSE(static_cast<bool>(parseRequestLine(
      R"({"nest": "x", "script": "r 1", "auto": "par"})", 1)))
      << "script and auto are exclusive";
  EXPECT_FALSE(static_cast<bool>(
      parseRequestLine(R"({"nest": "x", "auto": "speed"})", 1)));
  EXPECT_FALSE(static_cast<bool>(
      parseRequestLine(R"({"nest": "x", "emit": "asm"})", 1)));
  EXPECT_FALSE(static_cast<bool>(
      parseRequestLine(R"({"nest": "x", "validate": -1})", 1)));
  EXPECT_FALSE(static_cast<bool>(
      parseRequestLine(R"({"nest": "x", "beam": 0})", 1)));
}

TEST(Engine, ServesCorpusInOrderWithPerRequestErrors) {
  BatchEngine E;
  EngineMetrics M;
  std::string Out = E.runToString(smokeCorpus(), &M);
  std::vector<std::string> Records = splitLines(Out);
  ASSERT_EQ(Records.size(), 5u); // the blank line produced no record

  EXPECT_EQ(M.Requests, 5u);
  EXPECT_EQ(M.Errors, 2u);  // missing nest + non-json line
  EXPECT_EQ(M.Illegal, 1u); // triangular interchange

  // Every record parses under the shared schema, in input order. The two
  // malformed requests fall back to line-number ids (5 and 6): a request
  // whose parse failed cannot be trusted for its "id" field either.
  const char *Ids[] = {"block", "auto", "illegal", "5", "6"};
  for (size_t I = 0; I < Records.size(); ++I) {
    ErrorOr<json::JsonValue> V = json::JsonValue::parse(Records[I]);
    ASSERT_TRUE(static_cast<bool>(V)) << Records[I];
    EXPECT_EQ(V->intOr("schema_version", 0), json::SchemaVersion);
    EXPECT_EQ(V->stringOr("tool"), "irlt-batch");
    EXPECT_EQ(V->stringOr("id"), Ids[I]);
  }

  ErrorOr<json::JsonValue> Block = json::JsonValue::parse(Records[0]);
  ASSERT_TRUE(static_cast<bool>(Block));
  EXPECT_TRUE(Block->boolOr("ok", false));
  EXPECT_TRUE(Block->boolOr("legal", false));
  EXPECT_FALSE(Block->stringOr("output").empty());

  ErrorOr<json::JsonValue> Illegal = json::JsonValue::parse(Records[2]);
  ASSERT_TRUE(static_cast<bool>(Illegal));
  EXPECT_TRUE(Illegal->boolOr("ok", false));
  EXPECT_FALSE(Illegal->boolOr("legal", true));
  EXPECT_NE(Illegal->stringOr("reject_kind"), "none");

  ErrorOr<json::JsonValue> Bad = json::JsonValue::parse(Records[3]);
  ASSERT_TRUE(static_cast<bool>(Bad));
  EXPECT_FALSE(Bad->boolOr("ok", true));
  ASSERT_NE(Bad->find("error"), nullptr);
  EXPECT_FALSE(Bad->find("error")->stringOr("message").empty());
}

TEST(Engine, ResultStreamIsByteIdenticalAcrossJobCounts) {
  // The tentpole determinism contract: same corpus, --jobs 1 vs --jobs 8,
  // byte-identical result stream.
  std::vector<std::string> Corpus = smokeCorpus();
  // Pad with fuzz-generated requests so scheduling actually interleaves.
  fuzz::FuzzOptions FO;
  FO.Cases = 40;
  FO.Seed = 11;
  for (uint64_t I = 0; I < FO.Cases; ++I) {
    fuzz::FuzzCase C = fuzz::generateCase(FO, I);
    std::string Script;
    for (const std::string &L : C.Script) {
      Script += L;
      Script += '\n';
    }
    Corpus.push_back(requestLine("\"nest\": " + jsonStr(C.Nest.render()) +
                                 ", \"script\": " + jsonStr(Script)));
  }

  EngineOptions One;
  One.Jobs = 1;
  EngineOptions Eight;
  Eight.Jobs = 8;
  std::string OutOne = BatchEngine(One).runToString(Corpus);
  std::string OutEight = BatchEngine(Eight).runToString(Corpus);
  EXPECT_EQ(OutOne, OutEight);

  // And a shared engine re-serving the corpus (warm caches) agrees too.
  BatchEngine Shared(Eight);
  std::string Cold = Shared.runToString(Corpus);
  std::string Warm = Shared.runToString(Corpus);
  EXPECT_EQ(Cold, Warm);
  EXPECT_EQ(Cold, OutOne);
}

TEST(Engine, CachedAndUncachedVerdictsAgreeOnFuzzCorpus) {
  // Cache-correctness: verdicts with caching on and off agree across a
  // 500-case fuzz corpus (the ISSUE acceptance bar). Runs as one batch
  // through each engine configuration; records carry no timing, so the
  // streams must match byte for byte.
  fuzz::FuzzOptions FO;
  FO.Cases = 500;
  FO.Seed = 3;
  std::vector<std::string> Corpus;
  for (uint64_t I = 0; I < FO.Cases; ++I) {
    fuzz::FuzzCase C = fuzz::generateCase(FO, I);
    std::string Script;
    for (const std::string &L : C.Script) {
      Script += L;
      Script += '\n';
    }
    Corpus.push_back(requestLine("\"id\": \"c" + std::to_string(I) +
                                 "\", \"nest\": " + jsonStr(C.Nest.render()) +
                                 ", \"script\": " + jsonStr(Script)));
  }

  EngineOptions CacheOn;
  CacheOn.Jobs = 4;
  EngineOptions CacheOff;
  CacheOff.Jobs = 4;
  CacheOff.EnableCache = false;

  EngineMetrics MOn, MOff;
  std::string On = BatchEngine(CacheOn).runToString(Corpus, &MOn);
  std::string Off = BatchEngine(CacheOff).runToString(Corpus, &MOff);
  EXPECT_EQ(On, Off);

  // The corpus repeats generated shapes, so the cache must actually fire
  // (otherwise this test proves nothing).
  EXPECT_GT(MOn.Cache.DepHits, 0u);
  EXPECT_EQ(MOff.Cache.DepHits + MOff.Cache.DepMisses, 0u);
  EXPECT_EQ(MOn.Requests, 500u);
}

TEST(Engine, MetricsRecordIsSchemaValid) {
  BatchEngine E;
  EngineMetrics M;
  E.runToString(smokeCorpus(), &M);
  ErrorOr<json::JsonValue> V = json::JsonValue::parse(M.toJson());
  ASSERT_TRUE(static_cast<bool>(V)) << M.toJson();
  EXPECT_EQ(V->intOr("schema_version", 0), json::SchemaVersion);
  EXPECT_EQ(V->stringOr("record"), "metrics");
  EXPECT_EQ(V->intOr("requests", 0), 5);
  ASSERT_NE(V->find("dep_cache"), nullptr);
  ASSERT_NE(V->find("stages"), nullptr);
  EXPECT_EQ(V->find("stages")->elements().size(), NumStages);
  for (const json::JsonValue &S : V->find("stages")->elements())
    EXPECT_FALSE(S.stringOr("name").empty());
}

TEST(Engine, SplitLinesHandlesMissingTrailingNewline) {
  std::vector<std::string> L = splitLines("a\nb\nc");
  ASSERT_EQ(L.size(), 3u);
  EXPECT_EQ(L[2], "c");
  EXPECT_TRUE(splitLines("").empty());
  EXPECT_EQ(splitLines("x\n").size(), 1u);
}

TEST(Engine, OversizedLineDegradesWithoutEchoingContent) {
  EngineOptions O;
  O.MaxLineBytes = 256; // above the valid request below, under the big one
  BatchEngine E(O);
  // The oversized line carries a marker that must never appear in any
  // output record (a hostile line must not be reflected back).
  std::string Marker = "SECRET_PAYLOAD_DO_NOT_ECHO";
  std::vector<std::string> Lines;
  Lines.push_back(requestLine("\"id\": \"big\", \"nest\": \"" + Marker +
                              std::string(400, 'x') + "\""));
  Lines.push_back(requestLine(
      std::string("\"id\": \"after\", \"nest\": \"") + MatmulEscaped +
      "\", \"script\": \"interchange 1 2\""));
  EngineMetrics M;
  std::string Out = E.runToString(Lines, &M);
  EXPECT_EQ(Out.find(Marker), std::string::npos);

  std::vector<std::string> Recs;
  for (std::string &L : splitLines(Out))
    Recs.push_back(std::move(L));
  ASSERT_EQ(Recs.size(), 2u);
  ErrorOr<json::JsonValue> V = json::JsonValue::parse(Recs[0]);
  ASSERT_TRUE(static_cast<bool>(V)) << Recs[0];
  EXPECT_FALSE(V->boolOr("ok", true));
  ASSERT_NE(V->find("error"), nullptr);
  EXPECT_EQ(V->find("error")->stringOr("kind"), "oversized_line");
  ErrorOr<json::JsonValue> W = json::JsonValue::parse(Recs[1]);
  ASSERT_TRUE(static_cast<bool>(W)) << Recs[1];
  EXPECT_TRUE(W->boolOr("ok", false)) << "the rest of the batch continues";
  EXPECT_EQ(M.Errors, 1u);
}

TEST(Engine, EmbeddedNulDegradesToStructuredRecord) {
  BatchEngine E;
  std::string Line = requestLine("\"id\": \"nul\", \"script\": \"x\"");
  Line.insert(Line.size() / 2, 1, '\0');
  std::string Out = E.runToString({Line});
  ErrorOr<json::JsonValue> V = json::JsonValue::parse(splitLines(Out)[0]);
  ASSERT_TRUE(static_cast<bool>(V)) << Out;
  EXPECT_FALSE(V->boolOr("ok", true));
  ASSERT_NE(V->find("error"), nullptr);
  EXPECT_EQ(V->find("error")->stringOr("kind"), "embedded_nul");
}

TEST(Engine, CrlfCorpusServesIdenticallyToLf) {
  std::vector<std::string> Base = smokeCorpus();
  std::string Lf, CrLf;
  for (const std::string &L : Base) {
    Lf += L + "\n";
    CrLf += L + "\r\n";
  }
  BatchEngine E1, E2;
  EXPECT_EQ(E1.runToString(splitLines(Lf)),
            E2.runToString(splitLines(CrLf)));
}

TEST(Engine, TruncatedFinalLineDegradesToRequestError) {
  // An ndjson file cut off mid-record (torn write, partial download):
  // the prefix serves normally, the torn tail is one structured error.
  std::string Whole =
      requestLine(std::string("\"id\": \"whole\", \"nest\": \"") +
                  MatmulEscaped + "\", \"script\": \"interchange 1 2\"");
  std::string Torn = Whole.substr(0, Whole.size() / 2);
  BatchEngine E;
  std::string Out = E.runToString({Whole, Torn});
  std::vector<std::string> Recs = splitLines(Out);
  ASSERT_EQ(Recs.size(), 2u);
  EXPECT_TRUE(json::JsonValue::parse(Recs[0])->boolOr("ok", false));
  ErrorOr<json::JsonValue> V = json::JsonValue::parse(Recs[1]);
  ASSERT_TRUE(static_cast<bool>(V)) << Recs[1];
  EXPECT_FALSE(V->boolOr("ok", true));
  ASSERT_NE(V->find("error"), nullptr);
  EXPECT_EQ(V->find("error")->stringOr("kind"), "request");
}

TEST(Engine, CacheCapacityNeverChangesTheResultStream) {
  std::vector<std::string> Lines;
  for (int I = 0; I < 3; ++I) {
    std::vector<std::string> C = smokeCorpus();
    Lines.insert(Lines.end(), C.begin(), C.end());
  }
  EngineOptions Unbounded;
  EngineOptions Tiny;
  Tiny.CacheCapacity = 1;
  EngineOptions Off;
  Off.EnableCache = false;
  BatchEngine EU(Unbounded), ET(Tiny), EO(Off);
  EngineMetrics MU, MT;
  std::string Ref = EU.runToString(Lines, &MU);
  EXPECT_EQ(ET.runToString(Lines, &MT), Ref);
  EXPECT_EQ(EO.runToString(Lines), Ref);

  // The bounded run really churned, and its counters reconcile.
  EXPECT_GT(MT.Cache.DepEvictions, 0u);
  EXPECT_EQ(MT.Cache.DepHits + MT.Cache.DepMisses, MT.Cache.DepLookups);
  EXPECT_EQ(MT.Cache.DepInserts - MT.Cache.DepEvictions,
            MT.Cache.DepEntries);
  EXPECT_EQ(MT.Cache.LegalityHits + MT.Cache.LegalityMisses,
            MT.Cache.LegalityLookups);
  EXPECT_EQ(MT.Cache.LegalityInserts - MT.Cache.LegalityEvictions,
            MT.Cache.LegalityEntries);
  EXPECT_LE(MT.Cache.DepEntries, 1u);
  // The unbounded run must have had real hits for this comparison to
  // mean anything.
  EXPECT_GT(MU.Cache.DepHits, 0u);
}

TEST(Engine, StopFlagYieldsCleanPrefixAndInterruptedMetrics) {
  std::atomic<bool> Stop{true}; // set before the run: everything skipped
  EngineOptions O;
  O.StopFlag = &Stop;
  BatchEngine E(O);
  std::vector<std::string> Sunk;
  EngineMetrics M = E.run(smokeCorpus(), [&](const std::string &R) {
    Sunk.push_back(R);
  });
  EXPECT_TRUE(M.Interrupted);
  EXPECT_EQ(M.Served, Sunk.size());
  EXPECT_EQ(M.Served, 0u);
  EXPECT_EQ(M.Requests, 5u) << "the corpus size is still reported";
}

TEST(Engine, WorkerThrowFaultDegradesToInternalRecord) {
  EngineOptions O;
  O.Faults.WorkerThrow = true;
  BatchEngine E(O);
  std::vector<std::string> Lines;
  Lines.push_back(requestLine(
      std::string("\"id\": \"boom-1\", \"nest\": \"") + MatmulEscaped +
      "\", \"script\": \"interchange 1 2\""));
  Lines.push_back(requestLine(
      std::string("\"id\": \"calm\", \"nest\": \"") + MatmulEscaped +
      "\", \"script\": \"interchange 1 2\""));
  std::string Out = E.runToString(Lines);
  std::vector<std::string> Recs = splitLines(Out);
  ASSERT_EQ(Recs.size(), 2u);
  ErrorOr<json::JsonValue> V = json::JsonValue::parse(Recs[0]);
  ASSERT_TRUE(static_cast<bool>(V)) << Recs[0];
  ASSERT_NE(V->find("error"), nullptr);
  EXPECT_EQ(V->find("error")->stringOr("kind"), "internal");
  EXPECT_TRUE(json::JsonValue::parse(Recs[1])->boolOr("ok", false))
      << "the fault targets marker ids only";
}
