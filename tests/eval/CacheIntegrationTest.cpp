//===- tests/eval/CacheIntegrationTest.cpp ---------------------------------===//
//
// Locality regressions pinning the benchmark claims as tests: blocking
// matmul must beat the naive order in simulated miss ratio, and the
// framework's trapezoid blocking must not pay for its adaptive bounds
// with extra misses relative to the bounding-box baseline.
//
//===----------------------------------------------------------------------===//

#include "baseline/RectangularTile.h"
#include "cachesim/Cache.h"
#include "ir/Parser.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

double missRatio(const LoopNest &Nest, std::map<std::string, int64_t> Params,
                 const std::vector<std::string> &Arrays, int64_t Extent,
                 const CacheConfig &CC) {
  EvalConfig C;
  C.Params = std::move(Params);
  C.RecordAccesses = true;
  ArrayStore S;
  EvalResult R = evaluate(Nest, C, S);
  ArrayLayout L;
  for (const std::string &A : Arrays)
    L.declare(A, {1, 1}, {Extent, Extent});
  return replayTrace(R.Accesses, L, CC);
}

TEST(CacheIntegration, BlockedMatmulBeatsNaive) {
  ErrorOr<LoopNest> N = parseLoopNest("arrays B, C\n"
                                      "do i = 1, n\n  do j = 1, n\n"
                                      "    do k = 1, n\n"
                                      "      A(i, j) += B(i, k)*C(k, j)\n"
                                      "    enddo\n  enddo\nenddo\n");
  ASSERT_TRUE(static_cast<bool>(N));
  ExprRef B8 = Expr::intConst(8);
  ErrorOr<LoopNest> Blocked = applySequence(
      TransformSequence::of({makeBlock(3, 1, 3, {B8, B8, B8})}), *N);
  ASSERT_TRUE(static_cast<bool>(Blocked));

  CacheConfig CC{8 * 1024, 64, 4};
  double Naive =
      missRatio(*N, {{"n", 32}}, {"A", "B", "C"}, 32, CC);
  double Tiled =
      missRatio(*Blocked, {{"n", 32}}, {"A", "B", "C"}, 32, CC);
  EXPECT_LT(Tiled, Naive * 0.5)
      << "blocked=" << Tiled << " naive=" << Naive;
}

TEST(CacheIntegration, InterchangeFixesStridedTraversal) {
  // Column-major storage: varying the *second* subscript innermost
  // strides by a full column; interchanging makes the traversal
  // unit-stride (the first subscript varies fastest).
  ErrorOr<LoopNest> N = parseLoopNest("arrays src\n"
                                      "do i = 1, n\n  do j = 1, n\n"
                                      "    d(i, j) = src(i, j) + 1\n"
                                      "  enddo\nenddo\n");
  ASSERT_TRUE(static_cast<bool>(N));
  ErrorOr<LoopNest> Swapped = applySequence(
      TransformSequence::of({makeInterchange(2, 0, 1)}), *N);
  ASSERT_TRUE(static_cast<bool>(Swapped));

  CacheConfig CC{2 * 1024, 64, 2};
  double Strided = missRatio(*N, {{"n", 48}}, {"d", "src"}, 48, CC);
  double Unit = missRatio(*Swapped, {{"n", 48}}, {"d", "src"}, 48, CC);
  EXPECT_LT(Unit, Strided * 0.5) << "unit=" << Unit << " strided=" << Strided;
}

TEST(CacheIntegration, AdaptiveTrapezoidTilesCostNoExtraMisses) {
  ErrorOr<LoopNest> Tri = parseLoopNest("do i = 1, n\n  do j = 1, i\n"
                                        "    a(i, j) = a(i, j) + 1\n"
                                        "  enddo\nenddo\n");
  ASSERT_TRUE(static_cast<bool>(Tri));
  ExprRef B8 = Expr::intConst(8);
  ErrorOr<LoopNest> Ours = applySequence(
      TransformSequence::of({makeBlock(2, 1, 2, {B8, B8})}), *Tri);
  ErrorOr<LoopNest> Box = applySequence(
      TransformSequence::of({makeRectangularTile(
          2, 1, 2, {B8, B8}, {Expr::intConst(1), Expr::intConst(1)},
          {Expr::var("n"), Expr::var("n")})}),
      *Tri);
  ASSERT_TRUE(static_cast<bool>(Ours) && static_cast<bool>(Box));

  CacheConfig CC{4 * 1024, 64, 4};
  double MOurs = missRatio(*Ours, {{"n", 48}}, {"a"}, 48, CC);
  double MBox = missRatio(*Box, {{"n", 48}}, {"a"}, 48, CC);
  // Same accesses in the same order - identical traces, identical misses.
  EXPECT_DOUBLE_EQ(MOurs, MBox);
}

} // namespace
