//===- tests/eval/EvaluatorTest.cpp ----------------------------------------===//

#include "eval/Evaluator.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

TEST(Evaluator, EnumeratesInstancesInOrder) {
  LoopNest N = parse("do i = 1, 2\n  do j = 1, 2\n    a(i, j) = i\n"
                     "  enddo\nenddo\n");
  EvalConfig C;
  ArrayStore S;
  EvalResult R = evaluate(N, C, S);
  ASSERT_EQ(R.Instances.size(), 4u);
  EXPECT_EQ(R.Instances[0], (std::vector<int64_t>{1, 1}));
  EXPECT_EQ(R.Instances[1], (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(R.Instances[2], (std::vector<int64_t>{2, 1}));
  EXPECT_EQ(R.Instances[3], (std::vector<int64_t>{2, 2}));
  EXPECT_EQ(R.LevelCounts, (std::vector<uint64_t>{2, 4}));
  EXPECT_EQ(R.OrdinalTuples[3], (std::vector<int64_t>{1, 1}));
}

TEST(Evaluator, NegativeStepsAndEmptyLoops) {
  LoopNest N = parse("do i = 5, 1, -2\n  a(i) = i\nenddo\n");
  EvalConfig C;
  ArrayStore S;
  EvalResult R = evaluate(N, C, S);
  ASSERT_EQ(R.Instances.size(), 3u);
  EXPECT_EQ(R.Instances[0][0], 5);
  EXPECT_EQ(R.Instances[2][0], 1);

  LoopNest Empty = parse("do i = 5, 1\n  a(i) = i\nenddo\n");
  EvalResult RE = evaluate(Empty, C, S);
  EXPECT_TRUE(RE.Instances.empty());
}

TEST(Evaluator, ArraySemantics) {
  LoopNest N = parse("do i = 2, 5\n  a(i) = a(i - 1) + 1\nenddo\n");
  EvalConfig C;
  ArrayStore S;
  S.write("a", {1}, 10);
  evaluate(N, C, S);
  EXPECT_EQ(S.read("a", {5}), 14);
  EXPECT_EQ(S.read("a", {3}), 12);
  EXPECT_EQ(S.read("a", {99}), 0); // unwritten cells read 0
}

TEST(Evaluator, InitStatementsDefineBodyVars) {
  LoopNest N = parse("do i = 1, 3\n  a(i) = i\nenddo\n");
  // Simulate a transformed nest: loop over y, recover i = 4 - y.
  LoopNest T = N;
  T.Loops[0].IndexVar = "y";
  T.Inits.push_back(InitStmt{
      "i", Expr::sub(Expr::intConst(4), Expr::var("y"))});
  EvalConfig C;
  ArrayStore S1, S2;
  EvalResult R1 = evaluate(N, C, S1);
  EvalResult R2 = evaluate(T, C, S2);
  // Same instances, reversed order; same final store.
  EXPECT_EQ(R2.Instances[0], R1.Instances[2]);
  EXPECT_TRUE(S1 == S2);
}

TEST(Evaluator, ParamsAndOpaqueFunctions) {
  LoopNest N = parse("do i = 1, n\n  a(i) = f(i) + m\nenddo\n");
  EvalConfig C;
  C.Params = {{"n", 3}, {"m", 100}};
  C.Funcs["f"] = [](const std::vector<int64_t> &A) { return A[0] * A[0]; };
  ArrayStore S;
  evaluate(N, C, S);
  EXPECT_EQ(S.read("a", {3}), 109);
}

TEST(Evaluator, BuiltinFunctions) {
  LoopNest N = parse("do i = 1, 1\n  a(i) = sqrt(16) + abs(0 - 3) + sgn(0 - 9)\n"
                     "enddo\n");
  EvalConfig C;
  ArrayStore S;
  evaluate(N, C, S);
  EXPECT_EQ(S.read("a", {1}), 4 + 3 - 1);
}

TEST(Evaluator, AccessTraceWithOwners) {
  LoopNest N =
      parse("arrays b\ndo i = 1, 2\n  a(i) = b(i) + b(i + 1)\nenddo\n");
  EvalConfig C;
  C.RecordAccesses = true;
  ArrayStore S;
  EvalResult R = evaluate(N, C, S);
  // Per iteration: two reads then one write.
  ASSERT_EQ(R.Accesses.size(), 6u);
  EXPECT_FALSE(R.Accesses[0].IsWrite);
  EXPECT_TRUE(R.Accesses[2].IsWrite);
  EXPECT_EQ(R.Accesses[2].Array, "a");
  EXPECT_EQ(R.AccessOwner,
            (std::vector<uint64_t>{0, 0, 0, 1, 1, 1}));
}

TEST(Evaluator, MultiStatementBodiesExecuteInOrder) {
  LoopNest N = parse("do i = 1, 3\n"
                     "  a(i) = b(i) + 1\n"
                     "  b(i + 1) = a(i)\n"
                     "enddo\n");
  EvalConfig C;
  ArrayStore S;
  evaluate(N, C, S);
  // b(2) = a(1) = 1; a(2) = b(2)+1 = 2; b(4) = a(3) = 3.
  EXPECT_EQ(S.read("b", {4}), 3);
}

TEST(Evaluator, ParallelismStats) {
  LoopNest N = parse("do i = 1, 4\n  pardo j = 1, 8\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  EvalConfig C;
  ArrayStore S;
  EvalResult R = evaluate(N, C, S);
  ParallelismStats P = parallelismStats(N, R);
  EXPECT_EQ(P.Instances, 32u);
  EXPECT_EQ(P.SequentialSteps, 4u);
  EXPECT_DOUBLE_EQ(P.AvgParallelism, 8.0);
  EXPECT_EQ(P.MaxParallelism, 8u);
}

TEST(Evaluator, MinMaxDivModBoundsEvaluate) {
  LoopNest N = parse("do i = max(2, m), min(n, 9)\n"
                     "  do j = i / 2, mod(i, 3) + 5\n"
                     "    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  EvalConfig C;
  C.Params = {{"m", 4}, {"n", 20}};
  ArrayStore S;
  EvalResult R = evaluate(N, C, S);
  EXPECT_FALSE(R.Instances.empty());
  for (const std::vector<int64_t> &I : R.Instances) {
    EXPECT_GE(I[0], 4);
    EXPECT_LE(I[0], 9);
    EXPECT_GE(I[1], I[0] / 2);
  }
}

} // namespace
