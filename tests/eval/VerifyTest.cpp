//===- tests/eval/VerifyTest.cpp -------------------------------------------===//

#include "eval/Verify.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

TEST(Verify, IdenticalNestVerifies) {
  LoopNest N = parse("do i = 2, 8\n  a(i) = a(i - 1) + 1\nenddo\n");
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, N, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Verify, DetectsMissingInstances) {
  LoopNest N = parse("do i = 1, 8\n  a(i) = i\nenddo\n");
  LoopNest Short = parse("do i = 1, 7\n  a(i) = i\nenddo\n");
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, Short, C);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Problem.find("count mismatch"), std::string::npos);
}

TEST(Verify, DetectsWrongInstanceSet) {
  LoopNest N = parse("do i = 1, 8\n  a(i) = i\nenddo\n");
  LoopNest Shifted = parse("do i = 2, 9\n  a(i) = i\nenddo\n");
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, Shifted, C);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Problem.find("different set"), std::string::npos);
}

TEST(Verify, DetectsIllegallyReversedDependence) {
  LoopNest N = parse("do i = 2, 8\n  a(i) = a(i - 1) + 1\nenddo\n");
  // A (wrong) reversal without legality: same instances, broken order.
  LoopNest Rev = N;
  Rev.Loops[0].Lower = Expr::intConst(8);
  Rev.Loops[0].Upper = Expr::intConst(2);
  Rev.Loops[0].Step = Expr::intConst(-1);
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, Rev, C);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Problem.find("reordered"), std::string::npos) << V.Problem;
}

TEST(Verify, LegalReversalOfIndependentLoopPasses) {
  LoopNest N = parse("do i = 1, 8\n  a(i) = 2*i\nenddo\n");
  LoopNest Rev = N;
  Rev.Loops[0].Lower = Expr::intConst(8);
  Rev.Loops[0].Upper = Expr::intConst(1);
  Rev.Loops[0].Step = Expr::intConst(-1);
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, Rev, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Verify, DetectsParallelOrderViolation) {
  LoopNest N = parse("do i = 2, 6\n  a(i) = a(i - 1) + 1\nenddo\n");
  LoopNest Par = N;
  Par.Loops[0].Kind = LoopKind::ParDo;
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, Par, C);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Problem.find("pardo"), std::string::npos);
}

TEST(Verify, DependentInstancePairsFindsFlowAntiOutput) {
  LoopNest N = parse("do i = 1, 4\n"
                     "  a(i) = a(i) + 1\n"
                     "  b(1) = a(i)\n"
                     "enddo\n");
  EvalConfig C;
  C.RecordAccesses = true;
  ArrayStore S;
  EvalResult R = evaluate(N, C, S);
  std::vector<std::pair<uint64_t, uint64_t>> P = dependentInstancePairs(R);
  // b(1) alone makes every iteration pair dependent: C(4,2) = 6 pairs.
  EXPECT_GE(P.size(), 6u);
  for (const auto &[A, B] : P)
    EXPECT_LT(A, B);
}

TEST(Verify, IntraInstancePairsAreIgnored) {
  LoopNest N = parse("do i = 1, 4\n  a(i) = a(i) + 1\nenddo\n");
  EvalConfig C;
  C.RecordAccesses = true;
  ArrayStore S;
  EvalResult R = evaluate(N, C, S);
  EXPECT_TRUE(dependentInstancePairs(R).empty());
}

} // namespace
