//===- tests/front/FrontTest.cpp - In-process sharded front tests ---------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives a Front instance in-process over real sockets, with real
/// irlt-serve worker subprocesses (IRLT_SERVE_PATH from the build): the
/// byte-identity anchor against a direct single-process server, inline-op
/// fan-out, window shedding, worker-crash and worker-hang recovery, drain
/// aggregation, and structured bad-frame rejects. Every recv carries a
/// timeout so a supervision regression fails instead of hanging the
/// suite.
///
//===----------------------------------------------------------------------===//

#include "front/Front.h"

#include "serve/Client.h"
#include "serve/Server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

using namespace irlt;
using namespace irlt::front;
using namespace irlt::serve;

namespace {

#ifndef IRLT_SERVE_PATH
#define IRLT_SERVE_PATH "irlt-serve"
#endif

constexpr uint64_t RecvMs = 60000;

const char *MatmulEscaped =
    "arrays B, C\\ndo i = 1, n\\n  do j = 1, n\\n    do k = 1, n\\n"
    "      A(i, j) += B(i, k) * C(k, j)\\n    enddo\\n  enddo\\nenddo\\n";

const char *TriangularEscaped =
    "do i = 1, n\\n  do j = 1, i\\n    a(i, j) = a(i, j) + 1\\n"
    "  enddo\\nenddo\\n";

std::string sockPath(const std::string &Name) {
  return std::string(::testing::TempDir()) + "irlt_front_" + Name + ".sock";
}

FrontOptions frontOpts(const std::string &Tag, unsigned Shards) {
  FrontOptions O;
  O.SocketPath = sockPath(Tag);
  O.Shards = Shards;
  O.ServeBinary = IRLT_SERVE_PATH;
  return O;
}

/// The mixed corpus the byte-identity anchor replays: ok requests, an
/// illegal transform, a missing nest, a default (positional) id, an
/// unparseable line, and an unknown op. The last three are the envelope
/// stress: their responses embed the request line number, so they only
/// match a direct run if the front's line_no forwarding is exact.
std::vector<std::string> corpus() {
  return {
      std::string(R"({"id":"r-block","nest":")") + MatmulEscaped +
          R"(","script":"block 1 3 8 8 8","emit":"loop"})",
      std::string(R"({"id":"r-auto","nest":")") + MatmulEscaped +
          R"(","auto":"locality","beam":2,"depth":1})",
      std::string(R"({"id":"r-illegal","nest":")") + TriangularEscaped +
          R"(","script":"interchange 1 2"})",
      R"({"id":"r-bad","script":"x"})",
      std::string(R"({"nest":")") + TriangularEscaped +
          R"(","script":"reverse 1"})", // no id: positional default
      "this is not json",               // parse error names the line
      R"({"op":"no-such-op","id":"u1"})",
  };
}

/// Pipelines all of \p Requests, then collects one response each.
std::vector<std::string> roundTrip(ClientConn &C,
                                   const std::vector<std::string> &Requests) {
  for (const std::string &R : Requests)
    EXPECT_TRUE(C.sendFrame(R));
  std::vector<std::string> Out;
  for (size_t I = 0; I < Requests.size(); ++I) {
    auto P = C.recvFrame(RecvMs);
    EXPECT_TRUE(static_cast<bool>(P)) << P.message();
    Out.push_back(P ? *P : std::string());
  }
  return Out;
}

/// Serves \p Requests through a fresh direct (single-process, in-process)
/// server and returns the responses - the byte-identity baseline.
std::vector<std::string> directServe(const std::string &Tag,
                                     const std::vector<std::string> &Reqs) {
  ServeOptions O;
  O.SocketPath = sockPath(Tag);
  Server S(O);
  auto St = S.start();
  EXPECT_TRUE(static_cast<bool>(St)) << St.message();
  std::vector<std::string> Out;
  {
    auto C = connectUnix(O.SocketPath);
    EXPECT_TRUE(static_cast<bool>(C)) << C.message();
    Out = roundTrip(*C, Reqs);
  }
  S.requestDrain();
  EXPECT_TRUE(S.run());
  return Out;
}

/// Polls the front's aggregated healthz until ok:true (all shards up) or
/// \p Millis elapse.
bool waitHealthy(const std::string &Sock, int Millis) {
  for (int I = 0; I < Millis / 50; ++I) {
    auto C = connectUnix(Sock);
    if (C && C->sendFrame(R"({"op":"healthz","id":"w"})")) {
      auto P = C->recvFrame(5000);
      if (P && P->find("\"ok\":true") != std::string::npos)
        return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

} // namespace

TEST(Front, ResponsesByteIdenticalToDirectServe) {
  std::vector<std::string> Reqs = corpus();
  // Per-connection line numbers keep counting across passes (a direct
  // server behaves the same way), so the baseline replays the corpus
  // twice on ONE connection and the comparison is pass-by-pass.
  std::vector<std::string> TwoPasses = Reqs;
  TwoPasses.insert(TwoPasses.end(), Reqs.begin(), Reqs.end());
  std::vector<std::string> Baseline = directServe("ident_direct", TwoPasses);
  ASSERT_EQ(Baseline.size(), TwoPasses.size());

  FrontOptions O = frontOpts("ident", 3);
  Front F(O);
  auto St = F.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  {
    auto C = connectUnix(O.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    std::vector<std::string> Got = roundTrip(*C, Reqs);
    // A second pass hits the workers' warm caches: still identical.
    std::vector<std::string> Warm = roundTrip(*C, Reqs);
    Got.insert(Got.end(), Warm.begin(), Warm.end());
    ASSERT_EQ(Got.size(), Baseline.size());
    for (size_t I = 0; I < Baseline.size(); ++I)
      EXPECT_EQ(Got[I], Baseline[I]) << "response " << I << " diverged";
  }
  F.requestDrain();
  EXPECT_TRUE(F.run());
  const FrontStats &T = F.stats();
  EXPECT_EQ(T.FramesIn.load(),
            T.InlineOps.load() + T.Routed.load() + T.DrainRejects.load());
  EXPECT_EQ(T.Routed.load(), T.Served.load() + T.WindowShed.load() +
                                 T.ShardDownRejects.load());
}

TEST(Front, InlineOpsAggregateAcrossShards) {
  FrontOptions O = frontOpts("inline", 3);
  Front F(O);
  auto St = F.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  EXPECT_EQ(F.shardCount(), 3u);
  EXPECT_EQ(F.shardPids().size(), 3u);
  for (pid_t P : F.shardPids())
    EXPECT_GT(P, 0);
  {
    auto C = connectUnix(O.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();

    ASSERT_TRUE(C->sendFrame(R"({"op":"healthz","id":"h1"})"));
    auto H = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(H)) << H.message();
    EXPECT_NE(H->find("\"tool\":\"irlt-front\""), std::string::npos) << *H;
    EXPECT_NE(H->find("\"id\":\"h1\""), std::string::npos);
    EXPECT_NE(H->find("\"ok\":true"), std::string::npos);
    EXPECT_NE(H->find("\"shards\":3"), std::string::npos);
    EXPECT_NE(H->find("\"shards_up\":3"), std::string::npos);

    ASSERT_TRUE(C->sendFrame(R"({"op":"statz","id":"s1"})"));
    auto Z = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(Z)) << Z.message();
    EXPECT_NE(Z->find("\"record\":\"statz\""), std::string::npos);
    EXPECT_NE(Z->find("\"shard_status\""), std::string::npos);
    EXPECT_NE(Z->find("\"routed\""), std::string::npos);

    // persist without a --persist base is a structured error, not a
    // crash - mirroring the single-process server's behavior.
    ASSERT_TRUE(C->sendFrame(R"({"op":"persist","id":"p1"})"));
    auto P = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(P)) << P.message();
    EXPECT_NE(P->find("\"ok\":false"), std::string::npos) << *P;
  }
  F.requestDrain();
  EXPECT_TRUE(F.run());
  EXPECT_EQ(F.stats().InlineOps.load(), 3u);
}

TEST(Front, WindowBoundShedsWithStructuredOverloaded) {
  FrontOptions O = frontOpts("shed", 1);
  O.WindowCapacity = 1;
  O.WorkerJobs = 1;
  Front F(O);
  auto St = F.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  size_t Sent = 24;
  {
    auto C = connectUnix(O.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    std::string Req = std::string(R"({"id":"burst","nest":")") +
                      MatmulEscaped + R"(","auto":"locality","beam":2})";
    for (size_t I = 0; I < Sent; ++I)
      ASSERT_TRUE(C->sendFrame(Req));
    size_t Overloaded = 0, Results = 0;
    for (size_t I = 0; I < Sent; ++I) {
      auto P = C->recvFrame(RecvMs);
      ASSERT_TRUE(static_cast<bool>(P)) << P.message();
      if (P->find("\"kind\":\"overloaded\"") != std::string::npos)
        ++Overloaded;
      else
        ++Results;
    }
    EXPECT_EQ(Overloaded + Results, Sent) << "every frame gets a response";
    EXPECT_GT(Overloaded, 0u) << "window bound 1 under a 24-burst must shed";
    EXPECT_GT(Results, 0u) << "shedding must not starve admitted work";
  }
  F.requestDrain();
  EXPECT_TRUE(F.run());
  EXPECT_EQ(F.stats().WindowShed.load() + F.stats().Served.load(),
            F.stats().Routed.load());
  EXPECT_GT(F.stats().WindowShed.load(), 0u);
}

TEST(Front, WorkerCrashAnswersInFlightStructuredAndRestarts) {
  FrontOptions O = frontOpts("crash", 1);
  O.WorkerJobs = 1;
  O.Faults.WorkerKill = true;
  O.RestartBackoffMillis = 50;
  O.ProbeIntervalMillis = 100;
  Front F(O);
  auto St = F.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  {
    auto C = connectUnix(O.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    // The marker request crashes the worker right after its response is
    // delivered; the stranded pipelined requests behind it must each get
    // a structured retryable shard_down record - never a hang.
    std::vector<std::string> Reqs;
    Reqs.push_back(std::string(R"({"id":"kill-1","nest":")") + MatmulEscaped +
                   R"(","script":"block 1 3 8 8 8"})");
    for (int I = 0; I < 4; ++I)
      Reqs.push_back(std::string(R"({"id":"stranded-)") + std::to_string(I) +
                     R"(","nest":")" + MatmulEscaped +
                     R"(","script":"interchange 1 2"})");
    std::vector<std::string> Got = roundTrip(*C, Reqs);
    ASSERT_EQ(Got.size(), Reqs.size());
    EXPECT_NE(Got[0].find("\"ok\":true"), std::string::npos)
        << "the crash fires after the marker response: " << Got[0];
    size_t ShardDown = 0;
    for (size_t I = 1; I < Got.size(); ++I) {
      EXPECT_TRUE(Got[I].find("\"ok\":true") != std::string::npos ||
                  Got[I].find("\"kind\":\"shard_down\"") != std::string::npos)
          << Got[I];
      if (Got[I].find("\"kind\":\"shard_down\"") != std::string::npos)
        ++ShardDown;
    }
    EXPECT_GT(ShardDown, 0u) << "a crash mid-pipeline must strand requests";
  }
  // The supervisor restarts the worker; the front then serves again.
  ASSERT_TRUE(waitHealthy(O.SocketPath, 15000)) << "worker never restarted";
  {
    auto C = connectUnix(O.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    std::string Req = std::string(R"({"id":"after","nest":")") +
                      MatmulEscaped + R"(","script":"block 1 3 8 8 8"})";
    ASSERT_TRUE(C->sendFrame(Req));
    auto P = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(P)) << P.message();
    EXPECT_NE(P->find("\"ok\":true"), std::string::npos) << *P;
  }
  F.requestDrain();
  EXPECT_TRUE(F.run());
  EXPECT_GE(F.stats().Restarts.load(), 1u);
  EXPECT_GE(F.stats().ShardDownRejects.load(), 1u);
}

TEST(Front, WedgedWorkerIsKilledByPendingAgeWatchdog) {
  FrontOptions O = frontOpts("hang", 1);
  O.WorkerJobs = 1;
  O.Faults.WorkerHang = true;
  O.PendingTimeoutMillis = 400; // the hang is 1h; only the watchdog saves us
  O.ProbeIntervalMillis = 100;
  O.RestartBackoffMillis = 50;
  Front F(O);
  auto St = F.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  {
    auto C = connectUnix(O.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    // The wedged worker still answers healthz probes (its reader thread
    // is fine), so liveness probing alone would never catch this.
    std::vector<std::string> Reqs = {
        std::string(R"({"id":"hang-1","nest":")") + MatmulEscaped +
            R"(","script":"block 1 3 8 8 8"})",
        std::string(R"({"id":"behind","nest":")") + MatmulEscaped +
            R"(","script":"interchange 1 2"})",
    };
    std::vector<std::string> Got = roundTrip(*C, Reqs);
    ASSERT_EQ(Got.size(), 2u);
    for (const std::string &G : Got)
      EXPECT_NE(G.find("\"kind\":\"shard_down\""), std::string::npos) << G;
  }
  ASSERT_TRUE(waitHealthy(O.SocketPath, 15000)) << "worker never restarted";
  {
    auto C = connectUnix(O.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    std::string Req = std::string(R"({"id":"after","nest":")") +
                      MatmulEscaped + R"(","script":"block 1 3 8 8 8"})";
    ASSERT_TRUE(C->sendFrame(Req));
    auto P = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(P)) << P.message();
    EXPECT_NE(P->find("\"ok\":true"), std::string::npos) << *P;
  }
  F.requestDrain();
  EXPECT_TRUE(F.run());
  EXPECT_GE(F.stats().HangKills.load(), 1u);
  EXPECT_GE(F.stats().Restarts.load(), 1u);
}

TEST(Front, GarbageBytesGetBadFrameRecordThenClose) {
  FrontOptions O = frontOpts("garbage", 2);
  Front F(O);
  auto St = F.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  {
    auto C = connectUnix(O.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    ASSERT_TRUE(C->sendRaw("GET / HTTP/1.1\r\n\r\n"));
    auto P = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(P)) << P.message();
    EXPECT_NE(P->find("\"kind\":\"bad_frame\""), std::string::npos) << *P;
    EXPECT_NE(P->find("\"tool\":\"irlt-front\""), std::string::npos) << *P;
    auto After = C->recvFrame(RecvMs);
    EXPECT_FALSE(static_cast<bool>(After)) << "connection must be closed";
  }
  F.requestDrain();
  EXPECT_TRUE(F.run());
  EXPECT_EQ(F.stats().BadFrames.load(), 1u);
}

TEST(Front, DrainAggregatesWorkerRecords) {
  FrontOptions O = frontOpts("drain", 2);
  Front F(O);
  auto St = F.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  std::vector<std::string> Reqs = corpus();
  // Drop the unknown-op line: the worker answers it from its dispatch
  // path, outside its served counter, which would blur the accounting
  // this test pins down exactly.
  Reqs.pop_back();
  {
    auto C = connectUnix(O.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    ASSERT_EQ(roundTrip(*C, Reqs).size(), Reqs.size());
  }
  F.requestDrain();
  EXPECT_TRUE(F.run()) << "no response write may fail";

  const FrontStats &T = F.stats();
  EXPECT_EQ(T.Routed.load(), static_cast<uint64_t>(Reqs.size()));
  EXPECT_EQ(T.Served.load(), T.Routed.load())
      << "zero routed requests lost on drain";
  EXPECT_EQ(T.WriteFailures.load(), 0u);

  const FrontDrainSummary &D = F.drainSummary();
  EXPECT_EQ(D.ShardCount, 2u);
  EXPECT_EQ(D.CleanExits, 2u) << "every worker must drain to exit 0";
  EXPECT_EQ(D.WorkerServed, static_cast<uint64_t>(Reqs.size()))
      << "worker drained records must account for every routed request";
  EXPECT_EQ(D.WorkerWriteFailures, 0u);

  // The socket is gone: a post-drain connect must fail, not hang.
  auto C2 = connectUnix(O.SocketPath);
  EXPECT_FALSE(static_cast<bool>(C2));
}

TEST(Front, TcpLoopbackModeWorks) {
  FrontOptions O;
  O.TcpPort = 0; // kernel-assigned
  O.Shards = 2;
  O.ServeBinary = IRLT_SERVE_PATH;
  Front F(O);
  auto St = F.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  ASSERT_GT(F.boundPort(), 0);
  {
    auto C = connectTcp(F.boundPort());
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    ASSERT_TRUE(C->sendFrame(R"({"op":"healthz","id":"t"})"));
    auto P = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(P)) << P.message();
    EXPECT_NE(P->find("\"ok\":true"), std::string::npos);
  }
  F.requestDrain();
  EXPECT_TRUE(F.run());
}
