//===- tests/front/FrontToolTest.cpp - irlt-front end to end --------------===//
//
// Drives irlt-front, its irlt-serve workers, and irlt-servectl as real
// subprocesses: the serve/drain lifecycle with journal warm restart, the
// kill-a-worker-under-load acceptance scenario (structured rejects only,
// zero hangs, clean drain, and --retry-overloaded convergence to the
// byte-exact uncontended stream), the --fault list mode, and usage
// errors. Binary paths come from the build system.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <sys/types.h>

using namespace irlt;

namespace {

#ifndef IRLT_FRONT_PATH
#define IRLT_FRONT_PATH "irlt-front"
#endif
#ifndef IRLT_SERVE_PATH
#define IRLT_SERVE_PATH "irlt-serve"
#endif
#ifndef IRLT_SERVECTL_PATH
#define IRLT_SERVECTL_PATH "irlt-servectl"
#endif

struct RunResult {
  int ExitCode;
  std::string Output;
};

/// Runs a foreground command (servectl invocations) capturing stdout.
RunResult run(const std::string &Cmd) {
  FILE *Pipe = popen((Cmd + " 2>/dev/null").c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  std::string Out;
  std::array<char, 4096> Buf;
  size_t Got;
  while ((Got = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
    Out.append(Buf.data(), Got);
  int Status = pclose(Pipe);
  return RunResult{WEXITSTATUS(Status), Out};
}

std::string tmpFile(const std::string &Name) {
  return ::testing::TempDir() + "irlt_fronttool_" + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// A front started in the background through the shell; the pid is the
/// front's own (echo $! of the exec'd binary).
struct Daemon {
  pid_t Pid = -1;
  std::string OutFile;
  std::string Sock;
};

/// Starts irlt-front detached with \p Extra appended to the command line.
Daemon startFront(const std::string &Tag, const std::string &Extra) {
  Daemon D;
  D.Sock = tmpFile(Tag + ".sock");
  D.OutFile = tmpFile(Tag + ".out");
  std::remove(D.Sock.c_str());
  std::string Cmd = std::string("exec ") + IRLT_FRONT_PATH + " --socket " +
                    D.Sock + " --serve-bin " + IRLT_SERVE_PATH + " " + Extra +
                    " > " + D.OutFile + " 2>&1 & echo $!";
  FILE *Pipe = popen(("sh -c '" + Cmd + "'").c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  if (!Pipe)
    return D;
  long Pid = -1;
  if (std::fscanf(Pipe, "%ld", &Pid) != 1)
    Pid = -1;
  pclose(Pipe);
  D.Pid = static_cast<pid_t>(Pid);
  EXPECT_GT(D.Pid, 0);
  RunResult Ping = run(std::string(IRLT_SERVECTL_PATH) + " --socket " +
                       D.Sock + " ping --retry 300");
  EXPECT_EQ(Ping.ExitCode, 0) << "front never came up: " << slurp(D.OutFile);
  return D;
}

/// Signals the front and waits for it to exit (its stdout records are
/// then complete in OutFile).
void stopFront(Daemon &D, int Sig = SIGTERM) {
  ASSERT_GT(D.Pid, 0);
  ASSERT_EQ(::kill(D.Pid, Sig), 0);
  for (int I = 0; I < 3000; ++I) { // up to 30s: workers drain too
    if (::kill(D.Pid, 0) != 0 && errno == ESRCH)
      return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "front did not exit after signal " << Sig << "\n"
         << slurp(D.OutFile);
}

std::string ctl(const Daemon &D, const std::string &Rest) {
  return std::string(IRLT_SERVECTL_PATH) + " --socket " + D.Sock +
         " --timeout-ms 60000 " + Rest;
}

/// An explicit-id, all-ok corpus (retry-safe: no positional default ids,
/// so a retried line renders the identical record). The "kill-mark" line
/// is a normal request in a fault-free run and the crash trigger under
/// --fault worker-kill.
std::string writeCorpus(const std::string &Tag) {
  const char *Matmul =
      R"("arrays B, C\ndo i = 1, n\n  do j = 1, n\n    do k = 1, n\n      A(i, j) += B(i, k) * C(k, j)\n    enddo\n  enddo\nenddo\n")";
  std::string Path = tmpFile(Tag + ".ndjson");
  std::ofstream Out(Path);
  Out << R"({"id": "a", "nest": )" << Matmul
      << R"(, "script": "block 1 3 8 8 8", "emit": "loop"})" << "\n"
      << R"({"id": "kill-mark", "nest": )" << Matmul
      << R"(, "script": "interchange 1 2"})" << "\n";
  for (int I = 0; I < 12; ++I)
    Out << R"({"id": "q)" << I << R"(", "nest": )" << Matmul
        << R"(, "script": "block 1 3 8 8 8", "reduce": true})" << "\n";
  return Path;
}

/// Finds the first record of kind \p Kind in a front's stdout file.
ErrorOr<json::JsonValue> toolRecord(const std::string &OutFile,
                                    const std::string &Kind) {
  std::string Text = slurp(OutFile);
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string::npos)
      Nl = Text.size();
    std::string Line = Text.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    ErrorOr<json::JsonValue> V = json::JsonValue::parse(Line);
    if (static_cast<bool>(V) && V->stringOr("record") == Kind)
      return V;
  }
  return Failure(Diag::error("no '" + Kind + "' record in " + OutFile +
                             ":\n" + Text));
}

} // namespace

TEST(FrontTool, LifecycleDrainsAndJournalWarmRestartReplaysByteIdentical) {
  std::string Corpus = writeCorpus("lifecycle");
  std::string Journal = tmpFile("lifecycle.journal");
  for (int I = 0; I < 3; ++I)
    std::remove((Journal + ".shard" + std::to_string(I)).c_str());

  Daemon A = startFront("lc_a", "--shards 3 --persist " + Journal);
  auto Serving = toolRecord(A.OutFile, "serving");
  ASSERT_TRUE(static_cast<bool>(Serving)) << Serving.message();
  EXPECT_EQ(Serving->intOr("shards", 0), 3);

  RunResult SendA = run(ctl(A, "send " + Corpus));
  EXPECT_EQ(SendA.ExitCode, 0) << SendA.Output;
  EXPECT_FALSE(SendA.Output.empty());

  // The persist op fans out to every worker and aggregates.
  RunResult Persist = run(ctl(A, "persist"));
  EXPECT_EQ(Persist.ExitCode, 0) << Persist.Output;
  ErrorOr<json::JsonValue> PV = json::JsonValue::parse(
      Persist.Output.substr(0, Persist.Output.find('\n')));
  ASSERT_TRUE(static_cast<bool>(PV)) << Persist.Output;
  EXPECT_NE(PV->intOr("entries", 0), 0);

  stopFront(A, SIGTERM);
  auto DrainedA = toolRecord(A.OutFile, "drained");
  ASSERT_TRUE(static_cast<bool>(DrainedA)) << DrainedA.message();
  EXPECT_EQ(DrainedA->intOr("clean_worker_exits", -1), 3);
  EXPECT_EQ(DrainedA->intOr("write_failures", -1), 0);
  EXPECT_GE(DrainedA->intOr("persisted_entries", 0), 1);

  // Restart on the same journal base: each worker replays its own shard
  // journal and the corpus serves byte-identically against the restored
  // caches (routing is deterministic, so every key returns to the shard
  // that journaled it).
  Daemon B = startFront("lc_b", "--shards 3 --persist " + Journal);
  RunResult SendB = run(ctl(B, "send " + Corpus));
  EXPECT_EQ(SendB.ExitCode, 0);
  EXPECT_EQ(SendB.Output, SendA.Output)
      << "restored-cache responses diverged from the first run";
  stopFront(B, SIGINT); // SIGINT drains identically
  auto DrainedB = toolRecord(B.OutFile, "drained");
  ASSERT_TRUE(static_cast<bool>(DrainedB)) << DrainedB.message();
  EXPECT_EQ(DrainedB->intOr("write_failures", -1), 0);
}

TEST(FrontTool, KillWorkerUnderLoadConvergesWithRetryByteIdentical) {
  std::string Corpus = writeCorpus("kill");

  // Uncontended baseline: same corpus, no fault. The kill-mark line is
  // an ordinary request here.
  Daemon A = startFront("kill_base", "--shards 3");
  RunResult Base = run(ctl(A, "send " + Corpus));
  EXPECT_EQ(Base.ExitCode, 0) << Base.Output;
  stopFront(A);

  // Faulted run: the marker crashes its worker mid-corpus. Every
  // response still arrives (structured rejects, never a hang), and with
  // --retry-overloaded the stream converges to the baseline bytes.
  Daemon B = startFront("kill_fault",
                        "--shards 3 --backoff-ms 50 --fault worker-kill");
  RunResult NoRetry = run(ctl(B, "send " + Corpus));
  EXPECT_EQ(NoRetry.ExitCode, 2)
      << "the stranded requests must surface as error records";
  EXPECT_NE(NoRetry.Output.find("\"kind\":\"shard_down\""), std::string::npos)
      << NoRetry.Output;
  size_t Lines = 0;
  for (char C : NoRetry.Output)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 14u) << "every request gets exactly one response";

  RunResult Retried = run(ctl(B, "send " + Corpus + " --retry-overloaded"));
  EXPECT_EQ(Retried.ExitCode, 0) << Retried.Output;
  EXPECT_EQ(Retried.Output, Base.Output)
      << "retried stream must converge to the uncontended bytes";

  // The front survived two worker crashes and still drains cleanly.
  EXPECT_EQ(run(ctl(B, "ping")).ExitCode, 0);
  stopFront(B);
  auto Drained = toolRecord(B.OutFile, "drained");
  ASSERT_TRUE(static_cast<bool>(Drained)) << Drained.message();
  EXPECT_GE(Drained->intOr("restarts", 0), 2);
  EXPECT_GE(Drained->intOr("shard_down_rejects", 0), 1);
  EXPECT_EQ(Drained->intOr("write_failures", -1), 0);
}

TEST(FrontTool, FaultListModeExitsZeroForBothDaemons) {
  RunResult F = run(std::string(IRLT_FRONT_PATH) + " --fault list");
  EXPECT_EQ(F.ExitCode, 0);
  EXPECT_NE(F.Output.find("worker-kill"), std::string::npos) << F.Output;
  EXPECT_NE(F.Output.find("worker-hang"), std::string::npos) << F.Output;

  RunResult S = run(std::string(IRLT_SERVE_PATH) + " --fault list");
  EXPECT_EQ(S.ExitCode, 0);
  EXPECT_NE(S.Output.find("worker-throw"), std::string::npos) << S.Output;

  RunResult E = run(std::string("IRLT_FAULT=list ") + IRLT_FRONT_PATH);
  EXPECT_EQ(E.ExitCode, 0);
  EXPECT_NE(E.Output.find("worker-slow-start"), std::string::npos) << E.Output;
}

TEST(FrontTool, SlowStartingWorkersAreWaitedForAtStartup) {
  // worker-slow-start delays every worker's bind by ~1s; the front's
  // bounded startup probing must absorb it and still come up healthy.
  Daemon D = startFront("slowstart", "--shards 2 --fault worker-slow-start");
  RunResult Ping = run(ctl(D, "ping"));
  EXPECT_EQ(Ping.ExitCode, 0) << Ping.Output;
  stopFront(D);
  auto Drained = toolRecord(D.OutFile, "drained");
  ASSERT_TRUE(static_cast<bool>(Drained)) << Drained.message();
  EXPECT_EQ(Drained->intOr("clean_worker_exits", -1), 2);
}

TEST(FrontTool, UsageErrorsExitOne) {
  EXPECT_EQ(run(std::string(IRLT_FRONT_PATH) + " --frobnicate").ExitCode, 1);
  EXPECT_EQ(run(std::string(IRLT_FRONT_PATH) + " --shards 0").ExitCode, 1);
  EXPECT_EQ(run(std::string(IRLT_FRONT_PATH) + " --socket x --shards 65")
                .ExitCode,
            1);
  EXPECT_EQ(run(std::string(IRLT_FRONT_PATH) + " --fault no-such").ExitCode,
            1);
}
