//===- tests/fuzz/FastPathSoundTest.cpp - Fast path stays conservative ----===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the deterministic fuzzing loop in-process and asserts the two
/// soundness invariants behind ROADMAP's former "Known soundness gap"
/// hold with zero exceptions: the type-state fast path never accepts a
/// sequence the full legality test rejects (FastPathUnsound == 0), and
/// no accepted sequence breaks an execution-equivalence oracle
/// (Failures empty). The smoke budget mirrors the Fuzz.Smoke ctest
/// entry; the nightly CI job runs the full ROADMAP reproducer budgets.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include <gtest/gtest.h>

using namespace irlt::fuzz;

namespace {

TEST(FastPathSound, SmokeBudgetHasZeroUnsoundAcceptances) {
  FuzzOptions Opts;
  Opts.Seed = 1;
  Opts.Cases = 200;
  Opts.ReproDir = ::testing::TempDir() + "/irlt-fuzz-fastpath-repro";

  FuzzStats Stats = runFuzzer(Opts);
  EXPECT_EQ(Stats.total(), Opts.Cases);
  EXPECT_EQ(Stats.Count[static_cast<unsigned>(Category::FastPathUnsound)], 0u)
      << "the fast legality path accepted a sequence the full test rejects";
  EXPECT_EQ(Stats.Count[static_cast<unsigned>(Category::OracleFailure)], 0u);
  EXPECT_TRUE(Stats.Failures.empty())
      << Stats.Failures.front().Detail << " (case seed "
      << Stats.Failures.front().CaseSeed << ")";
}

TEST(FastPathSound, SearchModeSmokeBudgetIsClean) {
  FuzzOptions Opts;
  Opts.Seed = 1;
  Opts.Cases = 25;
  Opts.SearchMode = true;
  Opts.ReproDir = ::testing::TempDir() + "/irlt-fuzz-fastpath-search-repro";

  FuzzStats Stats = runFuzzer(Opts);
  EXPECT_EQ(Stats.Count[static_cast<unsigned>(Category::FastPathUnsound)], 0u);
  EXPECT_EQ(Stats.Count[static_cast<unsigned>(Category::OracleFailure)], 0u);
  EXPECT_TRUE(Stats.Failures.empty())
      << Stats.Failures.front().Detail << " (case seed "
      << Stats.Failures.front().CaseSeed << ")";
}

} // namespace
