//===- tests/integration/ConsistencyPropertyTest.cpp - Definition 3.4 ----===//
//
// Empirically verifies Theorem 3.5: every dependence-vector mapping rule
// in Table 2 is *consistent* (Definition 3.4):
//
//     Tuples(D') >= { t(e) - t(d) | e - d in Tuples(D) }
//
// where t() is the template's defining iteration mapping. The paper notes
// the Table 2 rules "were derived by hand from the iteration mapping
// defined by the transformation"; this test re-derives ground truth from
// that iteration mapping directly:
//
//  - dependent instance pairs come from a concrete run of the original
//    nest (shared array cell, at least one write);
//  - the original dependence set is their exact distance set (iteration
//    numbers; the scenarios are rectangular with step 1, so ordinals and
//    normalized index values coincide);
//  - each template's t() is spelled out below (matrix product, reversal/
//    permutation, tile div, coalesce linearization, interleave div/mod);
//  - every transformed pair difference must be covered by the mapped set.
//
// Code generation is verified separately (VerifyTest & figure tests); the
// two suites together pin both rule sets of each template.
//
//===----------------------------------------------------------------------===//

#include "eval/Verify.h"
#include "ir/Parser.h"
#include "support/MathUtils.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

#include <functional>
#include <map>

using namespace irlt;

namespace {

struct Scenario {
  std::string Name;
  std::string Source;
  std::map<std::string, int64_t> Params;
};

std::vector<Scenario> scenarios() {
  return {
      {"stencil2d",
       "do i = 2, n - 1\n"
       "  do j = 2, n - 1\n"
       "    a(i, j) = a(i - 1, j) + a(i, j - 1) + a(i + 1, j + 1)\n"
       "  enddo\n"
       "enddo\n",
       {{"n", 8}}},
      {"longdist",
       "do i = 4, n\n"
       "  do j = 1, n\n"
       "    a(i, j) = a(i - 3, j) + a(i, j - 1) + a(i, j + 2)\n"
       "  enddo\n"
       "enddo\n",
       {{"n", 10}}},
      {"threedeep",
       "do i = 1, n\n"
       "  do j = 1, n\n"
       "    do k = 2, n\n"
       "      a(i, j, k) = a(i, j, k - 1) + b(j)\n"
       "      b(j) = a(i, j, k) + 1\n"
       "    enddo\n"
       "  enddo\n"
       "enddo\n",
       {{"n", 5}}},
  };
}

/// A template instantiation together with its defining iteration mapping
/// t(): original iteration-number tuple -> transformed tuple.
struct MappedTemplate {
  TemplateRef T;
  std::function<std::vector<int64_t>(const std::vector<int64_t> &)> Map;
};

std::vector<MappedTemplate> templatesFor(unsigned N) {
  std::vector<MappedTemplate> Out;

  // ReversePermute: rotation with the first loop reversed. Reversal of an
  // iteration number within a C-iteration loop is (C-1) - o; any affine
  // flip yields the same differences, so o -> -o suffices for the
  // difference-coverage check.
  {
    std::vector<unsigned> Perm(N);
    for (unsigned K = 0; K < N; ++K)
      Perm[K] = (K + 1) % N;
    std::vector<bool> Rev(N, false);
    Rev[0] = true;
    Out.push_back({makeReversePermute(N, Rev, Perm),
                   [Perm, Rev, N](const std::vector<int64_t> &O) {
                     std::vector<int64_t> Y(N);
                     for (unsigned K = 0; K < N; ++K)
                       Y[Perm[K]] = Rev[K] ? -O[K] : O[K];
                     return Y;
                   }});
  }

  // Plain interchange of the outer pair.
  Out.push_back({makeInterchange(N, 0, 1),
                 [N](const std::vector<int64_t> &O) {
                   std::vector<int64_t> Y = O;
                   std::swap(Y[0], Y[1]);
                   return Y;
                 }});

  // Parallelize: identity on iterations.
  Out.push_back({makeParallelize(N, std::vector<bool>(N, true)),
                 [](const std::vector<int64_t> &O) { return O; }});

  // Block the whole nest with size 3: tile coords then element coords.
  {
    std::vector<ExprRef> Bs(N, Expr::intConst(3));
    Out.push_back({makeBlock(N, 1, N, Bs),
                   [N](const std::vector<int64_t> &O) {
                     std::vector<int64_t> Y;
                     for (unsigned K = 0; K < N; ++K)
                       Y.push_back(floorDiv(O[K], 3));
                     for (unsigned K = 0; K < N; ++K)
                       Y.push_back(O[K]);
                     return Y;
                   }});
  }

  // Block an inner sub-range with size 2.
  Out.push_back({makeBlock(N, 2, N, std::vector<ExprRef>(N - 1,
                                                         Expr::intConst(2))),
                 [N](const std::vector<int64_t> &O) {
                   std::vector<int64_t> Y;
                   Y.push_back(O[0]);
                   for (unsigned K = 1; K < N; ++K)
                     Y.push_back(floorDiv(O[K], 2));
                   for (unsigned K = 1; K < N; ++K)
                     Y.push_back(O[K]);
                   return Y;
                 }});

  // Coalesce the whole nest: linearized index. Trip counts are not known
  // to the mapping closure, so it receives them via a big radix that
  // exceeds every scenario's extents (the merge rule must hold for any
  // radix large enough to keep digits in range - 64 is).
  Out.push_back({makeCoalesce(N, 1, N),
                 [N](const std::vector<int64_t> &O) {
                   int64_t Q = 0;
                   for (unsigned K = 0; K < N; ++K)
                     Q = Q * 64 + O[K];
                   return std::vector<int64_t>{Q};
                 }});

  // Coalesce the inner pair.
  Out.push_back({makeCoalesce(N, N - 1, N),
                 [N](const std::vector<int64_t> &O) {
                   std::vector<int64_t> Y(O.begin(), O.end() - 2);
                   Y.push_back(O[N - 2] * 64 + O[N - 1]);
                   return Y;
                 }});

  // Interleave the outer pair with factors 2 and 3: phases then elements.
  Out.push_back(
      {makeInterleave(N, 1, 2, {Expr::intConst(2), Expr::intConst(3)}),
       [N](const std::vector<int64_t> &O) {
         std::vector<int64_t> Y;
         Y.push_back(floorMod(O[0], 2));
         Y.push_back(floorMod(O[1], 3));
         Y.push_back(floorDiv(O[0], 2));
         Y.push_back(floorDiv(O[1], 3));
         for (unsigned K = 2; K < N; ++K)
           Y.push_back(O[K]);
         return Y;
       }});

  // Unimodular: skew innermost by outermost.
  {
    UnimodularMatrix M = UnimodularMatrix::skew(N, 0, N - 1, 1);
    Out.push_back({makeUnimodular(N, M),
                   [M](const std::vector<int64_t> &O) { return M.apply(O); }});
  }
  // Unimodular: reversal of loop 2.
  {
    UnimodularMatrix M = UnimodularMatrix::reversal(N, 1);
    Out.push_back({makeUnimodular(N, M),
                   [M](const std::vector<int64_t> &O) { return M.apply(O); }});
  }
  return Out;
}

using ScenarioTemplate = std::tuple<size_t, size_t>;

class ConsistencyTest : public ::testing::TestWithParam<ScenarioTemplate> {};

TEST_P(ConsistencyTest, MappingRuleIsConsistent) {
  auto [SIdx, TIdx] = GetParam();
  Scenario S = scenarios()[SIdx];
  ErrorOr<LoopNest> NestOr = parseLoopNest(S.Source);
  ASSERT_TRUE(static_cast<bool>(NestOr)) << NestOr.message();
  const LoopNest &Nest = *NestOr;

  std::vector<MappedTemplate> Ts = templatesFor(Nest.numLoops());
  ASSERT_LT(TIdx, Ts.size());
  const MappedTemplate &MT = Ts[TIdx];
  ASSERT_EQ(MT.T->checkPreconditions(Nest), "") << MT.T->str();

  EvalConfig C;
  C.Params = S.Params;
  C.RecordAccesses = true;
  ArrayStore Store;
  EvalResult Run = evaluate(Nest, C, Store);
  std::vector<std::pair<uint64_t, uint64_t>> Pairs =
      dependentInstancePairs(Run);
  ASSERT_FALSE(Pairs.empty()) << S.Name << ": scenario has no dependences";

  // Exact original dependence set from the pairs' ordinal differences.
  DepSet D0;
  for (const auto &[A, B] : Pairs) {
    std::vector<int64_t> Delta;
    for (size_t K = 0; K < Run.OrdinalTuples[A].size(); ++K)
      Delta.push_back(Run.OrdinalTuples[B][K] - Run.OrdinalTuples[A][K]);
    D0.insert(DepVector::distances(Delta));
  }

  DepSet DT = MT.T->mapDependences(D0);

  for (const auto &[A, B] : Pairs) {
    std::vector<int64_t> YA = MT.Map(Run.OrdinalTuples[A]);
    std::vector<int64_t> YB = MT.Map(Run.OrdinalTuples[B]);
    std::vector<int64_t> Delta;
    for (size_t K = 0; K < YA.size(); ++K)
      Delta.push_back(YB[K] - YA[K]);
    bool Covered = false;
    for (const DepVector &V : DT.vectors())
      if (V.containsTuple(Delta)) {
        Covered = true;
        break;
      }
    ASSERT_TRUE(Covered) << S.Name << " / " << MT.T->str()
                         << ": transformed difference "
                         << DepVector::distances(Delta).str()
                         << " not covered by mapped set " << DT.str();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenariosAllTemplates, ConsistencyTest,
    ::testing::Combine(::testing::Range<size_t>(0, 3),
                       ::testing::Range<size_t>(0, 10)),
    [](const ::testing::TestParamInfo<ScenarioTemplate> &Info) {
      return scenarios()[std::get<0>(Info.param)].Name + "_t" +
             std::to_string(std::get<1>(Info.param));
    });

} // namespace
