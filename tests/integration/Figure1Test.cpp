//===- tests/integration/Figure1Test.cpp - Paper Figure 1 ----------------===//
//
// Reproduces Figure 1 of the paper: the 5-point stencil nest is skewed
// (j with respect to i) and then interchanged; the generated code uses
// initialization statements and matches Figure 1(b):
//
//   do jj = 4, n+n-2
//     do ii = max(2, jj-n+1), min(n-1, jj-2)
//       j = jj - ii
//       i = ii
//       a(i, j) = (a(i, j)+a(i-1, j)+a(i, j-1)+a(i+1, j)+a(i, j+1))/5
//
//===----------------------------------------------------------------------===//

#include "dependence/DepAnalysis.h"
#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

const char *Fig1Source = R"(
do i = 2, n - 1
  do j = 2, n - 1
    a(i, j) = (a(i, j) + a(i - 1, j) + a(i, j - 1) + a(i + 1, j) + a(i, j + 1)) / 5
  enddo
enddo
)";

LoopNest parseFig1() {
  ErrorOr<LoopNest> N = parseLoopNest(Fig1Source);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

/// Skew j by i, then interchange: combined matrix [[1, 1], [1, 0]].
TransformSequence fig1Sequence() {
  UnimodularMatrix Skew = UnimodularMatrix::skew(2, /*Src=*/0, /*Dst=*/1, 1);
  UnimodularMatrix Inter = UnimodularMatrix::interchange(2, 0, 1);
  return TransformSequence::of(
      {makeUnimodular(2, Skew), makeUnimodular(2, Inter)});
}

TEST(Figure1, DependenceAnalysisFindsStencilDeps) {
  LoopNest Nest = parseFig1();
  DepSet D = analyzeDependences(Nest);
  // Flow and anti dependences collapse to the two distance vectors the
  // skew+interchange must respect: (1, 0) and (0, 1).
  EXPECT_EQ(D.str(), "{(0, 1), (1, 0)}");
}

TEST(Figure1, SequenceReducesToSingleMatrix) {
  TransformSequence Seq = fig1Sequence().reduced();
  ASSERT_EQ(Seq.size(), 1u);
  const auto *U = dyn_cast<UnimodularTemplate>(Seq.steps()[0].get());
  ASSERT_NE(U, nullptr);
  EXPECT_EQ(U->matrix().str(), "[[1, 1], [1, 0]]");
}

TEST(Figure1, TransformationIsLegal) {
  LoopNest Nest = parseFig1();
  DepSet D = analyzeDependences(Nest);
  LegalityResult R = isLegal(fig1Sequence().reduced(), Nest, D);
  EXPECT_TRUE(R.Legal) << R.Reason;
  // (1,0) -> (1,1); (0,1) -> (1,0).
  EXPECT_EQ(R.FinalDeps.str(), "{(1, 0), (1, 1)}");
}

TEST(Figure1, GeneratedCodeMatchesFigure1b) {
  LoopNest Nest = parseFig1();
  ErrorOr<LoopNest> Out = applySequence(fig1Sequence().reduced(), Nest);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->str(),
            "do jj = 4, 2*n - 2\n"
            "  do ii = max(2, jj - n + 1), min(n - 1, jj - 2)\n"
            "    j = jj - ii\n"
            "    i = ii\n"
            "    a(i, j) = (a(i, j) + a(i - 1, j) + a(i, j - 1) + a(i + 1, j)"
            " + a(i, j + 1)) / 5\n"
            "  enddo\n"
            "enddo\n");
}

TEST(Figure1, TransformedNestIsSemanticallyEquivalent) {
  LoopNest Nest = parseFig1();
  ErrorOr<LoopNest> Out = applySequence(fig1Sequence(), Nest);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EvalConfig C;
  C.Params["n"] = 9;
  VerifyResult V = verifyTransformed(Nest, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Figure1, UnreducedSequenceEquivalentToReduced) {
  LoopNest Nest = parseFig1();
  ErrorOr<LoopNest> OutA = applySequence(fig1Sequence(), Nest);
  ErrorOr<LoopNest> OutB = applySequence(fig1Sequence().reduced(), Nest);
  ASSERT_TRUE(static_cast<bool>(OutA)) << OutA.message();
  ASSERT_TRUE(static_cast<bool>(OutB)) << OutB.message();
  EvalConfig C;
  C.Params["n"] = 7;
  VerifyResult VA = verifyTransformed(Nest, *OutA, C);
  VerifyResult VB = verifyTransformed(Nest, *OutB, C);
  EXPECT_TRUE(VA.Ok) << VA.Problem;
  EXPECT_TRUE(VB.Ok) << VB.Problem;
}

TEST(Figure1, SkewedNestExposesWavefrontParallelism) {
  // After skew+interchange, the inner loop carries no dependence: its
  // parallelization must be accepted, and the wavefront widens with n.
  LoopNest Nest = parseFig1();
  DepSet D = analyzeDependences(Nest);
  TransformSequence Seq = fig1Sequence().reduced().composedWith(
      TransformSequence::of({makeParallelize(2, {false, true})}));
  LegalityResult R = isLegal(Seq, Nest, D);
  EXPECT_TRUE(R.Legal) << R.Reason;

  ErrorOr<LoopNest> Out = applySequence(Seq, Nest);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EvalConfig C;
  C.Params["n"] = 12;
  ArrayStore S;
  EvalResult Run = evaluate(*Out, C, S);
  ParallelismStats P = parallelismStats(*Out, Run);
  EXPECT_GT(P.MaxParallelism, 1u);
  EXPECT_EQ(P.SequentialSteps, 2u * 12 - 2 - 4 + 1); // jj = 4 .. 2n-2

  // Parallelizing the *outer* skewed loop is illegal.
  TransformSequence Bad = fig1Sequence().reduced().composedWith(
      TransformSequence::of({makeParallelize(2, {true, false})}));
  EXPECT_FALSE(isLegal(Bad, Nest, D).Legal);
}

} // namespace
