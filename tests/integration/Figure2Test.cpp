//===- tests/integration/Figure2Test.cpp - Paper Figure 2 ----------------===//
//
// Reproduces Figure 2: for the dependence set D = {(1, -1), (+, 0)},
// plain loop interchange is illegal (it creates the lexicographically
// negative vector (-1, 1)), but reversing loop j first makes the
// interchange legal. Also exercises the "intermediate stages may be
// illegal" property of the uniform test (Section 3.2).
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

/// A rectangular two-loop nest standing in for Figure 2(a) (the paper's
/// body contains a conditional, which the dependence set below
/// summarizes; the legality test consumes only D).
LoopNest fig2Nest() {
  ErrorOr<LoopNest> N = parseLoopNest("do i = 2, n - 1\n"
                                      "  do j = 2, n - 1\n"
                                      "    a(i, j) = b(j)\n"
                                      "  enddo\n"
                                      "enddo\n");
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

DepSet fig2Deps() {
  DepSet D;
  D.insert(DepVector({DepElem::distance(1), DepElem::distance(-1)}));
  D.insert(DepVector({DepElem::pos(), DepElem::zero()}));
  return D;
}

TEST(Figure2, PlainInterchangeIsIllegal) {
  // Figure 2(b): ReversePermute(n=2, rev=[F F], perm=[2 1]).
  TransformSequence Seq = TransformSequence::of({makeInterchange(2, 0, 1)});
  LegalityResult R = isLegal(Seq, fig2Nest(), fig2Deps());
  EXPECT_FALSE(R.Legal);
  EXPECT_NE(R.Reason.find("(-1, 1)"), std::string::npos) << R.Reason;
}

TEST(Figure2, ReverseJThenInterchangeIsLegal) {
  // Figure 2(c): ReversePermute(n=2, rev=[F T], perm=[2 1]).
  TransformSequence Seq =
      TransformSequence::of({makeReversePermute(2, {false, true}, {1, 0})});
  LegalityResult R = isLegal(Seq, fig2Nest(), fig2Deps());
  EXPECT_TRUE(R.Legal) << R.Reason;
  // (1, -1) -> (1, 1); (+, 0) -> (0, +).
  EXPECT_EQ(R.FinalDeps.str(), "{(0, +), (1, 1)}");
}

TEST(Figure2, IntermediateStageMayBeIllegal) {
  // Interchange first (illegal on its own), then reverse the now-outer
  // loop: <interchange, reverse(loop 1)> maps (1,-1) -> (-1,1) -> (1,1)
  // and (+,0) -> (0,+) -> (0,+): legal as a whole, which is exactly the
  // Section 3.2 point that only the final set matters.
  TransformSequence Seq = TransformSequence::of(
      {makeInterchange(2, 0, 1), makeReversePermute(2, {true, false}, {0, 1})});
  LegalityResult R = isLegal(Seq, fig2Nest(), fig2Deps());
  EXPECT_TRUE(R.Legal) << R.Reason;

  TransformSequence Stage1 = TransformSequence::of({makeInterchange(2, 0, 1)});
  EXPECT_FALSE(isLegal(Stage1, fig2Nest(), fig2Deps()).Legal);
}

TEST(Figure2, ReducedCompositeMatchesStagewise) {
  // The two ReversePermutes fuse into one whose mapped dependence set
  // matches the stagewise result.
  TransformSequence Seq = TransformSequence::of(
      {makeInterchange(2, 0, 1), makeReversePermute(2, {true, false}, {0, 1})});
  TransformSequence Red = Seq.reduced();
  ASSERT_EQ(Red.size(), 1u);
  EXPECT_EQ(mapDependences(Seq, fig2Deps()).str(),
            mapDependences(Red, fig2Deps()).str());
}

TEST(Figure2, ReversalAloneFlipsCarriedDirection) {
  // Reversing the outer loop flips (1, -1) to (-1, 1): illegal.
  TransformSequence Seq =
      TransformSequence::of({makeReversePermute(2, {true, false}, {0, 1})});
  LegalityResult R = isLegal(Seq, fig2Nest(), fig2Deps());
  EXPECT_FALSE(R.Legal);
}

} // namespace
