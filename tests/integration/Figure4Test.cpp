//===- tests/integration/Figure4Test.cpp - Paper Figure 4 ----------------===//
//
// Reproduces Figure 4: (a) a triangular doubly-nested loop satisfies the
// Unimodular preconditions, so permuting it is legal and produces the
// interchanged triangular nest of Figure 4(b); (c) the sparse matrix
// product nest has nonlinear bounds (colstr(j)), which blocks Unimodular
// - but the ReversePermute preconditions still admit moving loop i to
// the innermost position, since the bounds of loop k are invariant in i.
//
//===----------------------------------------------------------------------===//

#include "bounds/TypeLattice.h"
#include "dependence/DepAnalysis.h"
#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest triangularNest() {
  ErrorOr<LoopNest> N = parseLoopNest("do i = 1, n\n"
                                      "  do j = i, n\n"
                                      "    a(i, j) = i + j\n"
                                      "  enddo\n"
                                      "enddo\n");
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

LoopNest sparseNest() {
  // Figure 4(c): dense * sparse matrix product.
  ErrorOr<LoopNest> N = parseLoopNest(
      "arrays b, c\n"
      "do i = 1, n\n"
      "  do j = 1, n\n"
      "    do k = colstr(j), colstr(j + 1) - 1\n"
      "      a(i, j) += b(i, rowidx(k)) * c(k)\n"
      "    enddo\n"
      "  enddo\n"
      "enddo\n");
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

TEST(Figure4, TriangularInterchangeViaUnimodularIsLegal) {
  LoopNest Nest = triangularNest();
  DepSet D = analyzeDependences(Nest); // no cross-iteration deps
  EXPECT_TRUE(D.allLexNonNegative());
  TransformSequence Seq = TransformSequence::of(
      {makeUnimodular(2, UnimodularMatrix::interchange(2, 0, 1))});
  LegalityResult R = isLegal(Seq, Nest, D);
  EXPECT_TRUE(R.Legal) << R.Reason;
}

TEST(Figure4, TriangularInterchangeGeneratesFigure4b) {
  LoopNest Nest = triangularNest();
  TransformSequence Seq = TransformSequence::of(
      {makeUnimodular(2, UnimodularMatrix::interchange(2, 0, 1))});
  ErrorOr<LoopNest> Out = applySequence(Seq, Nest);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  // Figure 4(b) is  do j = 1, n / do i = 1, j ; redundancy elimination
  // drops the projection's min(n, jj) upper bound in favour of jj.
  EXPECT_EQ((*Out).Loops[0].Lower->str(), "1");
  EXPECT_EQ((*Out).Loops[0].Upper->str(), "n");
  EXPECT_EQ((*Out).Loops[1].Lower->str(), "1");
  EXPECT_EQ((*Out).Loops[1].Upper->str(), "jj");

  EvalConfig C;
  C.Params["n"] = 8;
  VerifyResult V = verifyTransformed(Nest, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Figure4, SparseBoundsClassifyAsNonlinear) {
  LoopNest Nest = sparseNest();
  // type(l_3, j) and type(u_3, j) are nonlinear: colstr(j).
  EXPECT_EQ(typeOf(Nest.Loops[2].Lower, "j"), BoundType::Nonlinear);
  EXPECT_EQ(typeOf(Nest.Loops[2].Upper, "j"), BoundType::Nonlinear);
  // ...but invariant in i.
  EXPECT_EQ(typeOf(Nest.Loops[2].Lower, "i"), BoundType::Invar);
  EXPECT_EQ(typeOf(Nest.Loops[2].Upper, "i"), BoundType::Invar);
}

TEST(Figure4, UnimodularInterchangeJKIsRejected) {
  LoopNest Nest = sparseNest();
  // A 3x3 unimodular interchange of j and k violates the linearity
  // precondition (nonlinear bounds of k in j).
  UnimodularMatrix M = UnimodularMatrix::interchange(3, 1, 2);
  TemplateRef T = makeUnimodular(3, M);
  std::string E = T->checkPreconditions(Nest);
  EXPECT_FALSE(E.empty());
  EXPECT_NE(E.find("nonlinear"), std::string::npos) << E;
}

TEST(Figure4, ReversePermuteInterchangeJKIsRejected) {
  LoopNest Nest = sparseNest();
  // Swapping j and k reverses their order: the invariance precondition on
  // that reordered pair fails.
  TemplateRef T = makeInterchange(3, 1, 2);
  std::string E = T->checkPreconditions(Nest);
  EXPECT_FALSE(E.empty());
}

TEST(Figure4, ReversePermuteMovesIInnermost) {
  LoopNest Nest = sparseNest();
  // perm = [3 1 2]: i -> innermost; j, k keep their relative order, so
  // the nonlinear k-bounds impose no constraint (their binder j stays
  // outside). This is the paper's headline ReversePermute example.
  TemplateRef T = makeReversePermute(3, {false, false, false}, {2, 0, 1});
  EXPECT_EQ(T->checkPreconditions(Nest), "");
  TransformSequence Seq = TransformSequence::of({T});
  DepSet D = analyzeDependences(Nest);
  LegalityResult R = isLegal(Seq, Nest, D);
  EXPECT_TRUE(R.Legal) << R.Reason;

  ErrorOr<LoopNest> Out = applySequence(Seq, Nest);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ((*Out).Loops[0].IndexVar, "j");
  EXPECT_EQ((*Out).Loops[1].IndexVar, "k");
  EXPECT_EQ((*Out).Loops[2].IndexVar, "i");

  // Semantic equivalence with a concrete sparse structure (CSC-style
  // column pointers for a 6x6 matrix with 2 entries per column).
  EvalConfig C;
  C.Params["n"] = 6;
  C.Funcs["colstr"] = [](const std::vector<int64_t> &A) {
    return 1 + (A[0] - 1) * 2;
  };
  C.Funcs["rowidx"] = [](const std::vector<int64_t> &A) {
    return 1 + (A[0] * 3) % 6;
  };
  VerifyResult V = verifyTransformed(Nest, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

} // namespace
