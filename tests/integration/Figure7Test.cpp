//===- tests/integration/Figure7Test.cpp - Paper Figures 6 & 7 / App. A --===//
//
// Reproduces the matrix-multiply example of Appendix A: the non-trivial
// iteration-reordering transformation defined as the sequence
//
//   1. ReversePermute(3, rev=[F F F], perm=[3 1 2])     (j, k, i)
//   2. Block(3, 1, 3, bsize=[bj bk bi])                 (jj kk ii j k i)
//   3. Parallelize(6, parflag=[1 0 1 0 0 0])            jj, ii pardo
//   4. ReversePermute(6, rev=[F..F], perm=[1 3 2 4 5 6])(jj ii kk j k i)
//   5. Coalesce(6, 1, 2)  ->  jic                       (jic kk j k i)
//
// checking the dependence vectors after every stage against Figure 7's
// "Dep. Vectors" column, the final loop structure, legality, and
// semantic equivalence under concrete parameters.
//
//===----------------------------------------------------------------------===//

#include "dependence/DepAnalysis.h"
#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest matmulNest() {
  // Figure 6.
  ErrorOr<LoopNest> N = parseLoopNest("arrays B, C\n"
                                      "do i = 1, n\n"
                                      "  do j = 1, n\n"
                                      "    do k = 1, n\n"
                                      "      A(i, j) += B(i, k) * C(k, j)\n"
                                      "    enddo\n"
                                      "  enddo\n"
                                      "enddo\n");
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

std::vector<TemplateRef> fig7Stages() {
  ExprRef Bj = Expr::var("bj"), Bk = Expr::var("bk"), Bi = Expr::var("bi");
  return {
      makeReversePermute(3, {false, false, false}, {2, 0, 1}),
      makeBlock(3, 1, 3, {Bj, Bk, Bi}),
      makeParallelize(6, {true, false, true, false, false, false}),
      makeReversePermute(6, {false, false, false, false, false, false},
                         {0, 2, 1, 3, 4, 5}),
      makeCoalesce(6, 1, 2, std::string("jic")),
  };
}

TEST(Figure7, StartDependences) {
  // Figure 7 "START": (=, =, +).
  DepSet D = analyzeDependences(matmulNest());
  EXPECT_EQ(D.str(), "{(0, 0, +)}");
}

TEST(Figure7, StagewiseDependenceVectors) {
  DepSet D = analyzeDependences(matmulNest());
  std::vector<TemplateRef> Stages = fig7Stages();

  // Stage 1 (ReversePermute): (=, +, =).
  D = Stages[0]->mapDependences(D);
  EXPECT_EQ(D.str(), "{(0, +, 0)}");

  // Stage 2 (Block): (=,=,=,=,+,=) and (=,+,=,=,*,=).
  D = Stages[1]->mapDependences(D);
  EXPECT_EQ(D.str(), "{(0, 0, 0, 0, +, 0), (0, +, 0, 0, *, 0)}");

  // Stage 3 (Parallelize jj, ii): unchanged (their entries are zero).
  D = Stages[2]->mapDependences(D);
  EXPECT_EQ(D.str(), "{(0, 0, 0, 0, +, 0), (0, +, 0, 0, *, 0)}");

  // Stage 4 (swap kk and ii): (=,=,=,=,+,=) and (=,=,+,=,*,=).
  D = Stages[3]->mapDependences(D);
  EXPECT_EQ(D.str(), "{(0, 0, 0, 0, +, 0), (0, 0, +, 0, *, 0)}");

  // Stage 5 (Coalesce jj, ii -> jic): (=,=,=,+,=) and (=,+,=,*,=).
  D = Stages[4]->mapDependences(D);
  EXPECT_EQ(D.str(), "{(0, 0, 0, +, 0), (0, +, 0, *, 0)}");
}

TEST(Figure7, WholeSequenceIsLegal) {
  LoopNest Nest = matmulNest();
  DepSet D = analyzeDependences(Nest);
  TransformSequence Seq{fig7Stages()};
  LegalityResult R = isLegal(Seq, Nest, D);
  EXPECT_TRUE(R.Legal) << R.Reason;
}

TEST(Figure7, FinalLoopStructure) {
  LoopNest Nest = matmulNest();
  TransformSequence Seq{fig7Stages()};
  ErrorOr<LoopNest> Out = applySequence(Seq, Nest);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();

  ASSERT_EQ(Out->numLoops(), 5u);
  EXPECT_EQ((*Out).Loops[0].IndexVar, "jic");
  EXPECT_EQ((*Out).Loops[0].Kind, LoopKind::ParDo); // jj and ii were pardo
  EXPECT_EQ((*Out).Loops[1].IndexVar, "kk");
  EXPECT_EQ((*Out).Loops[1].Kind, LoopKind::Do);
  EXPECT_EQ((*Out).Loops[2].IndexVar, "j");
  EXPECT_EQ((*Out).Loops[3].IndexVar, "k");
  EXPECT_EQ((*Out).Loops[4].IndexVar, "i");

  // jic runs 1 .. (#jj blocks) * (#ii blocks), step 1 (Figure 7 LB/UB).
  EXPECT_EQ((*Out).Loops[0].Lower->str(), "1");
  EXPECT_EQ((*Out).Loops[0].Step->str(), "1");

  // The init statements recover jj and ii from jic (Figure 7's tmp
  // formulas), before anything else.
  ASSERT_GE(Out->Inits.size(), 2u);
  EXPECT_EQ(Out->Inits[0].Var, "jj");
  EXPECT_EQ(Out->Inits[1].Var, "ii");
}

TEST(Figure7, GoldenGeneratedText) {
  // The complete generated nest, pinned verbatim: Figure 7's final column
  // - jic's trip-count product, the div/mod tmp formulas substituted into
  // the element bounds, and the jj/ii recovery inits.
  LoopNest Nest = matmulNest();
  ErrorOr<LoopNest> Out = applySequence(TransformSequence{fig7Stages()}, Nest);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(
      Out->str(),
      "pardo jic = 1, ((n - 1) / bj + 1)*((n - 1) / bi + 1)\n"
      "  do kk = 1, n, bk\n"
      "    do j = max((jic - 1) / ((n - 1) / bi + 1)*bj + 1, 1), "
      "min((jic - 1) / ((n - 1) / bi + 1)*bj + bj, n)\n"
      "      do k = max(kk, 1), min(bk + kk - 1, n)\n"
      "        do i = max(mod(jic - 1, (n - 1) / bi + 1)*bi + 1, 1), "
      "min(bi + mod(jic - 1, (n - 1) / bi + 1)*bi, n)\n"
      "          jj = (jic - 1) / ((n - 1) / bi + 1)*bj + 1\n"
      "          ii = mod(jic - 1, (n - 1) / bi + 1)*bi + 1\n"
      "          A(i, j) = A(i, j) + B(i, k)*C(k, j)\n"
      "        enddo\n"
      "      enddo\n"
      "    enddo\n"
      "  enddo\n"
      "enddo\n");
}

TEST(Figure7, SemanticEquivalenceUnderConcreteParameters) {
  LoopNest Nest = matmulNest();
  TransformSequence Seq{fig7Stages()};
  ErrorOr<LoopNest> Out = applySequence(Seq, Nest);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();

  for (int64_t N : {4, 7}) {
    for (auto [Bj, Bk, Bi] :
         {std::tuple<int64_t, int64_t, int64_t>{2, 2, 2},
          std::tuple<int64_t, int64_t, int64_t>{3, 2, 4}}) {
      EvalConfig C;
      C.Params = {{"n", N}, {"bj", Bj}, {"bk", Bk}, {"bi", Bi}};
      VerifyResult V = verifyTransformed(Nest, *Out, C);
      EXPECT_TRUE(V.Ok) << "n=" << N << " bj=" << Bj << " bk=" << Bk
                        << " bi=" << Bi << ": " << V.Problem;
    }
  }
}

TEST(Figure7, BlockFanOutMatchesTwoPowerBound) {
  // Section 1 / Table 2: Block may map one vector into up to 2^(j-i+1)
  // vectors; for (0, +, 0) exactly the entry '+' splits: 2 vectors.
  DepSet D;
  D.insert(DepVector({DepElem::zero(), DepElem::pos(), DepElem::zero()}));
  ExprRef B = Expr::intConst(4);
  TemplateRef Blk = makeBlock(3, 1, 3, {B, B, B});
  EXPECT_EQ(Blk->mapDependences(D).size(), 2u);

  DepSet D2;
  D2.insert(DepVector({DepElem::pos(), DepElem::pos(), DepElem::pos()}));
  EXPECT_EQ(Blk->mapDependences(D2).size(), 8u); // full 2^3 fan-out
}

} // namespace
