//===- tests/integration/KernelGalleryTest.cpp -----------------------------===//
//
// A gallery sweep: classic kernels x transformation scripts. For every
// pair the uniform legality test decides; every accepted pair is applied
// and verified by concrete execution (same instances, dependence order
// preserved, same final store). This is the breadth counterpart to the
// figure tests: it exercises the whole pipeline - parser, analyzer,
// script front end, templates, legality (full and fast), codegen,
// evaluator - across realistic shapes.
//
//===----------------------------------------------------------------------===//

#include "dependence/DepAnalysis.h"
#include "driver/Script.h"
#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/TypeState.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

struct Kernel {
  const char *Name;
  const char *Source;
  int64_t N; // binding for the size parameter
};

const Kernel Kernels[] = {
    {"jacobi2d",
     "arrays b\n"
     "do i = 2, n - 1\n  do j = 2, n - 1\n"
     "    a(i, j) = (b(i - 1, j) + b(i + 1, j) + b(i, j - 1) + b(i, j + 1))"
     " / 4\n"
     "  enddo\nenddo\n",
     9},
    {"seidel2d",
     "do i = 2, n - 1\n  do j = 2, n - 1\n"
     "    a(i, j) = (a(i - 1, j) + a(i, j - 1) + a(i, j + 1)) / 3\n"
     "  enddo\nenddo\n",
     8},
    {"matvec",
     "arrays A, x\n"
     "do i = 1, n\n  do j = 1, n\n"
     "    y(i) = y(i) + A(i, j)*x(j)\n"
     "  enddo\nenddo\n",
     7},
    {"triangular_sweep",
     "do i = 2, n\n  do j = 1, i\n"
     "    a(i, j) = a(i - 1, j) + 1\n"
     "  enddo\nenddo\n",
     8},
    {"columnsum",
     "arrays a\n"
     "do i = 1, n\n  do j = 1, n\n"
     "    s(j) = s(j) + a(i, j)\n"
     "  enddo\nenddo\n",
     6},
    {"matmul",
     "arrays B, C\n"
     "do i = 1, n\n  do j = 1, n\n    do k = 1, n\n"
     "      A(i, j) += B(i, k)*C(k, j)\n"
     "    enddo\n  enddo\nenddo\n",
     5},
    {"wavefront3d",
     "do i = 2, n\n  do j = 2, n\n    do k = 2, n\n"
     "      a(i, j, k) = a(i - 1, j, k) + a(i, j - 1, k) + a(i, j, k - 1)\n"
     "    enddo\n  enddo\nenddo\n",
     5},
    {"conv",
     "arrays img, w\n"
     "do i = 1, n\n  do k = 1, 3\n"
     "    out(i) = out(i) + img(i + k)*w(k)\n"
     "  enddo\nenddo\n",
     10},
};

const char *ScriptsDepth2[] = {
    "interchange 1 2",
    "reverse 2",
    "reverse 1",
    "block 1 2 4 4",
    "block 1 2 3 5",
    "coalesce 1 2",
    "interleave 1 2 2 2",
    "interleave 2 2 3",
    "stripmine 1 8",
    "stripmine 2 4",
    "skew 1 2 1",
    "skew 1 2 1 ; interchange 1 2",
    "parallelize 2",
    "parallelize 1",
    "block 1 2 4 4 ; parallelize 1 2",
    "unimodular 1 1 / 1 0",
    "coalesce 1 2 ; stripmine 1 16",
    "stripmine 2 4 ; interchange 1 2",
};

const char *ScriptsDepth3[] = {
    "interchange 1 3",
    "permute 3 1 2",
    "permute 2 3 1",
    "reverse 3",
    "block 1 3 4 4 4",
    "block 2 3 4 4",
    "coalesce 2 3",
    "coalesce 1 3",
    "interleave 2 3 2 2",
    "stripmine 2 4",
    "skew 1 3 2",
    "skew 1 2 1 ; skew 1 3 1",
    "parallelize 2 3",
    "block 2 3 4 4 ; coalesce 1 2",
    "permute 3 1 2 ; block 1 3 3 3 3 ; parallelize 1 3",
    "stripmine 3 4 ; interchange 3 4",
    "coalesce 2 3 ; interleave 2 2 3",
    "reverse 1 ; reverse 2 ; reverse 3",
};

struct Outcome {
  bool Buildable = false; // script parsed and sized correctly
  bool Legal = false;
  bool Verified = false;
};

Outcome runPair(const Kernel &K, const char *Script) {
  Outcome O;
  ErrorOr<LoopNest> NestOr = parseLoopNest(K.Source);
  EXPECT_TRUE(static_cast<bool>(NestOr)) << K.Name << ": "
                                         << NestOr.message();
  LoopNest Nest = NestOr.take();
  ErrorOr<TransformSequence> SeqOr =
      parseTransformScript(Script, Nest.numLoops());
  if (!SeqOr)
    return O;
  O.Buildable = true;

  DepSet D = analyzeDependences(Nest);
  LegalityResult Full = isLegal(*SeqOr, Nest, D);
  LegalityResult Fast = isLegalFast(*SeqOr, Nest, D);
  // Fast may be stricter, never looser.
  EXPECT_FALSE(Fast.Legal && !Full.Legal)
      << K.Name << " / " << Script << ": " << Full.Reason;
  if (!Full.Legal)
    return O;
  O.Legal = true;

  ErrorOr<LoopNest> Out = applySequence(*SeqOr, Nest);
  EXPECT_TRUE(static_cast<bool>(Out))
      << K.Name << " / " << Script << ": " << Out.message();
  if (!Out)
    return O;
  EvalConfig C;
  C.Params["n"] = K.N;
  VerifyResult V = verifyTransformed(Nest, *Out, C);
  EXPECT_TRUE(V.Ok) << K.Name << " / " << Script << "\n"
                    << Out->str() << V.Problem;
  O.Verified = V.Ok;
  return O;
}

unsigned kernelDepth(const Kernel &K) {
  ErrorOr<LoopNest> N = parseLoopNest(K.Source);
  return N ? N->numLoops() : 0;
}

using PairParam = std::tuple<size_t, size_t>;
class KernelGallery : public ::testing::TestWithParam<PairParam> {};

TEST_P(KernelGallery, LegalPairsVerify) {
  auto [KIdx, SIdx] = GetParam();
  const Kernel &K = Kernels[KIdx];
  unsigned Depth = kernelDepth(K);
  const char *Script = nullptr;
  if (Depth == 2 && SIdx < std::size(ScriptsDepth2))
    Script = ScriptsDepth2[SIdx];
  else if (Depth == 3 && SIdx < std::size(ScriptsDepth3))
    Script = ScriptsDepth3[SIdx];
  if (!Script)
    GTEST_SKIP() << "no script at this index for depth " << Depth;
  Outcome O = runPair(K, Script);
  if (O.Legal) {
    EXPECT_TRUE(O.Verified);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KernelGallery,
    ::testing::Combine(::testing::Range<size_t>(0, std::size(Kernels)),
                       ::testing::Range<size_t>(0, 18)),
    [](const ::testing::TestParamInfo<PairParam> &Info) {
      return std::string(Kernels[std::get<0>(Info.param)].Name) + "_s" +
             std::to_string(std::get<1>(Info.param));
    });

TEST(KernelGalleryCoverage, SweepIsNotVacuous) {
  unsigned Legal = 0, Buildable = 0;
  for (const Kernel &K : Kernels) {
    unsigned Depth = kernelDepth(K);
    if (Depth == 2) {
      for (const char *S : ScriptsDepth2) {
        Outcome O = runPair(K, S);
        Buildable += O.Buildable;
        Legal += O.Legal;
      }
    } else if (Depth == 3) {
      for (const char *S : ScriptsDepth3) {
        Outcome O = runPair(K, S);
        Buildable += O.Buildable;
        Legal += O.Legal;
      }
    }
  }
  // The sweep must exercise both arms substantially.
  EXPECT_GT(Buildable, 80u);
  EXPECT_GT(Legal, 40u);
  EXPECT_LT(Legal, Buildable); // and reject something
  RecordProperty("legal", static_cast<int>(Legal));
  RecordProperty("buildable", static_cast<int>(Buildable));
}

} // namespace
