//===- tests/integration/RandomNestPropertyTest.cpp - Fuzzed soundness ---===//
//
// Randomized end-to-end soundness of the uniform legality test: for a
// corpus of generated loop nests (rectangular, triangular, strided) and
// random transformation sequences over the whole kernel set, whenever
// IsLegal(T, N) accepts, the generated code must execute the same
// instances in a dependence-respecting order and produce the same final
// store (checked by concrete execution).
//
// The converse is not asserted - direction summaries make the test
// conservative by design - but the suite counts accepted sequences to
// make sure the legal arm is genuinely exercised.
//
//===----------------------------------------------------------------------===//

#include "dependence/DepAnalysis.h"
#include "eval/Verify.h"
#include "ir/Parser.h"
#include "support/Printing.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"
#include "transform/TypeState.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

/// Deterministic xorshift generator: reproducible across platforms.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}
  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }
  /// Uniform in [0, N).
  uint64_t below(uint64_t N) { return next() % N; }
  bool flip() { return next() & 1; }

private:
  uint64_t State;
};

/// Builds a random 2- or 3-deep source nest with a dependence-bearing
/// stencil body.
LoopNest randomNest(Rng &R, unsigned Depth) {
  static const char *Names[] = {"i", "j", "k"};
  std::string Src;
  std::vector<std::string> Vars;
  for (unsigned K = 0; K < Depth; ++K) {
    std::string V = Names[K];
    Vars.push_back(V);
    std::string Lo = "1", Hi = "n";
    if (K > 0 && R.below(3) == 0)
      Lo = Vars[R.below(K)]; // triangular lower bound
    else if (K > 0 && R.below(4) == 0)
      Hi = Vars[R.below(K)]; // triangular upper bound
    Src += std::string(2 * K, ' ') + "do " + V + " = " + Lo + ", " + Hi + "\n";
  }
  // Body: a write to a(...) plus reads at small offsets; offsets are
  // chosen non-negative in the lexicographic sense so the source nest is
  // valid by construction.
  std::string Subs, Reads;
  for (unsigned K = 0; K < Depth; ++K)
    Subs += (K ? ", " : "") + Vars[K];
  Reads = "a(" + Subs + ")";
  unsigned NumReads = 1 + static_cast<unsigned>(R.below(2));
  for (unsigned T = 0; T < NumReads; ++T) {
    unsigned Lead = static_cast<unsigned>(R.below(Depth));
    std::string Ref;
    for (unsigned K = 0; K < Depth; ++K) {
      int64_t Off = 0;
      if (K == Lead)
        Off = -static_cast<int64_t>(1 + R.below(2)); // carried backwards
      else if (K > Lead)
        Off = static_cast<int64_t>(R.below(3)) - 1; // free
      std::string Term = Vars[K];
      if (Off > 0)
        Term += " + " + std::to_string(Off);
      if (Off < 0)
        Term += " - " + std::to_string(-Off);
      Ref += (K ? ", " : "") + Term;
    }
    Reads += " + a(" + Ref + ")";
  }
  Src += std::string(2 * Depth, ' ') + "a(" + Subs + ") = " + Reads + "\n";
  for (unsigned K = Depth; K-- > 0;)
    Src += std::string(2 * K, ' ') + "enddo\n";

  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << Src << "\n" << N.message();
  return *N;
}

/// Picks a random template instantiation for an n-deep nest.
TemplateRef randomTemplate(Rng &R, unsigned N) {
  switch (R.below(8)) {
  case 0: { // ReversePermute: random permutation + reversals
    std::vector<unsigned> Perm(N);
    for (unsigned K = 0; K < N; ++K)
      Perm[K] = K;
    for (unsigned K = N; K > 1; --K)
      std::swap(Perm[K - 1], Perm[R.below(K)]);
    std::vector<bool> Rev(N);
    for (unsigned K = 0; K < N; ++K)
      Rev[K] = R.flip();
    return makeReversePermute(N, Rev, Perm);
  }
  case 1: { // Parallelize random subset
    std::vector<bool> Flags(N);
    for (unsigned K = 0; K < N; ++K)
      Flags[K] = R.flip();
    return makeParallelize(N, Flags);
  }
  case 2: { // Block a random contiguous range
    unsigned I = 1 + static_cast<unsigned>(R.below(N));
    unsigned J = I + static_cast<unsigned>(R.below(N - I + 1));
    std::vector<ExprRef> Bs;
    for (unsigned K = I; K <= J; ++K)
      Bs.push_back(Expr::intConst(2 + static_cast<int64_t>(R.below(3))));
    return makeBlock(N, I, J, Bs);
  }
  case 3: { // Coalesce a random contiguous range
    unsigned I = 1 + static_cast<unsigned>(R.below(N));
    unsigned J = I + static_cast<unsigned>(R.below(N - I + 1));
    return makeCoalesce(N, I, J);
  }
  case 4: { // Interleave a random contiguous range
    unsigned I = 1 + static_cast<unsigned>(R.below(N));
    unsigned J = I + static_cast<unsigned>(R.below(N - I + 1));
    std::vector<ExprRef> Is;
    for (unsigned K = I; K <= J; ++K)
      Is.push_back(Expr::intConst(2 + static_cast<int64_t>(R.below(2))));
    return makeInterleave(N, I, J, Is);
  }
  case 5: { // Unimodular skew (needs two distinct loops)
    if (N < 2)
      return makeUnimodular(1, UnimodularMatrix::reversal(1, 0));
    unsigned A = static_cast<unsigned>(R.below(N));
    unsigned B = static_cast<unsigned>(R.below(N));
    if (A == B)
      B = (B + 1) % N;
    int64_t F = static_cast<int64_t>(R.below(3)) - 1;
    if (F == 0)
      F = 1;
    return makeUnimodular(N, UnimodularMatrix::skew(N, A, B, F));
  }
  case 6: // StripMine (extension template: exercises fast-path fallback)
    return makeStripMine(N, 1 + static_cast<unsigned>(R.below(N)),
                         Expr::intConst(2 + static_cast<int64_t>(R.below(4))));
  default: // Unimodular reversal
    return makeUnimodular(
        N, UnimodularMatrix::reversal(N, static_cast<unsigned>(R.below(N))));
  }
}

class RandomNestTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomNestTest, LegalSequencesAreSound) {
  Rng R(GetParam() * 0x100000001b3ull + 0xcbf29ce484222325ull);
  unsigned Depth = 2 + static_cast<unsigned>(R.below(2));
  LoopNest Nest = randomNest(R, Depth);
  DepSet D = analyzeDependences(Nest);
  // The source nest must itself be valid.
  ASSERT_TRUE(D.allLexNonNegative()) << Nest.str() << D.str();

  unsigned Accepted = 0, Tried = 0;
  for (unsigned Attempt = 0; Attempt < 12; ++Attempt) {
    // Build a random sequence, tracking the evolving nest size.
    TransformSequence Seq;
    LoopNest Cur = Nest;
    unsigned Len = 1 + static_cast<unsigned>(R.below(3));
    bool Buildable = true;
    for (unsigned S = 0; S < Len; ++S) {
      TemplateRef T = randomTemplate(R, Cur.numLoops());
      if (!T->checkPreconditions(Cur).empty()) {
        Buildable = false;
        break;
      }
      ErrorOr<LoopNest> Next = T->apply(Cur);
      if (!Next) {
        Buildable = false;
        break;
      }
      Cur = Next.take();
      Seq.append(T);
    }
    if (!Buildable || Seq.empty())
      continue;
    ++Tried;

    LegalityResult L = isLegal(Seq, Nest, D);
    // The Section 4.3 fast path may be strictly more conservative than
    // the full test (type summaries round up), but must never accept a
    // sequence the full test rejects.
    LegalityResult LF = isLegalFast(Seq, Nest, D);
    ASSERT_FALSE(LF.Legal && !L.Legal)
        << "fast path accepted what the full test rejects, seed "
        << GetParam() << "\nnest:\n"
        << Nest.str() << "seq " << Seq.str() << "\nfull: " << L.Reason;
    if (!L.Legal)
      continue;
    ++Accepted;

    ErrorOr<LoopNest> Out = applySequence(Seq, Nest);
    ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
    EvalConfig C;
    C.Params["n"] = 6;
    VerifyResult V = verifyTransformed(Nest, *Out, C);
    ASSERT_TRUE(V.Ok) << "seed " << GetParam() << "\nnest:\n"
                      << Nest.str() << "deps: " << D.str() << "\nseq "
                      << Seq.str() << "\ntransformed:\n"
                      << Out->str() << "problem: " << V.Problem;

    // The reduced sequence must agree.
    TransformSequence Red = Seq.reduced();
    ErrorOr<LoopNest> OutR = applySequence(Red, Nest);
    ASSERT_TRUE(static_cast<bool>(OutR)) << OutR.message();
    VerifyResult VR = verifyTransformed(Nest, *OutR, C);
    ASSERT_TRUE(VR.Ok) << "reduced sequence diverged: " << VR.Problem;
  }
  RecordProperty("accepted", static_cast<int>(Accepted));
  RecordProperty("tried", static_cast<int>(Tried));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNestTest,
                         ::testing::Range<uint64_t>(1, 121));

} // namespace
