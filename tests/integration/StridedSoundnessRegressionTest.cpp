//===- integration/StridedSoundnessRegressionTest.cpp --------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five fuzz failures behind ROADMAP's former "Known soundness gap",
/// pinned as deterministic regression tests (ISSUE 3 satellite). Each
/// case is a nest with a strided loop and/or a loop-variable lower bound
/// on which the legality machinery used to misbehave: the full test
/// accepted sequences concrete execution disproves, or the fast path
/// accepted what the full test rejects. Every test re-runs the fuzzer's
/// oracle discipline on the exact (nest, script) pair of the original
/// reproducer dump:
///
///   - the fast path must stay strictly conservative w.r.t. the full
///     test (fast-accept implies full-accept);
///   - a fully-accepted sequence must be equivalence-preserving under
///     concrete execution for the fuzzer's parameter bindings.
///
/// Case names carry the original irlt-fuzz case seed so a regression can
/// be replayed with the fuzzer directly.
///
//===----------------------------------------------------------------------===//

#include "dependence/DepAnalysis.h"
#include "driver/Script.h"
#include "eval/Verify.h"
#include "ir/Parser.h"
#include "search/Search.h"
#include "transform/TypeState.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

/// Runs the script-mode fuzz oracle on one (nest, script) pair.
void checkSoundness(const std::string &NestSrc, const std::string &Script) {
  ErrorOr<LoopNest> NestOr = parseLoopNest(NestSrc);
  ASSERT_TRUE(static_cast<bool>(NestOr)) << NestOr.message();
  LoopNest Nest = NestOr.take();
  DepSet D = analyzeDependences(Nest);

  ErrorOr<TransformSequence> SeqOr =
      parseTransformScript(Script, Nest.numLoops());
  ASSERT_TRUE(static_cast<bool>(SeqOr)) << SeqOr.message();
  TransformSequence Seq = SeqOr.take();

  LegalityResult Full = isLegal(Seq, Nest, D);
  LegalityResult Fast = isLegalFast(Seq, Nest, D);
  if (Fast.Legal)
    EXPECT_TRUE(Full.Legal)
        << "fast path accepted what the full test rejects: " << Full.Reason;
  if (!Full.Legal)
    return;

  ErrorOr<LoopNest> Out = applySequence(Seq, Nest);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  for (const auto &Binding :
       {std::map<std::string, int64_t>{{"n", 6}, {"m", 4}, {"b", 2}},
        std::map<std::string, int64_t>{{"n", 9}, {"m", 5}, {"b", 3}}}) {
    EvalConfig C;
    C.Params = Binding;
    C.MaxInstances = 200'000;
    VerifyResult V = verifyTransformed(Nest, *Out, C);
    ASSERT_FALSE(V.BudgetExceeded) << V.Problem;
    EXPECT_TRUE(V.Ok) << "accepted sequence is not equivalence-preserving: "
                      << V.Problem;
  }
}

// Fuzz seed 7, case seed 5196528102312897253: Block then a chain of
// Unimodular steps on the blocked nest. The full test used to accept
// while the transformed nest executed a different instance set.
TEST(StridedSoundnessRegression, BlockUnimodularChain_Seed5196528102312897253) {
  checkSoundness("do i = 1, n\n"
                 "  do j = 1, n\n"
                 "    do k = 1, n\n"
                 "      a(i, j, k) = a(i, j, k)\n"
                 "    enddo\n"
                 "  enddo\n"
                 "enddo\n",
                 "block 1 3 2 2 2\n"
                 "unimodular 1 0 0 0 0 0 / 0 1 0 0 0 0 / 0 0 1 0 0 0 / "
                 "0 0 1 0 0 1 / 0 0 0 0 1 0 / 0 0 0 1 0 0\n"
                 "unimodular 1 0 0 0 0 0 / 0 1 0 0 0 0 / 0 0 1 0 0 0 / "
                 "0 0 0 1 0 0 / 0 0 0 1 1 0 / 0 0 0 0 0 1\n");
}

// Fuzz seed 7, case seed 16900907164382347021: stride-2 loop with a
// loop-variable lower bound (j = i+1, n, 2) and an i-carried dependence;
// a permuting Unimodular used to reorder dependent instances.
TEST(StridedSoundnessRegression,
     StridedLowerBoundPermute_Seed16900907164382347021) {
  checkSoundness("do i = 1, n\n"
                 "  do j = i + 1, n, 2\n"
                 "    do k = 1, n\n"
                 "      a(i, j, k) = a(i, j, k) + a(i - 2, j, k)\n"
                 "    enddo\n"
                 "  enddo\n"
                 "enddo\n",
                 "unimodular 0 0 -1 / 0 1 0 / 1 0 0\n");
}

// Fuzz seed 7, case seed 16273675876593014471: stride-2 innermost loop
// starting at an outer index (k = j, n, 2) with a j-carried dependence;
// StripMine plus a full reversal permutation used to pass legality while
// concrete execution observed reordered dependent instances.
TEST(StridedSoundnessRegression,
     StripMineReversalOnStridedStart_Seed16273675876593014471) {
  checkSoundness("do i = 1, n\n"
                 "  do j = 1, n\n"
                 "    do k = j, n, 2\n"
                 "      a(i, j, k) = a(i, j, k) + a(i, j - 2, k)\n"
                 "    enddo\n"
                 "  enddo\n"
                 "enddo\n",
                 "stripmine 1 3\n"
                 "unimodular 0 0 0 1 / 0 0 1 0 / 0 1 0 0 / 1 0 0 0\n");
}

// Fuzz seed 7, case seed 4726124315787404383: stride-2 outer loop; the
// type-state fast path used to accept a skew chain the full test rejects
// (fast-path-unsound).
TEST(StridedSoundnessRegression, FastPathSkewChain_Seed4726124315787404383) {
  checkSoundness("do i = 1, n, 2\n"
                 "  do j = 1, n\n"
                 "    do k = 1, n\n"
                 "      a(i, j, k) = a(i, j, k)\n"
                 "    enddo\n"
                 "  enddo\n"
                 "enddo\n",
                 "skew 3 1 -1\n"
                 "unimodular 1 -1 0 / 0 1 0 / 0 0 1\n");
}

// Fuzz search seed 3, case seed 12058097834987792354: the beam search on
// a strided-start nest used to report a winning candidate that concrete
// execution disproves. Re-run the search and hold every reported
// candidate to the execution oracle.
TEST(StridedSoundnessRegression, SearchCandidates_Seed12058097834987792354) {
  ErrorOr<LoopNest> NestOr = parseLoopNest("do i = m, n\n"
                                           "  do j = 1, n\n"
                                           "    do k = j, n, 2\n"
                                           "      a(i, j, k) = a(i, j, k) + "
                                           "a(i, j - 2, k)\n"
                                           "    enddo\n"
                                           "  enddo\n"
                                           "enddo\n");
  ASSERT_TRUE(static_cast<bool>(NestOr)) << NestOr.message();
  LoopNest Nest = NestOr.take();
  DepSet D = analyzeDependences(Nest);

  search::SearchOptions SO;
  SO.Obj = search::Objective::Both;
  SO.Depth = 1;
  SO.Beam = 4;
  SO.TopK = 3;
  search::SearchResult R = search::searchTransformations(Nest, D, SO);
  ASSERT_TRUE(R.Error.empty()) << R.Error;

  for (const search::ScoredSequence &S : R.Top) {
    LegalityResult L = isLegal(S.Seq, Nest, D);
    EXPECT_TRUE(L.Legal) << "search reported an illegal candidate " << S.Key
                         << ": " << L.Reason;
    if (!L.Legal)
      continue;
    ErrorOr<LoopNest> Out = applySequence(S.Seq, Nest);
    ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
    EvalConfig C;
    C.Params = {{"n", 6}, {"m", 4}, {"b", 2}};
    C.MaxInstances = 200'000;
    VerifyResult V = verifyTransformed(Nest, *Out, C);
    ASSERT_FALSE(V.BudgetExceeded) << V.Problem;
    EXPECT_TRUE(V.Ok) << "search candidate " << S.Key
                      << " is not equivalence-preserving: " << V.Problem;
  }
}

} // namespace
