//===- tests/integration/TrapezoidBlockTest.cpp - Tiles-with-work claim --===//
//
// Reproduces the paper's blocking-efficiency claim (Sections 4.2, 6):
// on a trapezoidal (triangular) iteration space, the Block template's
// xmin/xmax bounds create only tiles with some work, while the
// rectangular bounding-box baseline (Wolf-Lam style, [14]) walks empty
// tiles. Both versions must remain semantically equivalent.
//
//===----------------------------------------------------------------------===//

#include "baseline/RectangularTile.h"
#include "dependence/DepAnalysis.h"
#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

#include <set>

using namespace irlt;

namespace {

LoopNest triangularNest() {
  // Lower-triangular sweep: j <= i.
  ErrorOr<LoopNest> N = parseLoopNest("do i = 1, n\n"
                                      "  do j = 1, i\n"
                                      "    a(i, j) = i + j\n"
                                      "  enddo\n"
                                      "enddo\n");
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

/// Tiles entered = iterations of the innermost block loop (level 1 here);
/// tiles with work = distinct block-var pairs among executed instances.
struct TileCounts {
  uint64_t Entered;
  uint64_t WithWork;
};

TileCounts countTiles(const LoopNest &Transformed, const EvalConfig &C) {
  ArrayStore Store;
  EvalConfig C2 = C;
  C2.RecordTrace = true;
  EvalResult R = evaluate(Transformed, C2, Store);
  std::set<std::pair<int64_t, int64_t>> Blocks;
  for (const std::vector<int64_t> &T : R.LoopTuples)
    Blocks.insert({T[0], T[1]});
  return TileCounts{R.LevelCounts[1], static_cast<uint64_t>(Blocks.size())};
}

TEST(TrapezoidBlock, FrameworkBlockCreatesOnlyTilesWithWork) {
  LoopNest Nest = triangularNest();
  ExprRef B = Expr::intConst(4);
  TransformSequence Seq = TransformSequence::of({makeBlock(2, 1, 2, {B, B})});
  LegalityResult L = isLegal(Seq, Nest, analyzeDependences(Nest));
  EXPECT_TRUE(L.Legal) << L.Reason;
  ErrorOr<LoopNest> Out = applySequence(Seq, Nest);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();

  EvalConfig C;
  C.Params["n"] = 32;
  TileCounts T = countTiles(*Out, C);
  EXPECT_EQ(T.Entered, T.WithWork)
      << "Block template walked a tile with no work";

  VerifyResult V = verifyTransformed(Nest, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(TrapezoidBlock, BoundingBoxBaselineWalksEmptyTiles) {
  LoopNest Nest = triangularNest();
  ExprRef B = Expr::intConst(4);
  ExprRef One = Expr::intConst(1), Nn = Expr::var("n");
  TransformSequence Seq = TransformSequence::of(
      {makeRectangularTile(2, 1, 2, {B, B}, {One, One}, {Nn, Nn})});
  ErrorOr<LoopNest> Out = applySequence(Seq, Nest);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();

  EvalConfig C;
  C.Params["n"] = 32;
  TileCounts T = countTiles(*Out, C);
  EXPECT_GT(T.Entered, T.WithWork)
      << "bounding-box tiling unexpectedly skipped its empty tiles";

  // Still semantically equivalent - the element clamps do the filtering.
  VerifyResult V = verifyTransformed(Nest, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;

  // The framework's Block visits strictly fewer tiles on the triangle.
  TransformSequence Ours = TransformSequence::of({makeBlock(2, 1, 2, {B, B})});
  ErrorOr<LoopNest> OursOut = applySequence(Ours, Nest);
  ASSERT_TRUE(static_cast<bool>(OursOut));
  TileCounts TO = countTiles(*OursOut, C);
  EXPECT_LT(TO.Entered, T.Entered);
  EXPECT_EQ(TO.WithWork, T.WithWork); // same work, fewer tiles
}

TEST(TrapezoidBlock, UpperTriangularAndOffsetTrapezoids) {
  // j >= i band: do i = 1, n / do j = i, min(i + 7, n).
  ErrorOr<LoopNest> N = parseLoopNest("do i = 1, n\n"
                                      "  do j = i, min(i + 7, n)\n"
                                      "    a(i, j) = i + j\n"
                                      "  enddo\n"
                                      "enddo\n");
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  ExprRef B = Expr::intConst(4);
  TransformSequence Seq = TransformSequence::of({makeBlock(2, 1, 2, {B, B})});
  ErrorOr<LoopNest> Out = applySequence(Seq, *N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();

  EvalConfig C;
  C.Params["n"] = 40;
  TileCounts T = countTiles(*Out, C);
  EXPECT_EQ(T.Entered, T.WithWork);
  VerifyResult V = verifyTransformed(*N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(TrapezoidBlock, BlockOfInnerPairInDeeperNest) {
  // Blocking only an inner contiguous pair of a 3-nest.
  ErrorOr<LoopNest> N = parseLoopNest("do t = 1, 3\n"
                                      "  do i = 1, n\n"
                                      "    do j = 1, i\n"
                                      "      a(i, j) = a(i, j) + t\n"
                                      "    enddo\n"
                                      "  enddo\n"
                                      "enddo\n");
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  ExprRef B = Expr::intConst(5);
  TransformSequence Seq = TransformSequence::of({makeBlock(3, 2, 3, {B, B})});
  LegalityResult L = isLegal(Seq, *N, analyzeDependences(*N));
  EXPECT_TRUE(L.Legal) << L.Reason;
  ErrorOr<LoopNest> Out = applySequence(Seq, *N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EvalConfig C;
  C.Params["n"] = 17;
  VerifyResult V = verifyTransformed(*N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

} // namespace
