//===- tests/ir/ExprTest.cpp -----------------------------------------------===//

#include "ir/Expr.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

/// Minimal environment for evaluation tests.
class TestEnv : public ExprEnv {
public:
  std::map<std::string, int64_t> Vars;
  std::optional<int64_t> lookup(const std::string &Name) const override {
    auto It = Vars.find(Name);
    if (It == Vars.end())
      return std::nullopt;
    return It->second;
  }
  int64_t call(const std::string &Name,
               const std::vector<int64_t> &Args) const override {
    if (Name == "twice")
      return 2 * Args[0];
    ADD_FAILURE() << "unexpected call " << Name;
    return 0;
  }
};

TEST(Expr, PrintingPrecedence) {
  ExprRef E = Expr::mul(Expr::add(Expr::var("a"), Expr::var("b")),
                        Expr::intConst(3));
  EXPECT_EQ(E->str(), "(a + b)*3");
  ExprRef E2 = Expr::add(Expr::var("a"), Expr::mul(Expr::var("b"),
                                                   Expr::intConst(3)));
  EXPECT_EQ(E2->str(), "a + b*3");
  ExprRef E3 = Expr::sub(Expr::var("a"), Expr::sub(Expr::var("b"),
                                                   Expr::var("c")));
  EXPECT_EQ(E3->str(), "a - (b - c)");
  ExprRef E4 = Expr::floorDivE(Expr::add(Expr::var("a"), Expr::intConst(1)),
                               Expr::intConst(2));
  EXPECT_EQ(E4->str(), "(a + 1) / 2");
}

TEST(Expr, NegationSugar) {
  EXPECT_EQ(Expr::neg(Expr::var("x"))->str(), "-x");
  EXPECT_EQ(Expr::add(Expr::var("y"), Expr::neg(Expr::var("x")))->str(),
            "y + -x"); // additive context keeps the bare unary minus
  EXPECT_EQ(Expr::mul(Expr::neg(Expr::var("x")), Expr::intConst(3))->str(),
            "(-x)*3");
}

TEST(Expr, MinMaxAndCallsPrintInCallSyntax) {
  ExprRef E = Expr::minE({Expr::var("a"), Expr::intConst(2)});
  EXPECT_EQ(E->str(), "min(a, 2)");
  ExprRef M = Expr::modE(Expr::var("a"), Expr::intConst(4));
  EXPECT_EQ(M->str(), "mod(a, 4)");
  ExprRef C = Expr::call("colstr", {Expr::var("j")});
  EXPECT_EQ(C->str(), "colstr(j)");
}

TEST(Expr, StructuralEquality) {
  ExprRef A = Expr::add(Expr::var("i"), Expr::intConst(1));
  ExprRef B = Expr::add(Expr::var("i"), Expr::intConst(1));
  ExprRef C = Expr::add(Expr::intConst(1), Expr::var("i"));
  EXPECT_TRUE(A->equals(*B));
  EXPECT_FALSE(A->equals(*C)); // structural, not semantic
}

TEST(Expr, ContainsAndCollectVars) {
  ExprRef E = Expr::add(Expr::call("f", {Expr::var("k")}),
                        Expr::mul(Expr::var("i"), Expr::var("n")));
  EXPECT_TRUE(E->containsVar("k"));
  EXPECT_TRUE(E->containsVar("i"));
  EXPECT_FALSE(E->containsVar("j"));
  std::set<std::string> Vars;
  E->collectVars(Vars);
  EXPECT_EQ(Vars, (std::set<std::string>{"i", "k", "n"}));
}

TEST(Expr, Substitute) {
  ExprRef E = Expr::add(Expr::var("i"), Expr::var("j"));
  std::map<std::string, ExprRef> M{{"i", Expr::intConst(5)}};
  EXPECT_EQ(Expr::substitute(E, M)->str(), "5 + j");
  // Unchanged subtrees are shared, not copied.
  ExprRef F = Expr::var("k");
  EXPECT_EQ(Expr::substitute(F, M), F);
}

TEST(Expr, EvaluateArithmetic) {
  TestEnv Env;
  Env.Vars = {{"i", 7}, {"j", -3}};
  EXPECT_EQ(Expr::add(Expr::var("i"), Expr::var("j"))->evaluate(Env), 4);
  EXPECT_EQ(Expr::floorDivE(Expr::var("j"), Expr::intConst(2))->evaluate(Env),
            -2); // flooring
  EXPECT_EQ(Expr::modE(Expr::var("j"), Expr::intConst(2))->evaluate(Env), 1);
  EXPECT_EQ(Expr::maxE({Expr::var("i"), Expr::intConst(10)})->evaluate(Env),
            10);
  EXPECT_EQ(Expr::minE({Expr::var("i"), Expr::intConst(10)})->evaluate(Env),
            7);
  EXPECT_EQ(Expr::call("twice", {Expr::var("i")})->evaluate(Env), 14);
}

TEST(Expr, CeilDivByConst) {
  TestEnv Env;
  Env.Vars = {{"x", 7}};
  EXPECT_EQ(Expr::ceilDivByConst(Expr::var("x"), 2)->evaluate(Env), 4);
  Env.Vars["x"] = -7;
  EXPECT_EQ(Expr::ceilDivByConst(Expr::var("x"), 2)->evaluate(Env), -3);
  // Divisor 1 is the identity.
  ExprRef X = Expr::var("x");
  EXPECT_EQ(Expr::ceilDivByConst(X, 1), X);
}

TEST(Expr, ConstValue) {
  EXPECT_EQ(Expr::intConst(9)->constValue(), 9);
  EXPECT_FALSE(Expr::var("x")->constValue().has_value());
}

} // namespace
