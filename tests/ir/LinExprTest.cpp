//===- tests/ir/LinExprTest.cpp --------------------------------------------===//

#include "ir/LinExpr.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

ExprRef parse(const std::string &S) {
  ErrorOr<ExprRef> E = parseExpr(S);
  EXPECT_TRUE(static_cast<bool>(E)) << E.message();
  return *E;
}

TEST(LinExpr, LinearizesSumsAndScales) {
  LinExpr L = LinExpr::fromExpr(parse("2*i + 3*j - i + 7"));
  EXPECT_EQ(L.coeffOf("i"), 1);
  EXPECT_EQ(L.coeffOf("j"), 3);
  EXPECT_EQ(L.constant(), 7);
  EXPECT_TRUE(L.allAtomsAreVars());
}

TEST(LinExpr, CancellationDropsTerms) {
  LinExpr L = LinExpr::fromExpr(parse("i - i + 4"));
  EXPECT_TRUE(L.isConst());
  EXPECT_EQ(L.constant(), 4);
}

TEST(LinExpr, OpaqueAtoms) {
  LinExpr L = LinExpr::fromExpr(parse("2*colstr(j) + i"));
  EXPECT_EQ(L.coeffOf("i"), 1);
  EXPECT_EQ(L.coeffOf("j"), 0); // j hides inside the call atom
  EXPECT_TRUE(L.dependsOn("j"));
  EXPECT_TRUE(L.hasVarInsideOpaqueAtom("j"));
  EXPECT_FALSE(L.hasVarInsideOpaqueAtom("i"));
  EXPECT_FALSE(L.allAtomsAreVars());
}

TEST(LinExpr, ProductOfNonConstantsIsOpaque) {
  LinExpr L = LinExpr::fromExpr(parse("i*j + 2*i"));
  EXPECT_EQ(L.coeffOf("i"), 2);
  EXPECT_TRUE(L.hasVarInsideOpaqueAtom("j"));
}

TEST(LinExpr, DivAndModFoldOnlyConstants) {
  EXPECT_EQ(LinExpr::fromExpr(parse("7 / 2")).constant(), 3);
  EXPECT_EQ(LinExpr::fromExpr(parse("mod(7, 4)")).constant(), 3);
  LinExpr L = LinExpr::fromExpr(parse("i / 2"));
  EXPECT_TRUE(L.hasVarInsideOpaqueAtom("i")); // flooring div is opaque
}

TEST(LinExpr, ArithmeticAndSubstitution) {
  LinExpr A = LinExpr::fromExpr(parse("2*i + n"));
  LinExpr B = LinExpr::fromExpr(parse("i - n + 1"));
  LinExpr S = A + B;
  EXPECT_EQ(S.coeffOf("i"), 3);
  EXPECT_EQ(S.coeffOf("n"), 0);
  EXPECT_EQ(S.constant(), 1);

  std::map<std::string, LinExpr> M{{"i", LinExpr::fromExpr(parse("y - 1"))}};
  LinExpr Sub = A.substituted(M);
  EXPECT_EQ(Sub.coeffOf("y"), 2);
  EXPECT_EQ(Sub.coeffOf("n"), 1);
  EXPECT_EQ(Sub.constant(), -2);
}

TEST(LinExpr, ToExprRoundTrip) {
  LinExpr L = LinExpr::fromExpr(parse("2*i - j + 5"));
  EXPECT_EQ(L.toExpr()->str(), "2*i - j + 5");
  LinExpr Z;
  EXPECT_EQ(Z.toExpr()->str(), "0");
  LinExpr NegOnly = LinExpr::fromExpr(parse("0 - j"));
  EXPECT_EQ(NegOnly.toExpr()->str(), "-j");
}

TEST(LinExpr, ExtractVar) {
  LinExpr L = LinExpr::fromExpr(parse("3*i + j"));
  EXPECT_EQ(L.extractVar("i"), 3);
  EXPECT_EQ(L.coeffOf("i"), 0);
  EXPECT_EQ(L.coeffOf("j"), 1);
  EXPECT_EQ(L.extractVar("zz"), 0);
}

TEST(Simplify, FoldsAndCanonicalizes) {
  EXPECT_EQ(simplify(parse("1 + 2*3"))->str(), "7");
  EXPECT_EQ(simplify(parse("i + 0"))->str(), "i");
  EXPECT_EQ(simplify(parse("1*i + 0*j"))->str(), "i");
  EXPECT_EQ(simplify(parse("(i + 1) - 1"))->str(), "i");
  EXPECT_EQ(simplify(parse("i / 1"))->str(), "i");
  EXPECT_EQ(simplify(parse("mod(i, 1)"))->str(), "0");
  EXPECT_EQ(simplify(parse("14 / 4"))->str(), "3");
}

TEST(Simplify, MinMaxFlattenDedupeAndFoldConstants) {
  EXPECT_EQ(simplify(parse("min(3, min(i, 5))"))->str(), "min(3, i)");
  EXPECT_EQ(simplify(parse("max(i, i)"))->str(), "i");
  EXPECT_EQ(simplify(parse("max(2, max(7, 3))"))->str(), "7");
  // Constant keeps its original position relative to other operands.
  EXPECT_EQ(simplify(parse("max(2, j - n + 1)"))->str(), "max(2, j - n + 1)");
  EXPECT_EQ(simplify(parse("max(j - n + 1, 2)"))->str(), "max(j - n + 1, 2)");
}

TEST(Simplify, RecursesIntoOpaqueNodes) {
  EXPECT_EQ(simplify(parse("colstr(j + 0) / 1"))->str(), "colstr(j)");
  EXPECT_EQ(simplify(parse("min(i + 0, 2*4)"))->str(), "min(i, 8)");
}

} // namespace
