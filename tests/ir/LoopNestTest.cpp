//===- tests/ir/LoopNestTest.cpp -------------------------------------------===//

#include "ir/LoopNest.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest stencil() {
  ErrorOr<LoopNest> N =
      parseLoopNest("do i = 2, n - 1\n"
                    "  do j = 2, n - 1\n"
                    "    a(i, j) = a(i - 1, j) + b(j)\n"
                    "    b(j) = a(i, j)\n"
                    "  enddo\n"
                    "enddo\n");
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

TEST(LoopNest, LoopIndexOf) {
  LoopNest N = stencil();
  EXPECT_EQ(N.loopIndexOf("i"), 0);
  EXPECT_EQ(N.loopIndexOf("j"), 1);
  EXPECT_EQ(N.loopIndexOf("zz"), -1);
  EXPECT_TRUE(N.bindsVar("i"));
  EXPECT_FALSE(N.bindsVar("n"));
}

TEST(LoopNest, CollectReadsAndWrites) {
  LoopNest N = stencil();
  std::vector<ArrayRef> Writes, Reads;
  N.collectWrites(Writes);
  N.collectReads(Reads);
  ASSERT_EQ(Writes.size(), 2u);
  EXPECT_EQ(Writes[0].str(), "a(i, j)");
  EXPECT_EQ(Writes[1].str(), "b(j)");
  ASSERT_EQ(Reads.size(), 3u);
  EXPECT_EQ(Reads[0].str(), "a(i - 1, j)");
  EXPECT_EQ(Reads[1].str(), "b(j)");
  EXPECT_EQ(Reads[2].str(), "a(i, j)");
}

TEST(LoopNest, InitStatementsPrintBeforeBody) {
  LoopNest N = stencil();
  N.Inits.push_back(InitStmt{"t", Expr::add(Expr::var("i"), Expr::var("j"))});
  std::string S = N.str();
  size_t InitPos = S.find("t = i + j");
  size_t BodyPos = S.find("a(i, j) =");
  ASSERT_NE(InitPos, std::string::npos);
  ASSERT_NE(BodyPos, std::string::npos);
  EXPECT_LT(InitPos, BodyPos);
}

TEST(LoopNest, ValidateCatchesMissingBounds) {
  LoopNest N;
  N.Loops.push_back(Loop("i", Expr::intConst(1), nullptr, Expr::intConst(1)));
  EXPECT_NE(N.validate().find("missing"), std::string::npos);
}

TEST(LoopNest, SealAsSourceSetsBodyIndexVars) {
  LoopNest N;
  N.Loops.push_back(
      Loop("p", Expr::intConst(1), Expr::intConst(4), Expr::intConst(1)));
  N.sealAsSource();
  EXPECT_EQ(N.BodyIndexVars, std::vector<std::string>{"p"});
}

TEST(LoopNest, NestedArraySubscriptReadsAreCollected) {
  ErrorOr<LoopNest> N = parseLoopNest("arrays idx\n"
                                      "do i = 1, n\n"
                                      "  a(i) = a(idx(i))\n"
                                      "enddo\n");
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  std::vector<ArrayRef> Reads;
  N->collectReads(Reads);
  // Both a(idx(i)) and the inner idx(i) are array reads.
  ASSERT_EQ(Reads.size(), 2u);
  EXPECT_EQ(Reads[0].str(), "a(idx(i))");
  EXPECT_EQ(Reads[1].str(), "idx(i)");
}

} // namespace
