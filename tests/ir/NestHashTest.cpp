//===- tests/ir/NestHashTest.cpp - Canonical nest fingerprint tests -------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
//
// The fingerprint keys the facade's memoization caches (api/Pipeline.h),
// so the bar is asymmetric: a missed merge costs a redundant analysis
// run, but a *false* merge silently returns the wrong dependence set or
// legality verdict. The equality cases prove renames and term reordering
// merge; the distinctness cases - including every pairwise combination
// of the StridedSoundnessRegressionTest nests - prove structurally
// different nests never collide.
//
//===----------------------------------------------------------------------===//

#include "ir/NestHash.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

std::string keyOf(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message() << "\n" << Src;
  return canonicalNestKey(*N);
}

} // namespace

TEST(NestHash, AlphaRenamedIndexVariablesAgree) {
  std::string A = keyOf("do i = 1, n\n"
                        "  do j = 1, i\n"
                        "    a(i, j) = a(i, j) + 1\n"
                        "  enddo\n"
                        "enddo\n");
  std::string B = keyOf("do p = 1, n\n"
                        "  do q = 1, p\n"
                        "    a(p, q) = a(p, q) + 1\n"
                        "  enddo\n"
                        "enddo\n");
  EXPECT_EQ(A, B);
}

TEST(NestHash, FreeParameterNamesStayDistinct) {
  // Parameters are runtime inputs: binding-sensitive callers (validation,
  // cost models) must not see nests over n and m merge.
  EXPECT_NE(keyOf("do i = 1, n\n  a(i) = 0\nenddo\n"),
            keyOf("do i = 1, m\n  a(i) = 0\nenddo\n"));
}

TEST(NestHash, ReorderedBoundTermsAgree) {
  std::string A = keyOf("do i = 1, n + m - 1\n"
                        "  do j = i + 1, n\n"
                        "    a(i, j) = a(i, j) + 1\n"
                        "  enddo\n"
                        "enddo\n");
  std::string B = keyOf("do i = 1, m + n - 1\n"
                        "  do j = 1 + i, n\n"
                        "    a(i, j) = a(i, j) + 1\n"
                        "  enddo\n"
                        "enddo\n");
  EXPECT_EQ(A, B);
}

TEST(NestHash, LikeTermsAndConstantsFold) {
  EXPECT_EQ(keyOf("do i = 1, 2 * n + 1 + 1\n  a(i) = 0\nenddo\n"),
            keyOf("do i = 1, n + n + 2\n  a(i) = 0\nenddo\n"));
}

TEST(NestHash, CommutativeMinMaxOperandsAgree) {
  EXPECT_EQ(keyOf("do i = 1, min(n, m)\n  a(i) = 0\nenddo\n"),
            keyOf("do i = 1, min(m, n)\n  a(i) = 0\nenddo\n"));
}

TEST(NestHash, RenamedVariableInsideMinAgrees) {
  EXPECT_EQ(keyOf("do i = 1, n\n"
                  "  do j = i, min(i + 4, n)\n"
                  "    a(i, j) = 0\n"
                  "  enddo\n"
                  "enddo\n"),
            keyOf("do x = 1, n\n"
                  "  do y = x, min(n, 4 + x)\n"
                  "    a(x, y) = 0\n"
                  "  enddo\n"
                  "enddo\n"));
}

TEST(NestHash, DifferentBoundsDiffer) {
  EXPECT_NE(keyOf("do i = 1, n\n  a(i) = 0\nenddo\n"),
            keyOf("do i = 2, n\n  a(i) = 0\nenddo\n"));
  EXPECT_NE(keyOf("do i = 1, n\n  a(i) = 0\nenddo\n"),
            keyOf("do i = 1, n, 2\n  a(i) = 0\nenddo\n"));
}

TEST(NestHash, DifferentSubscriptsDiffer) {
  EXPECT_NE(keyOf("do i = 2, n\n  a(i) = a(i - 1)\nenddo\n"),
            keyOf("do i = 2, n\n  a(i) = a(i - 2)\nenddo\n"));
}

TEST(NestHash, LoopKindDiffers) {
  EXPECT_NE(keyOf("do i = 1, n\n  a(i) = 0\nenddo\n"),
            keyOf("pardo i = 1, n\n  a(i) = 0\nenddo\n"));
}

TEST(NestHash, ParameterVersusIndexVariableDiffer) {
  // In A the subscript uses the inner index; in B a same-named free
  // parameter. Renaming must track binding structure, not spelling.
  EXPECT_NE(keyOf("do i = 1, n\n"
                  "  do j = 1, n\n"
                  "    a(i, j) = a(i, j) + 1\n"
                  "  enddo\n"
                  "enddo\n"),
            keyOf("do i = 1, n\n"
                  "  do k = 1, n\n"
                  "    a(i, j) = a(i, j) + 1\n"
                  "  enddo\n"
                  "enddo\n"));
}

TEST(NestHash, StridedRegressionNestsNeverMerge) {
  // The five pinned nests of StridedSoundnessRegressionTest: structurally
  // close (3-deep, same array, similar strides) - exactly the shapes
  // where a sloppy canonicalizer would produce a false merge, and where
  // a false merge would resurrect the soundness bug those tests pin.
  const char *Nests[] = {
      "do i = 1, n\n  do j = 1, n\n    do k = 1, n\n"
      "      a(i, j, k) = a(i, j, k)\n    enddo\n  enddo\nenddo\n",
      "do i = 1, n\n  do j = i + 1, n, 2\n    do k = 1, n\n"
      "      a(i, j, k) = a(i, j, k) + a(i - 2, j, k)\n"
      "    enddo\n  enddo\nenddo\n",
      "do i = 1, n\n  do j = 1, n\n    do k = j, n, 2\n"
      "      a(i, j, k) = a(i, j, k) + a(i, j - 2, k)\n"
      "    enddo\n  enddo\nenddo\n",
      "do i = 1, n, 2\n  do j = 1, n\n    do k = 1, n\n"
      "      a(i, j, k) = a(i, j, k)\n    enddo\n  enddo\nenddo\n",
      "do i = m, n\n  do j = 1, n\n    do k = j, n, 2\n"
      "      a(i, j, k) = a(i, j, k) + a(i, j - 2, k)\n"
      "    enddo\n  enddo\nenddo\n",
  };
  constexpr size_t N = sizeof(Nests) / sizeof(Nests[0]);
  std::string Keys[N];
  for (size_t I = 0; I < N; ++I)
    Keys[I] = keyOf(Nests[I]);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I + 1; J < N; ++J)
      EXPECT_NE(Keys[I], Keys[J]) << "nests " << I << " and " << J;
  // And each one is stable under alpha-renaming of its index variables.
  std::string Renamed = keyOf(
      "do x1 = 1, n\n  do x2 = x1 + 1, n, 2\n    do x3 = 1, n\n"
      "      a(x1, x2, x3) = a(x1, x2, x3) + a(x1 - 2, x2, x3)\n"
      "    enddo\n  enddo\nenddo\n");
  EXPECT_EQ(Keys[1], Renamed);
}

TEST(NestHash, StructuralHashIsStableAndKeyDerived) {
  std::string Src = "do i = 1, n\n  do j = 1, i\n    a(i, j) = a(i, j) + 1\n"
                    "  enddo\nenddo\n";
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  ASSERT_TRUE(static_cast<bool>(N));
  EXPECT_EQ(structuralNestHash(*N), structuralNestHash(*N));
  ErrorOr<LoopNest> R = parseLoopNest(
      "do p = 1, n\n  do q = 1, p\n    a(p, q) = a(p, q) + 1\n"
      "  enddo\nenddo\n");
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(structuralNestHash(*N), structuralNestHash(*R));
}

TEST(NestHash, CanonicalExprKeyMergesCommutativeProducts) {
  ErrorOr<LoopNest> A = parseLoopNest("do i = 1, n * m\n  a(i) = 0\nenddo\n");
  ErrorOr<LoopNest> B = parseLoopNest("do i = 1, m * n\n  a(i) = 0\nenddo\n");
  ASSERT_TRUE(static_cast<bool>(A));
  ASSERT_TRUE(static_cast<bool>(B));
  EXPECT_EQ(canonicalNestKey(*A), canonicalNestKey(*B));
}
