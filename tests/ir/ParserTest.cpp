//===- tests/ir/ParserTest.cpp ---------------------------------------------===//

#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

TEST(Parser, SimpleNestRoundTrips) {
  const char *Src = "do i = 1, n\n"
                    "  do j = 1, n\n"
                    "    a(i, j) = i + j\n"
                    "  enddo\n"
                    "enddo\n";
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  EXPECT_EQ(N->str(), Src);
  EXPECT_EQ(N->numLoops(), 2u);
  EXPECT_EQ(N->BodyIndexVars, (std::vector<std::string>{"i", "j"}));
  EXPECT_TRUE(N->ArrayNames.count("a"));
}

TEST(Parser, StepAndParDo) {
  const char *Src = "pardo i = 1, n, 2\n"
                    "  a(i) = i\n"
                    "enddo\n";
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  EXPECT_EQ(N->Loops[0].Kind, LoopKind::ParDo);
  EXPECT_EQ(N->Loops[0].Step->str(), "2");
  EXPECT_EQ(N->str(), Src);
}

TEST(Parser, PlusAssignDesugars) {
  ErrorOr<LoopNest> N = parseLoopNest("do i = 1, n\n"
                                      "  a(i) += b(i)\n"
                                      "enddo\n");
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  EXPECT_EQ(N->Body[0].str(), "a(i) = a(i) + b(i)");
}

TEST(Parser, ArraysHeaderRegistersReadOnlyArrays) {
  ErrorOr<LoopNest> N = parseLoopNest("arrays b, c\n"
                                      "do i = 1, n\n"
                                      "  a(i) = b(i) + c(i) + f(i)\n"
                                      "enddo\n");
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  EXPECT_TRUE(N->ArrayNames.count("b"));
  EXPECT_TRUE(N->ArrayNames.count("c"));
  EXPECT_FALSE(N->ArrayNames.count("f")); // opaque call stays opaque
  std::vector<ArrayRef> Reads;
  N->collectReads(Reads);
  EXPECT_EQ(Reads.size(), 2u);
}

TEST(Parser, ExpressionGrammar) {
  ErrorOr<ExprRef> E = parseExpr("-i + 2*(j - 1) / 4 - mod(k, 2)");
  ASSERT_TRUE(static_cast<bool>(E)) << E.message();
  EXPECT_EQ((*E)->str(), "-i + 2*(j - 1) / 4 - mod(k, 2)");
  ErrorOr<ExprRef> M = parseExpr("min(n, i + 512, 2)");
  ASSERT_TRUE(static_cast<bool>(M));
  EXPECT_EQ((*M)->str(), "min(n, i + 512, 2)");
}

TEST(Parser, CommentsAndBlankLines) {
  ErrorOr<LoopNest> N = parseLoopNest("! stencil kernel\n"
                                      "do i = 1, n  ! outer\n"
                                      "\n"
                                      "  a(i) = i   ! body\n"
                                      "enddo\n");
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
}

TEST(Parser, ErrorsCarryPositions) {
  ErrorOr<LoopNest> N = parseLoopNest("do i = 1\n  a(i) = 1\nenddo\n");
  ASSERT_FALSE(static_cast<bool>(N));
  EXPECT_NE(N.message().find("line 1"), std::string::npos) << N.message();

  ErrorOr<LoopNest> N2 = parseLoopNest("do i = 1, n\n  a(i) = 1\n");
  ASSERT_FALSE(static_cast<bool>(N2));
  EXPECT_NE(N2.message().find("enddo"), std::string::npos) << N2.message();

  ErrorOr<LoopNest> N3 = parseLoopNest("do i = 1, n\nenddo\n");
  ASSERT_FALSE(static_cast<bool>(N3)); // empty body
}

TEST(Parser, RejectsImperfectNests) {
  // A statement before an inner loop makes the nest imperfect; the
  // grammar itself forbids it (statement then 'do' is a parse error).
  ErrorOr<LoopNest> N = parseLoopNest("do i = 1, n\n"
                                      "  a(i) = 0\n"
                                      "  do j = 1, n\n"
                                      "    a(j) = 1\n"
                                      "  enddo\n"
                                      "enddo\n");
  EXPECT_FALSE(static_cast<bool>(N));
}

TEST(Parser, RejectsDuplicateIndexVariables) {
  ErrorOr<LoopNest> N = parseLoopNest("do i = 1, n\n"
                                      "  do i = 1, n\n"
                                      "    a(i) = 1\n"
                                      "  enddo\n"
                                      "enddo\n");
  ASSERT_FALSE(static_cast<bool>(N));
  EXPECT_NE(N.message().find("bound twice"), std::string::npos);
}

TEST(Parser, RejectsForwardBoundReferences) {
  ErrorOr<LoopNest> N = parseLoopNest("do i = 1, j\n"
                                      "  do j = 1, n\n"
                                      "    a(i, j) = 1\n"
                                      "  enddo\n"
                                      "enddo\n");
  ASSERT_FALSE(static_cast<bool>(N));
  EXPECT_NE(N.message().find("non-outer"), std::string::npos);
}

TEST(Parser, MultiStatementBody) {
  ErrorOr<LoopNest> N = parseLoopNest("do i = 2, n\n"
                                      "  a(i) = b(i - 1)\n"
                                      "  b(i) = a(i) + 1\n"
                                      "enddo\n");
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  EXPECT_EQ(N->Body.size(), 2u);
}

} // namespace
