//===- tests/ir/RoundTripTest.cpp ------------------------------------------===//
//
// Print/parse round-trip properties: a printed source nest re-parses to
// the same rendering, and transformed nests that create no init
// statements (ReversePermute / Block / Interleave / StripMine outputs)
// stay inside the loop language - parse back and still verify.
//
//===----------------------------------------------------------------------===//

#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

const char *Sources[] = {
    "do i = 1, n\n  a(i) = i\nenddo\n",
    "do i = 2, n - 1\n  do j = 2, n - 1\n"
    "    a(i, j) = (a(i - 1, j) + a(i, j + 1)) / 2\n  enddo\nenddo\n",
    "do i = 1, n\n  do j = i, n, 2\n    a(i, j) = a(i, j) + mod(i, 3)\n"
    "  enddo\nenddo\n",
    "arrays b\ndo i = max(2, m), min(n, 100)\n"
    "  a(i) = b(i) + sqrt(i)\nenddo\n",
    "pardo i = 1, n\n  do j = 1, 4\n    a(i, j) = i*j\n  enddo\nenddo\n",
};

TEST(RoundTrip, PrintedSourceReparsesToSameText) {
  for (const char *Src : Sources) {
    ErrorOr<LoopNest> N1 = parseLoopNest(Src);
    ASSERT_TRUE(static_cast<bool>(N1)) << Src << "\n" << N1.message();
    std::string P1 = N1->str();
    // Re-parse needs the arrays header when reads-only arrays exist; the
    // printer does not emit it, so register them explicitly.
    std::string Hdr;
    for (const std::string &A : N1->ArrayNames)
      Hdr += (Hdr.empty() ? "arrays " : ", ") + A;
    ErrorOr<LoopNest> N2 = parseLoopNest(Hdr + "\n" + P1);
    ASSERT_TRUE(static_cast<bool>(N2)) << P1 << "\n" << N2.message();
    EXPECT_EQ(N2->str(), P1);
  }
}

TEST(RoundTrip, InitFreeTransformedNestsReparseAndVerify) {
  ErrorOr<LoopNest> NestOr = parseLoopNest(
      "do i = 1, n\n  do j = 1, n\n    a(i, j) = a(i, j) + i\n"
      "  enddo\nenddo\n");
  ASSERT_TRUE(static_cast<bool>(NestOr));
  const LoopNest &Nest = *NestOr;

  std::vector<TransformSequence> Seqs = {
      TransformSequence::of({makeInterchange(2, 0, 1)}),
      TransformSequence::of({makeReversePermute(2, {true, true}, {1, 0})}),
      TransformSequence::of(
          {makeBlock(2, 1, 2, {Expr::intConst(3), Expr::intConst(4)})}),
      TransformSequence::of(
          {makeInterleave(2, 1, 2, {Expr::intConst(2), Expr::intConst(2)})}),
      TransformSequence::of({makeStripMine(2, 2, Expr::intConst(5))}),
      TransformSequence::of(
          {makeBlock(2, 1, 2, {Expr::intConst(4), Expr::intConst(4)}),
           makeParallelize(4, {true, true, false, false})}),
  };
  for (const TransformSequence &Seq : Seqs) {
    ErrorOr<LoopNest> Out = applySequence(Seq, Nest);
    ASSERT_TRUE(static_cast<bool>(Out)) << Seq.str() << Out.message();
    ASSERT_TRUE(Out->Inits.empty()) << Seq.str();
    // The printed transformed nest is valid loop-language source...
    ErrorOr<LoopNest> Reparsed = parseLoopNest(Out->str());
    ASSERT_TRUE(static_cast<bool>(Reparsed))
        << Seq.str() << "\n"
        << Out->str() << "\n"
        << Reparsed.message();
    EXPECT_EQ(Reparsed->str(), Out->str());
    // ...and the reparsed nest still executes equivalently. The parser
    // seals every nest as a source (instance identity = its own loop
    // variables); restore the original body identity for comparison.
    Reparsed->BodyIndexVars = Nest.BodyIndexVars;
    EvalConfig C;
    C.Params["n"] = 7;
    VerifyResult V = verifyTransformed(Nest, *Reparsed, C);
    EXPECT_TRUE(V.Ok) << Seq.str() << ": " << V.Problem;
  }
}

TEST(RoundTrip, ExpressionPrintParseFixpoint) {
  const char *Exprs[] = {
      "i + 2*j - 1",
      "(i + 1) / 2",
      "mod(i - j, 4)",
      "min(n - 1, jj - 2)",
      "max(2, jj - n + 1)",
      "colstr(j + 1) - 1",
      "-i + 1",
      "2*n - 2",
      "a / (b / c)",
  };
  for (const char *S : Exprs) {
    ErrorOr<ExprRef> E1 = parseExpr(S);
    ASSERT_TRUE(static_cast<bool>(E1)) << S;
    std::string P1 = (*E1)->str();
    ErrorOr<ExprRef> E2 = parseExpr(P1);
    ASSERT_TRUE(static_cast<bool>(E2)) << P1;
    EXPECT_EQ((*E2)->str(), P1) << "not a fixpoint: " << S;
    EXPECT_TRUE((*E1)->equals(**E2)) << S;
  }
}

} // namespace
