//===- tests/legality/IncrementalEquivalenceTest.cpp ----------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-identity property behind the prefix-memoized engine: over a
/// generated fuzz corpus, the incremental walk (cold cache, warm cache,
/// and cache disabled) must produce verdicts identical on every
/// observable field - Legal, RejectKind, rendered Reason, Diag
/// provenance, final mapped set - to IncrementalEngine::reference(), the
/// legacy whole-sequence walk kept verbatim. Both legality modes are
/// held to the property, the five strided-soundness regression nests are
/// pinned explicitly, an overflow corpus exercises the
/// saturation-is-uncacheable rule, and witness certificates are checked
/// for cold/warm stability (certify routes through the shimmed
/// isLegal()).
///
//===----------------------------------------------------------------------===//

#include "dependence/DepAnalysis.h"
#include "driver/Script.h"
#include "fuzz/NestGen.h"
#include "fuzz/Rng.h"
#include "fuzz/ScriptGen.h"
#include "ir/Parser.h"
#include "legality/IncrementalEngine.h"
#include "support/MathUtils.h"
#include "witness/Witness.h"

#include <gtest/gtest.h>

using namespace irlt;
using legality::IncrementalEngine;
using legality::Mode;

namespace {

void expectSameVerdict(const LegalityResult &Got, const LegalityResult &Want,
                       const std::string &What) {
  EXPECT_EQ(Got.Legal, Want.Legal) << What;
  EXPECT_EQ(Got.Kind, Want.Kind) << What;
  EXPECT_EQ(Got.Reason, Want.Reason) << What;
  EXPECT_EQ(Got.Why.str(), Want.Why.str()) << What;
  EXPECT_EQ(Got.FinalDeps.str(), Want.FinalDeps.str()) << What;
}

/// Holds one (nest, script) pair to the identity in both modes and all
/// three cache configurations. \p Shared accumulates a warm cache across
/// the whole corpus - deliberately, so late cases exercise hits on
/// prefixes earlier cases inserted.
void checkCase(const std::string &NestSrc, const std::string &Script,
               IncrementalEngine &Shared, const std::string &What) {
  ErrorOr<LoopNest> NestOr = parseLoopNest(NestSrc);
  ASSERT_TRUE(static_cast<bool>(NestOr)) << What << ": " << NestOr.message();
  LoopNest Nest = NestOr.take();
  DepSet D;
  {
    // Same discipline as the fuzz oracles: overflow-mode nests can
    // saturate the analysis; the guard turns that into saturating
    // arithmetic, and the property below is relative, so a saturated set
    // is still a valid (identical) input to both walks.
    OverflowGuard G;
    D = analyzeDependences(Nest);
  }

  ErrorOr<TransformSequence> SeqOr =
      parseTransformScript(Script, Nest.numLoops());
  if (!SeqOr)
    return; // overflow-mode scripts can be unparseable; not this property
  TransformSequence Seq = SeqOr.take();

  legality::EngineOptions NoCacheOpts;
  NoCacheOpts.EnableCache = false;
  for (Mode M : {Mode::Full, Mode::Fast}) {
    const std::string Tag =
        What + (M == Mode::Full ? " [full]" : " [fast]") + "\nnest:\n" +
        NestSrc + "script:\n" + Script;
    LegalityResult Ref = IncrementalEngine::reference(Seq, Nest, D, M);

    IncrementalEngine NoCache(NoCacheOpts);
    expectSameVerdict(NoCache.check(Seq, Nest, D, M), Ref,
                      "cache disabled: " + Tag);
    expectSameVerdict(Shared.check(Seq, Nest, D, M), Ref, "cold: " + Tag);
    expectSameVerdict(Shared.check(Seq, Nest, D, M), Ref, "warm: " + Tag);
  }
}

TEST(IncrementalEquivalence, FuzzCorpusVerdictsAreByteIdentical) {
  IncrementalEngine Shared;
  fuzz::NestGenOptions NO;
  fuzz::ScriptGenOptions SO;
  const unsigned Cases = 2000;
  for (unsigned I = 0; I < Cases; ++I) {
    fuzz::Rng R(fuzz::mix64(0xA11CEull ^ I));
    fuzz::NestSpec NS = fuzz::generateNest(R, NO);
    fuzz::GeneratedScript GS = fuzz::generateScript(R, NS.depth(), SO);
    checkCase(NS.render(), fuzz::joinScript(GS.Lines), Shared,
              "fuzz case " + std::to_string(I));
    if (HasFatalFailure())
      return;
  }
  // The corpus repeats nest shapes, so the shared engine must have seen
  // real reuse - otherwise the property ran against a cache that never
  // engaged.
  EXPECT_GT(Shared.stats().Hits, 0u);
}

TEST(IncrementalEquivalence, OverflowCorpusIsIdenticalAndUncacheable) {
  IncrementalEngine Shared;
  fuzz::NestGenOptions NO;
  NO.OverflowMode = true;
  fuzz::ScriptGenOptions SO;
  SO.OverflowMode = true;
  const unsigned Cases = 200;
  for (unsigned I = 0; I < Cases; ++I) {
    fuzz::Rng R(fuzz::mix64(0x0F10Dull ^ I));
    fuzz::NestSpec NS = fuzz::generateNest(R, NO);
    fuzz::GeneratedScript GS = fuzz::generateScript(R, NS.depth(), SO);
    checkCase(NS.render(), fuzz::joinScript(GS.Lines), Shared,
              "overflow case " + std::to_string(I));
    if (HasFatalFailure())
      return;
  }
  // Huge coefficients must have saturated somewhere, and every saturated
  // stage bypassed insertion (the PR 4 fingerprint rule).
  EXPECT_GT(Shared.stats().Uncacheable, 0u);
}

/// The five strided-soundness regression pairs (tests/integration/
/// StridedSoundnessRegressionTest.cpp) - the nests whose legality the
/// machinery historically got wrong, pinned here against the incremental
/// walk too.
TEST(IncrementalEquivalence, StridedSoundnessNestsMatch) {
  IncrementalEngine Shared;
  checkCase("do i = 1, n\n  do j = 1, n\n    do k = 1, n\n"
            "      a(i, j, k) = a(i, j, k)\n    enddo\n  enddo\nenddo\n",
            "block 1 3 2 2 2\n"
            "unimodular 1 0 0 0 0 0 / 0 1 0 0 0 0 / 0 0 1 0 0 0 / "
            "0 0 1 0 0 1 / 0 0 0 0 1 0 / 0 0 0 1 0 0\n"
            "unimodular 1 0 0 0 0 0 / 0 1 0 0 0 0 / 0 0 1 0 0 0 / "
            "0 0 0 1 0 0 / 0 0 0 1 1 0 / 0 0 0 0 0 1\n",
            Shared, "strided 1 (block+unimodular chain)");
  checkCase("do i = 1, n\n  do j = i + 1, n, 2\n    do k = 1, n\n"
            "      a(i, j, k) = a(i, j, k) + a(i - 2, j, k)\n"
            "    enddo\n  enddo\nenddo\n",
            "unimodular 0 0 -1 / 0 1 0 / 1 0 0\n", Shared,
            "strided 2 (strided lower bound permute)");
  checkCase("do i = 1, n\n  do j = 1, n\n    do k = j, n, 2\n"
            "      a(i, j, k) = a(i, j, k) + a(i, j - 2, k)\n"
            "    enddo\n  enddo\nenddo\n",
            "stripmine 1 3\n"
            "unimodular 0 0 0 1 / 0 0 1 0 / 0 1 0 0 / 1 0 0 0\n", Shared,
            "strided 3 (stripmine+reversal on strided start)");
  checkCase("do i = 1, n, 2\n  do j = 1, n\n    do k = 1, n\n"
            "      a(i, j, k) = a(i, j, k)\n    enddo\n  enddo\nenddo\n",
            "skew 3 1 -1\n"
            "unimodular 1 -1 0 / 0 1 0 / 0 0 1\n", Shared,
            "strided 4 (fast-path skew chain)");
  checkCase("do i = m, n\n  do j = 1, n\n    do k = j, n, 2\n"
            "      a(i, j, k) = a(i, j, k) + a(i, j - 2, k)\n"
            "    enddo\n  enddo\nenddo\n",
            "unimodular 0 0 -1 / 0 1 0 / 1 0 0\n", Shared,
            "strided 5 (search regression nest)");
}

TEST(IncrementalEquivalence, WitnessCertificatesAreStableColdAndWarm) {
  // certify() routes through the shimmed isLegal(), i.e. through the
  // process-global engine - so the second certification runs against a
  // warm prefix cache. The rendered certificate must not change, and the
  // third-party checker must accept both.
  struct Case {
    const char *Nest;
    const char *Script;
  } Cases[] = {
      {"do i = 1, n\n  do j = 1, n\n    a(i, j) = a(i - 1, j) + a(i, j - 1)\n"
       "  enddo\nenddo\n",
       "interchange 1 2\n"},
      {"do i = 1, n\n  do j = 1, n\n    a(i, j) = a(i - 1, j + 1)\n"
       "  enddo\nenddo\n",
       "interchange 1 2\n"},
      {"do i = 1, n\n  do j = i, n\n    a(i, j) = 1\n  enddo\nenddo\n",
       "coalesce 1 2\n"},
  };
  for (const Case &C : Cases) {
    ErrorOr<LoopNest> NestOr = parseLoopNest(C.Nest);
    ASSERT_TRUE(static_cast<bool>(NestOr)) << NestOr.message();
    LoopNest Nest = NestOr.take();
    DepSet D = analyzeDependences(Nest);
    ErrorOr<TransformSequence> SeqOr =
        parseTransformScript(C.Script, Nest.numLoops());
    ASSERT_TRUE(static_cast<bool>(SeqOr)) << SeqOr.message();
    TransformSequence Seq = SeqOr.take();

    witness::Certificate Cold = witness::certify(Seq, Nest, D);
    witness::Certificate Warm = witness::certify(Seq, Nest, D);
    EXPECT_EQ(Cold.str(), Warm.str()) << C.Script;
    EXPECT_EQ(Cold.Accepted,
              IncrementalEngine::reference(Seq, Nest, D, Mode::Full).Legal)
        << C.Script;
    EXPECT_EQ(witness::checkCertificate(Cold, Seq, Nest, D), "") << C.Script;
    EXPECT_EQ(witness::checkCertificate(Warm, Seq, Nest, D), "") << C.Script;
  }
}

} // namespace
