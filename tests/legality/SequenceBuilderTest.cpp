//===- tests/legality/SequenceBuilderTest.cpp -----------------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the sequence-extension API (legality/IncrementalEngine.h):
/// extend() verdicts and witness provenance, sticky failure, prefix
/// forking, cache counter reconciliation, the saturation-is-uncacheable
/// rule, and eviction transparency. Every verdict is held against
/// IncrementalEngine::reference() - the legacy whole-sequence walk kept
/// verbatim - on all comparable fields.
///
//===----------------------------------------------------------------------===//

#include "api/Pipeline.h"
#include "dependence/DepAnalysis.h"
#include "ir/Parser.h"
#include "legality/IncrementalEngine.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;
using legality::IncrementalEngine;
using legality::Mode;
using legality::SequenceBuilder;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

/// Byte-level verdict equality on every surface a caller can observe.
void expectSameVerdict(const LegalityResult &Got, const LegalityResult &Want,
                       const std::string &What) {
  EXPECT_EQ(Got.Legal, Want.Legal) << What;
  EXPECT_EQ(Got.Kind, Want.Kind) << What;
  EXPECT_EQ(Got.Reason, Want.Reason) << What;
  EXPECT_EQ(Got.Why.str(), Want.Why.str()) << What;
  EXPECT_EQ(Got.FinalDeps.str(), Want.FinalDeps.str()) << What;
}

TEST(SequenceBuilder, ExtendLegalStepAndFinish) {
  LoopNest N = parse("do i = 1, n\n  do j = 1, n\n"
                     "    a(i, j) = a(i - 1, j) + a(i, j - 1)\n"
                     "  enddo\nenddo\n");
  DepSet D = analyzeDependences(N);
  IncrementalEngine Eng;

  SequenceBuilder B = Eng.open(N, D);
  EXPECT_EQ(B.length(), 0u);
  EXPECT_EQ(B.outputLoops(), 2u);
  EXPECT_EQ(B.deps().str(), D.str());

  ASSERT_TRUE(B.extend(makeInterchange(2, 0, 1)));
  EXPECT_FALSE(B.hasFailed());
  EXPECT_EQ(B.length(), 1u);
  EXPECT_EQ(B.outputLoops(), 2u);

  TransformSequence S = TransformSequence::of({makeInterchange(2, 0, 1)});
  expectSameVerdict(B.finish(), IncrementalEngine::reference(S, N, D,
                                                             Mode::Full),
                    "interchange finish");
  EXPECT_TRUE(B.finish().Legal);
}

TEST(SequenceBuilder, FinishRejectsLexNegativeFinalSet) {
  // Dep (1, -1): legal as-is, lex-negative after interchange. The stage
  // itself survives (intermediate sets need not be non-negative); only
  // finish() rejects.
  LoopNest N = parse("do i = 1, n\n  do j = 1, n\n"
                     "    a(i, j) = a(i - 1, j + 1)\n"
                     "  enddo\nenddo\n");
  DepSet D = analyzeDependences(N);
  IncrementalEngine Eng;

  SequenceBuilder B = Eng.open(N, D);
  ASSERT_TRUE(B.extend(makeInterchange(2, 0, 1)));
  LegalityResult R = B.finish();
  EXPECT_FALSE(R.Legal);
  EXPECT_EQ(R.Kind, LegalityResult::RejectKind::LexNegative);

  TransformSequence S = TransformSequence::of({makeInterchange(2, 0, 1)});
  expectSameVerdict(R, IncrementalEngine::reference(S, N, D, Mode::Full),
                    "lex-negative finish");
}

TEST(SequenceBuilder, StageRejectionCarriesProvenanceAndIsSticky) {
  // Coalesce of a triangular band violates its bounds precondition at
  // stage 1 (same case as Sequence.IsLegalReportsPreconditionStage).
  LoopNest N = parse("do i = 1, n\n  do j = i, n\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  IncrementalEngine Eng;

  SequenceBuilder B = Eng.open(N, DepSet());
  EXPECT_FALSE(B.extend(makeCoalesce(2, 1, 2)));
  ASSERT_TRUE(B.hasFailed());
  EXPECT_EQ(B.failure().Kind, LegalityResult::RejectKind::BoundsPrecondition);
  EXPECT_NE(B.failure().Reason.find("stage 1"), std::string::npos)
      << B.failure().Reason;

  TransformSequence S = TransformSequence::of({makeCoalesce(2, 1, 2)});
  expectSameVerdict(B.failure(),
                    IncrementalEngine::reference(S, N, DepSet(), Mode::Full),
                    "coalesce stage rejection");

  // Sticky: further extension refuses, finish() returns the rejection.
  LegalityResult First = B.failure();
  EXPECT_FALSE(B.extend(makeInterchange(2, 0, 1)));
  expectSameVerdict(B.failure(), First, "failure is sticky");
  expectSameVerdict(B.finish(), First, "finish returns the stage failure");
}

TEST(SequenceBuilder, FailedBuilderRefusesEveryExtension) {
  LegalityResult V;
  V.reject(LegalityResult::RejectKind::Overflow,
           Diag::error("dependence analysis overflowed"));
  SequenceBuilder B = SequenceBuilder::failed(V);
  EXPECT_TRUE(B.hasFailed());
  EXPECT_FALSE(B.extend(makeInterchange(2, 0, 1)));
  expectSameVerdict(B.finish(), V, "pre-failed builder");
}

TEST(SequenceBuilder, CopyForksThePrefix) {
  LoopNest N = parse("do i = 1, n\n  do j = 1, n\n"
                     "    a(i, j) = a(i - 1, j)\n  enddo\nenddo\n");
  DepSet D = analyzeDependences(N);
  IncrementalEngine Eng;

  SequenceBuilder A = Eng.open(N, D);
  ASSERT_TRUE(A.extend(makeInterchange(2, 0, 1)));
  SequenceBuilder B = A; // fork: the search's expansion pattern
  ASSERT_TRUE(B.extend(makeInterchange(2, 0, 1)));
  EXPECT_EQ(A.length(), 1u);
  EXPECT_EQ(B.length(), 2u);
  // The fork diverged; the original's mapped set is untouched.
  EXPECT_EQ(B.deps().str(), D.str()); // two interchanges = identity
  EXPECT_NE(A.deps().str(), D.str());
}

TEST(SequenceBuilder, CacheCountersReconcileAndHitsAreByteIdentical) {
  LoopNest N = parse("do i = 1, n\n  do j = 1, n\n"
                     "    a(i, j) = a(i - 1, j) + a(i, j - 1)\n"
                     "  enddo\nenddo\n");
  DepSet D = analyzeDependences(N);
  TransformSequence S = TransformSequence::of(
      {makeInterchange(2, 0, 1), makeUnimodular(2, UnimodularMatrix::skew(
                                                       2, 0, 1, 1))});
  IncrementalEngine Eng;

  LegalityResult Cold = Eng.check(S, N, D, Mode::Full);
  IncrementalEngine::Stats St = Eng.stats();
  EXPECT_EQ(St.Hits, 0u);
  EXPECT_EQ(St.Misses, 2u);
  EXPECT_EQ(St.Inserts, 2u);
  EXPECT_EQ(St.Entries, St.Inserts - St.Evictions);

  LegalityResult Warm = Eng.check(S, N, D, Mode::Full);
  St = Eng.stats();
  EXPECT_EQ(St.Hits, 2u);
  EXPECT_EQ(St.Misses, 2u);
  expectSameVerdict(Warm, Cold, "warm whole-sequence check");
  expectSameVerdict(Warm, IncrementalEngine::reference(S, N, D, Mode::Full),
                    "warm check vs reference");
}

TEST(SequenceBuilder, CachedStageRejectionIsByteIdentical) {
  LoopNest N = parse("do i = 1, n\n  do j = i, n\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  TransformSequence S = TransformSequence::of({makeCoalesce(2, 1, 2)});
  IncrementalEngine Eng;

  LegalityResult Cold = Eng.check(S, N, DepSet(), Mode::Full);
  LegalityResult Warm = Eng.check(S, N, DepSet(), Mode::Full);
  EXPECT_GE(Eng.stats().Hits, 1u) << "the rejection itself must be cached";
  expectSameVerdict(Warm, Cold, "cached stage rejection");
}

TEST(SequenceBuilder, SaturatedStagesAreNeverCached) {
  // Two skews of 2^32 each: mapping the (1, 0) dependence through both
  // multiplies the factors, which saturates int64 (2^64), so the chain
  // rejects with Overflow through saturating arithmetic - a verdict that
  // must be recomputed every time, mirroring the Pipeline's fingerprint
  // rule.
  LoopNest N = parse("do i = 1, n\n  do j = 1, n\n"
                     "    a(i, j) = a(i - 1, j)\n  enddo\nenddo\n");
  DepSet D = analyzeDependences(N);
  const int64_t F = int64_t(1) << 32;
  TransformSequence S = TransformSequence::of(
      {makeUnimodular(2, UnimodularMatrix::skew(2, 0, 1, F)),
       makeUnimodular(2, UnimodularMatrix::skew(2, 1, 0, F))});

  LegalityResult Ref = IncrementalEngine::reference(S, N, D, Mode::Full);
  ASSERT_FALSE(Ref.Legal);
  ASSERT_EQ(Ref.Kind, LegalityResult::RejectKind::Overflow) << Ref.Reason;

  IncrementalEngine Eng;
  LegalityResult Cold = Eng.check(S, N, D, Mode::Full);
  LegalityResult Warm = Eng.check(S, N, D, Mode::Full);
  expectSameVerdict(Cold, Ref, "cold saturated chain");
  expectSameVerdict(Warm, Ref, "warm saturated chain");
  // The saturated stage was computed twice and inserted neither time.
  EXPECT_EQ(Eng.stats().Uncacheable, 2u);
}

TEST(SequenceBuilder, EvictionIsTransparent) {
  LoopNest N = parse("do i = 1, n\n  do j = 1, n\n"
                     "    a(i, j) = a(i - 1, j) + a(i, j - 1)\n"
                     "  enddo\nenddo\n");
  DepSet D = analyzeDependences(N);
  // Three distinct prefixes against a two-entry cache: something must be
  // evicted, and nothing observable may change.
  TransformSequence S = TransformSequence::of(
      {makeInterchange(2, 0, 1),
       makeUnimodular(2, UnimodularMatrix::skew(2, 0, 1, 1)),
       makeInterchange(2, 0, 1)});
  legality::EngineOptions O;
  O.CacheCapacity = 2;
  IncrementalEngine Eng(O);

  LegalityResult First = Eng.check(S, N, D, Mode::Full);
  LegalityResult Second = Eng.check(S, N, D, Mode::Full);
  IncrementalEngine::Stats St = Eng.stats();
  EXPECT_GT(St.Evictions, 0u);
  EXPECT_EQ(St.Entries, St.Inserts - St.Evictions);
  expectSameVerdict(First, IncrementalEngine::reference(S, N, D, Mode::Full),
                    "bounded-cache first run");
  expectSameVerdict(Second, First, "bounded-cache second run");
}

TEST(SequenceBuilder, FastModeMaterializesCustomStages) {
  // StripMine has no type rule, so Fast mode materializes the concrete
  // nest lazily - the path with the trickiest stage attribution.
  LoopNest N = parse("do i = 1, n\n  do j = 1, n\n"
                     "    a(i, j) = a(i - 1, j)\n  enddo\nenddo\n");
  DepSet D = analyzeDependences(N);
  TransformSequence S = TransformSequence::of(
      {makeInterchange(2, 0, 1), makeStripMine(2, 1, Expr::intConst(2)),
       makeInterchange(3, 1, 2)});
  IncrementalEngine Eng;

  LegalityResult Ref = IncrementalEngine::reference(S, N, D, Mode::Fast);
  expectSameVerdict(Eng.check(S, N, D, Mode::Fast), Ref, "fast cold");
  expectSameVerdict(Eng.check(S, N, D, Mode::Fast), Ref, "fast warm");
  // Fast and Full agree here end to end (not true in general; true for
  // this sequence).
  expectSameVerdict(Eng.check(S, N, D, Mode::Full),
                    IncrementalEngine::reference(S, N, D, Mode::Full),
                    "full mode on the same chain");
}

TEST(SequenceBuilder, PipelineOpenSequenceMatchesCheckLegality) {
  api::Pipeline P;
  ErrorOr<LoopNest> N = P.loadNest("do i = 1, n\n  do j = 1, n\n"
                                   "    a(i, j) = a(i - 1, j + 1)\n"
                                   "  enddo\nenddo\n");
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  TransformSequence S = TransformSequence::of({makeInterchange(2, 0, 1)});

  SequenceBuilder B = P.openSequence(*N);
  for (const TemplateRef &Step : S.steps())
    if (!B.extend(Step))
      break;
  LegalityResult Inc = B.hasFailed() ? B.failure() : B.finish();
  expectSameVerdict(Inc, P.checkLegality(S, *N), "openSequence vs Pipeline");
}

} // namespace
