//===- tests/search/SearchTest.cpp - Search engine tests -------------------===//
//
// Acceptance-level tests for the cost-model-guided transformation search
// (docs/SEARCH.md): the locality objective must match or beat the
// hand-written blocked sequences on the paper's nests, winners must be
// legal and semantics-preserving, and the result must be byte-identical
// for any thread count.
//
//===----------------------------------------------------------------------===//

#include "dependence/DepAnalysis.h"
#include "eval/Verify.h"
#include "ir/Parser.h"
#include "search/CostModel.h"
#include "search/Search.h"
#include "transform/AutoPar.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;
using namespace irlt::search;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

LoopNest matmulNest() {
  return parse("arrays B, C\n"
               "do i = 1, n\n"
               "  do j = 1, n\n"
               "    do k = 1, n\n"
               "      A(i, j) += B(i, k) * C(k, j)\n"
               "    enddo\n"
               "  enddo\n"
               "enddo\n");
}

LoopNest trapezoidNest() {
  return parse("do i = 1, n\n"
               "  do j = 1, i\n"
               "    a(i, j) = a(i, j) + 1\n"
               "  enddo\n"
               "enddo\n");
}

/// Miss ratio of \p Seq on \p Nest under the search engine's default cost
/// model (same bindings, cache, budget as the search itself).
double missOf(const LoopNest &Nest, const TransformSequence &Seq) {
  CostModel CM(Nest, CostModelOptions{});
  std::optional<double> M = CM.missRatio(Seq, Seq.reduced().str());
  EXPECT_TRUE(M.has_value());
  return M.value_or(1.0);
}

TEST(Search, MatmulLocalityMatchesHandBlockedSequence) {
  LoopNest Nest = matmulNest();
  DepSet D = analyzeDependences(Nest);

  SearchOptions Opts;
  Opts.Obj = Objective::Locality;
  SearchResult R = searchTransformations(Nest, D, Opts);
  ASSERT_TRUE(R.Error.empty()) << R.Error;
  ASSERT_TRUE(R.Best.has_value());

  // The winner is confirmed legal (the engine promises this, re-check
  // independently) and beats the untransformed nest.
  EXPECT_TRUE(isLegal(R.Best->Seq, Nest, D).Legal);
  TransformSequence Empty;
  EXPECT_LT(R.Best->MissRatio, missOf(Nest, Empty));

  // Acceptance bar: at least as good as the hand-written Figure 7 blocked
  // prefix (k-j-i permutation, all three loops blocked at 8).
  TransformSequence Hand = TransformSequence::of(
      {makeReversePermute(3, {false, false, false}, {2, 0, 1}),
       makeBlock(3, 1, 3,
                 {Expr::intConst(8), Expr::intConst(8), Expr::intConst(8)})});
  ASSERT_TRUE(isLegal(Hand, Nest, D).Legal);
  EXPECT_LE(R.Best->MissRatio, missOf(Nest, Hand));
}

TEST(Search, TrapezoidLocalityMatchesHandBlockedSequence) {
  LoopNest Nest = trapezoidNest();
  DepSet D = analyzeDependences(Nest);

  SearchOptions Opts;
  Opts.Obj = Objective::Locality;
  SearchResult R = searchTransformations(Nest, D, Opts);
  ASSERT_TRUE(R.Error.empty()) << R.Error;
  ASSERT_TRUE(R.Best.has_value());
  EXPECT_TRUE(isLegal(R.Best->Seq, Nest, D).Legal);

  // The C2 bench's hand-blocked trapezoid: Block both loops at 8.
  TransformSequence Hand = TransformSequence::of(
      {makeBlock(2, 1, 2, {Expr::intConst(8), Expr::intConst(8)})});
  ASSERT_TRUE(isLegal(Hand, Nest, D).Legal);
  EXPECT_LE(R.Best->MissRatio, missOf(Nest, Hand));
}

TEST(Search, WinnerPreservesSemantics) {
  LoopNest Nest = matmulNest();
  DepSet D = analyzeDependences(Nest);
  SearchOptions Opts;
  Opts.Obj = Objective::Both;
  SearchResult R = searchTransformations(Nest, D, Opts);
  ASSERT_TRUE(R.Best.has_value());
  ErrorOr<LoopNest> Out = applySequence(R.Best->Seq, Nest);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EvalConfig C;
  C.Params["n"] = 9;
  VerifyResult V = verifyTransformed(Nest, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Search, ResultIsThreadCountInvariant) {
  LoopNest Nest = matmulNest();
  DepSet D = analyzeDependences(Nest);

  for (Objective Obj :
       {Objective::Locality, Objective::Parallelism, Objective::Both}) {
    SearchOptions A;
    A.Obj = Obj;
    A.Threads = 1;
    SearchOptions B = A;
    B.Threads = 8;
    SearchResult RA = searchTransformations(Nest, D, A);
    SearchResult RB = searchTransformations(Nest, D, B);

    ASSERT_EQ(RA.Best.has_value(), RB.Best.has_value());
    if (RA.Best) {
      EXPECT_EQ(RA.Best->Key, RB.Best->Key);
      EXPECT_EQ(RA.Best->Seq.str(), RB.Best->Seq.str());
      EXPECT_EQ(RA.Best->Cost, RB.Best->Cost);
      EXPECT_EQ(RA.Best->ParScore, RB.Best->ParScore);
    }
    ASSERT_EQ(RA.Top.size(), RB.Top.size());
    for (size_t I = 0; I < RA.Top.size(); ++I) {
      EXPECT_EQ(RA.Top[I].Key, RB.Top[I].Key);
      EXPECT_EQ(RA.Top[I].Cost, RB.Top[I].Cost);
    }
    EXPECT_EQ(RA.Stats.Enumerated, RB.Stats.Enumerated);
    EXPECT_EQ(RA.Stats.Pruned, RB.Stats.Pruned);
    EXPECT_EQ(RA.Stats.Deduped, RB.Stats.Deduped);
    EXPECT_EQ(RA.Stats.Leaves, RB.Stats.Leaves);
    EXPECT_EQ(RA.Stats.Legal, RB.Stats.Legal);
  }
}

TEST(Search, CanonicalKeysDedupePeepholeEquivalentPrefixes) {
  // Two RP steps compose into a single RP already in the step space, so
  // depth 2 must collapse many permutation chains onto visited states.
  LoopNest Nest = matmulNest();
  DepSet D = analyzeDependences(Nest);
  SearchOptions Opts;
  Opts.Obj = Objective::Locality;
  SearchResult R = searchTransformations(Nest, D, Opts);
  EXPECT_GT(R.Stats.Deduped, 0u);
  EXPECT_GT(R.Stats.Legal, 0u);
  EXPECT_LE(R.Stats.Legal, R.Stats.Leaves);
  EXPECT_LE(R.Stats.Leaves, R.Stats.Enumerated);
}

TEST(Search, ParallelismObjectiveFindsWavefrontForStencil) {
  // The Figure 1 stencil has dependences (1, 0) and (0, 1): no permutation
  // parallelizes a loop, a skew does (Lamport's hyperplane).
  LoopNest Nest = parse(
      "do i = 2, n - 1\n"
      "  do j = 2, n - 1\n"
      "    a(i, j) = (a(i - 1, j) + a(i, j - 1) + a(i + 1, j) + a(i, j + 1))"
      " / 4\n"
      "  enddo\n"
      "enddo\n");
  DepSet D = analyzeDependences(Nest);
  SearchOptions Opts;
  Opts.Obj = Objective::Parallelism;
  Opts.Depth = 1;
  SearchResult R = searchTransformations(Nest, D, Opts);
  ASSERT_TRUE(R.Best.has_value());
  EXPECT_FALSE(R.Best->ParallelLoops.empty());
  EXPECT_TRUE(isLegal(R.Best->Seq, Nest, D).Legal);
}

TEST(Search, AutoParPresetAgreesWithEngine) {
  // autoParallelize is a depth-1 preset of the engine; on matmul both
  // must parallelize i and j with the same score.
  LoopNest Nest = matmulNest();
  DepSet D = analyzeDependences(Nest);

  AutoParResult AP = autoParallelize(Nest, D);
  ASSERT_TRUE(AP.Best.has_value());

  SearchOptions Opts;
  Opts.Obj = Objective::Parallelism;
  Opts.Depth = 1;
  Opts.Candidates.TileSizes.clear();
  SearchResult R = searchTransformations(Nest, D, Opts);
  ASSERT_TRUE(R.Best.has_value());
  EXPECT_EQ(R.Best->ParallelLoops, AP.Best->ParallelLoops);
  EXPECT_EQ(R.Best->ParScore, AP.Best->Score);
  EXPECT_EQ(R.Best->Seq.str(), AP.Best->Seq.str());
}

TEST(Search, LocalityObjectiveRejectsOpaqueCallNests) {
  LoopNest Nest = parse("do i = 1, n\n  do j = colstr(i), colstr(i + 1)\n"
                        "    a(i, j) = 1\n  enddo\nenddo\n");
  DepSet D = analyzeDependences(Nest);
  SearchOptions Opts;
  Opts.Obj = Objective::Locality;
  SearchResult R = searchTransformations(Nest, D, Opts);
  EXPECT_FALSE(R.Error.empty());
  EXPECT_FALSE(R.Best.has_value());

  // The parallelism objective never executes the nest, so it still runs.
  Opts.Obj = Objective::Parallelism;
  SearchResult RPar = searchTransformations(Nest, D, Opts);
  EXPECT_TRUE(RPar.Error.empty()) << RPar.Error;
}

TEST(Search, ExplicitBindingsOverrideDefaults) {
  LoopNest Nest = matmulNest();
  DepSet D = analyzeDependences(Nest);
  SearchOptions Opts;
  Opts.Obj = Objective::Locality;
  Opts.Depth = 1;
  Opts.CostParams["n"] = 6; // tiny: everything fits in cache
  SearchResult R = searchTransformations(Nest, D, Opts);
  ASSERT_TRUE(R.Error.empty()) << R.Error;
  ASSERT_TRUE(R.Best.has_value());
  // 3 arrays x 36 elements x 8B = under 1 KiB working set in an 8 KiB
  // cache: only cold misses remain, far below the n=24 default regime.
  EXPECT_LT(R.Best->MissRatio, 0.05);
}

TEST(Search, StepCandidatesAreBoundedAndOrdered) {
  CandidateOptions Opts;
  std::vector<TemplateRef> C3 = stepCandidates(3, Opts);
  // 3! * 2^3 - 1 signed permutations, plus wavefronts, blocks, tiles.
  EXPECT_GT(C3.size(), 47u);
  // Deterministic: two calls enumerate identically.
  std::vector<TemplateRef> Again = stepCandidates(3, Opts);
  ASSERT_EQ(C3.size(), Again.size());
  for (size_t I = 0; I < C3.size(); ++I)
    EXPECT_EQ(C3[I]->str(), Again[I]->str());

  // Deep nests degrade to pairwise interchanges + single reversals.
  std::vector<TemplateRef> C6 = stepCandidates(6, Opts);
  for (const TemplateRef &T : C6)
    if (T->kind() == TransformTemplate::Kind::ReversePermute) {
      // No full 6-loop signed permutation enumeration: candidate count
      // stays polynomial.
      SUCCEED();
    }
  EXPECT_LT(C6.size(), 200u);
}

} // namespace
