//===- tests/search/SearchThreadScalingTest.cpp ---------------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The search determinism contract under the per-prefix threading model:
/// the result - winner, top-k order, every score, and every stat counter
/// - is byte-identical for any thread count, including counts beyond the
/// hardware (which are clamped). Plus the thread-scaling assertion that
/// used to be inverted in BM_SearchMatmulDepth2Threads: on a machine
/// with >= 4 cores, a 4-worker depth-2 search must not be slower than
/// the 1-worker run. The timing test skips loudly on single-core
/// runners and under sanitizers, where wall-clock ratios are
/// meaningless; the byte-identity tests always run (they are part of
/// the TSan lane).
///
//===----------------------------------------------------------------------===//

#include "dependence/DepAnalysis.h"
#include "ir/Parser.h"
#include "search/Search.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace irlt;
using namespace irlt::search;

namespace {

LoopNest matmul() {
  ErrorOr<LoopNest> N = parseLoopNest("arrays B, C\n"
                                      "do i = 1, n\n"
                                      "  do j = 1, n\n"
                                      "    do k = 1, n\n"
                                      "      A(i, j) += B(i, k) * C(k, j)\n"
                                      "    enddo\n"
                                      "  enddo\n"
                                      "enddo\n");
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

SearchOptions depth2Options(unsigned Threads) {
  SearchOptions O;
  O.Obj = Objective::Both;
  O.Depth = 2;
  O.Beam = 4;
  O.Threads = Threads;
  return O;
}

void expectSameResult(const SearchResult &A, const SearchResult &B,
                      const std::string &What) {
  EXPECT_EQ(A.Error, B.Error) << What;
  EXPECT_EQ(A.Stats.Enumerated, B.Stats.Enumerated) << What;
  EXPECT_EQ(A.Stats.Pruned, B.Stats.Pruned) << What;
  EXPECT_EQ(A.Stats.Deduped, B.Stats.Deduped) << What;
  EXPECT_EQ(A.Stats.Leaves, B.Stats.Leaves) << What;
  EXPECT_EQ(A.Stats.Legal, B.Stats.Legal) << What;
  ASSERT_EQ(A.Top.size(), B.Top.size()) << What;
  for (size_t I = 0; I < A.Top.size(); ++I) {
    EXPECT_EQ(A.Top[I].Key, B.Top[I].Key) << What << " rank " << I;
    EXPECT_EQ(A.Top[I].Cost, B.Top[I].Cost) << What << " rank " << I;
    EXPECT_EQ(A.Top[I].MissRatio, B.Top[I].MissRatio) << What << " rank " << I;
    EXPECT_EQ(A.Top[I].ParScore, B.Top[I].ParScore) << What << " rank " << I;
    EXPECT_EQ(A.Top[I].ParallelLoops, B.Top[I].ParallelLoops)
        << What << " rank " << I;
    EXPECT_EQ(A.Top[I].Seq.str(), B.Top[I].Seq.str()) << What << " rank " << I;
  }
  ASSERT_EQ(A.Best.has_value(), B.Best.has_value()) << What;
  if (A.Best)
    EXPECT_EQ(A.Best->Key, B.Best->Key) << What;
}

TEST(SearchThreadScaling, ResultsAreByteIdenticalAcrossThreadCounts) {
  LoopNest N = matmul();
  DepSet D = analyzeDependences(N);
  SearchResult One = searchTransformations(N, D, depth2Options(1));
  ASSERT_TRUE(One.Error.empty()) << One.Error;
  ASSERT_FALSE(One.Top.empty());
  for (unsigned T : {2u, 4u, 7u}) {
    SearchResult Many = searchTransformations(N, D, depth2Options(T));
    expectSameResult(Many, One, "threads=" + std::to_string(T));
  }
}

TEST(SearchThreadScaling, OversubscribedThreadCountIsClampedNotSlower) {
  // 64 requested workers on any machine: the clamp keeps the pool at
  // hardware size, so this must behave (and verify) exactly like the
  // 1-thread run. Pure byte-identity - safe under sanitizers.
  LoopNest N = matmul();
  DepSet D = analyzeDependences(N);
  expectSameResult(searchTransformations(N, D, depth2Options(64)),
                   searchTransformations(N, D, depth2Options(1)),
                   "threads=64");
}

bool underSanitizer() {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

TEST(SearchThreadScaling, FourThreadsNoSlowerThanOneOnMultiCore) {
  if (std::thread::hardware_concurrency() < 4)
    GTEST_SKIP() << "SKIPPING thread-scaling wall-clock assertion: only "
                 << std::thread::hardware_concurrency()
                 << " hardware thread(s) on this runner - the 4-worker pool "
                    "is clamped to hardware size, so there is nothing to "
                    "measure. Run on a >=4-core machine to exercise this.";
  if (underSanitizer())
    GTEST_SKIP() << "SKIPPING thread-scaling wall-clock assertion under a "
                    "sanitizer: instrumentation distorts wall-clock ratios.";

  LoopNest N = matmul();
  DepSet D = analyzeDependences(N);
  auto timeIt = [&](unsigned Threads) {
    double Best = 1e300;
    for (int Rep = 0; Rep < 3; ++Rep) {
      auto T0 = std::chrono::steady_clock::now();
      SearchResult R = searchTransformations(N, D, depth2Options(Threads));
      auto T1 = std::chrono::steady_clock::now();
      EXPECT_TRUE(R.Error.empty()) << R.Error;
      Best = std::min(Best, std::chrono::duration<double>(T1 - T0).count());
    }
    return Best;
  };
  // Warm the process-global legality prefix cache once so both timed
  // configurations see the same cache state.
  (void)searchTransformations(N, D, depth2Options(1));
  double T1 = timeIt(1);
  double T4 = timeIt(4);
  // Min-of-3 on >=4 real cores: the per-prefix work units must at the
  // very least not lose to serial (5% noise allowance).
  EXPECT_LE(T4, T1 * 1.05)
      << "4-thread depth-2 search (" << T4 << "s) is slower than 1-thread ("
      << T1 << "s)";
}

} // namespace
