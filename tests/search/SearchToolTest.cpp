//===- tests/search/SearchToolTest.cpp - irlt-search end to end ------------===//
//
// Drives the irlt-search binary as a subprocess. The binary path comes
// from the build system (IRLT_SEARCH_PATH).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

namespace {

#ifndef IRLT_SEARCH_PATH
#define IRLT_SEARCH_PATH "irlt-search"
#endif

struct RunResult {
  int ExitCode;
  std::string Output;
};

RunResult runTool(const std::string &Args) {
  std::string Cmd = std::string(IRLT_SEARCH_PATH) + " " + Args + " 2>&1";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  std::string Out;
  std::array<char, 4096> Buf;
  size_t Got;
  while ((Got = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
    Out.append(Buf.data(), Got);
  int Status = pclose(Pipe);
  return RunResult{WEXITSTATUS(Status), Out};
}

std::string writeNest(const std::string &Tag, const std::string &Text) {
  std::string Path = ::testing::TempDir() + "/irlt_search_" + Tag + ".loop";
  std::ofstream Out(Path);
  Out << Text;
  return Path;
}

const char *MatmulSrc = "arrays B, C\n"
                        "do i = 1, n\n"
                        "  do j = 1, n\n"
                        "    do k = 1, n\n"
                        "      A(i, j) += B(i, k) * C(k, j)\n"
                        "    enddo\n"
                        "  enddo\n"
                        "enddo\n";

TEST(SearchTool, LocalityWinnerWithExplain) {
  std::string Path = writeNest("mm", MatmulSrc);
  RunResult R = runTool(Path + " --objective locality --explain");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("winner:"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("miss-ratio:"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("stats: enumerated="), std::string::npos)
      << R.Output;
}

TEST(SearchTool, OutputIsByteIdenticalAcrossThreadCounts) {
  std::string Path = writeNest("mm_det", MatmulSrc);
  std::string Args = " --objective both --explain --tiles 8,16 --depth 2";
  RunResult T1 = runTool(Path + Args + " --threads 1");
  RunResult T8 = runTool(Path + Args + " --threads 8");
  EXPECT_EQ(T1.ExitCode, 0) << T1.Output;
  EXPECT_EQ(T1.Output, T8.Output);
}

TEST(SearchTool, ParObjectiveEmitsParallelNest) {
  std::string Path = writeNest("par", MatmulSrc);
  RunResult R = runTool(Path + " --objective par --depth 1 --emit");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("par-score:"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("pardo"), std::string::npos) << R.Output;
}

TEST(SearchTool, ValidateConfirmsWinnerAndExitsZero) {
  // Guarded mode (docs/LEGALITY.md): the winner must be cross-checked by
  // concrete execution and confirmed; the identity fallback would still
  // exit 0, but on matmul the search's winner is expected to hold up.
  std::string Path = writeNest("mm_val", MatmulSrc);
  RunResult R = runTool(Path + " --objective both --depth 1 --validate");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("validate #1: confirmed"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("validated winner: <"), std::string::npos)
      << R.Output;
}

TEST(SearchTool, ValidateBudgetFlagParses) {
  std::string Path = writeNest("mm_budget", MatmulSrc);
  RunResult R = runTool(Path + " --depth 1 --validate=100000");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("validated winner:"), std::string::npos)
      << R.Output;
  EXPECT_EQ(runTool(Path + " --validate=0").ExitCode, 1);
  EXPECT_EQ(runTool(Path + " --validate=abc").ExitCode, 1);
}

TEST(SearchTool, BadFlagsExitOne) {
  std::string Path = writeNest("bad", MatmulSrc);
  EXPECT_EQ(runTool(Path + " --objective speed").ExitCode, 1);
  EXPECT_EQ(runTool(Path + " --beam 0").ExitCode, 1);
  EXPECT_EQ(runTool(Path + " --tiles 8,x").ExitCode, 1);
  EXPECT_EQ(runTool("/nonexistent.loop").ExitCode, 1);
}

} // namespace
