//===- tests/serve/FrameTest.cpp - Wire framing parser tests --------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "serve/Frame.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace irlt::serve;

namespace {

/// Little-endian length at offset 4, as encodeFrame writes it.
std::string header(uint32_t Len) {
  std::string H(FrameMagic, 4);
  for (int I = 0; I < 4; ++I)
    H.push_back(static_cast<char>((Len >> (8 * I)) & 0xff));
  return H;
}

} // namespace

TEST(Frame, RoundTripSingleFrame) {
  std::string Wire = encodeFrame(R"({"op":"healthz"})");
  FrameReader R;
  R.feed(Wire);
  std::string Payload;
  ASSERT_EQ(R.next(Payload), FrameReader::Status::Frame);
  EXPECT_EQ(Payload, R"({"op":"healthz"})");
  EXPECT_EQ(R.next(Payload), FrameReader::Status::NeedMore);
  EXPECT_FALSE(R.midFrame());
  EXPECT_EQ(R.bufferedBytes(), 0u);
}

TEST(Frame, RoundTripEmptyAndBinaryPayloads) {
  std::string Binary("\x00\x01\xfeIRL1\n\r", 8); // NULs and embedded magic
  for (const std::string &P : {std::string(), Binary}) {
    FrameReader R;
    R.feed(encodeFrame(P));
    std::string Out;
    ASSERT_EQ(R.next(Out), FrameReader::Status::Frame);
    EXPECT_EQ(Out, P);
  }
}

TEST(Frame, OneBytePerFeedMatchesAllAtOnce) {
  std::string Wire = encodeFrame("abc") + encodeFrame("") + encodeFrame("xyz");
  FrameReader R;
  std::vector<std::string> Got;
  for (char C : Wire) {
    R.feed(&C, 1);
    std::string P;
    while (R.next(P) == FrameReader::Status::Frame)
      Got.push_back(P);
  }
  ASSERT_EQ(Got.size(), 3u);
  EXPECT_EQ(Got[0], "abc");
  EXPECT_EQ(Got[1], "");
  EXPECT_EQ(Got[2], "xyz");
}

TEST(Frame, BadMagicIsTerminal) {
  FrameReader R;
  R.feed(std::string("NOPE\x03\x00\x00\x00"
                     "abc",
                     11));
  std::string P;
  ASSERT_EQ(R.next(P), FrameReader::Status::Error);
  EXPECT_EQ(R.error(), FrameReader::Error::BadMagic);
  EXPECT_STREQ(FrameReader::errorName(R.error()), "bad_magic");
  // The stream is dead: further feeds are no-ops and next() keeps
  // reporting the same error.
  R.feed(encodeFrame("ok"));
  EXPECT_EQ(R.next(P), FrameReader::Status::Error);
  EXPECT_FALSE(R.midFrame());
}

TEST(Frame, OversizedDeclaredLengthRejectedBeforeBuffering) {
  FrameReader R(/*MaxPayloadBytes=*/16);
  // Header declaring 17 bytes; never send the payload. The lie must be
  // caught from the length field alone.
  R.feed(header(17));
  std::string P;
  ASSERT_EQ(R.next(P), FrameReader::Status::Error);
  EXPECT_EQ(R.error(), FrameReader::Error::Oversized);
  EXPECT_LE(R.bufferedBytes(), FrameHeaderBytes + 16);
}

TEST(Frame, PayloadAtExactBoundAccepted) {
  FrameReader R(/*MaxPayloadBytes=*/16);
  std::string P16(16, 'x');
  R.feed(encodeFrame(P16));
  std::string P;
  ASSERT_EQ(R.next(P), FrameReader::Status::Frame);
  EXPECT_EQ(P, P16);
}

TEST(Frame, MidFrameClassifiesShortRead) {
  FrameReader R;
  std::string Wire = encodeFrame("hello world");
  R.feed(Wire.data(), Wire.size() - 3); // stop 3 bytes short
  std::string P;
  EXPECT_EQ(R.next(P), FrameReader::Status::NeedMore);
  EXPECT_TRUE(R.midFrame()) << "EOF here is a truncated frame";
  // A bare partial header is also mid-frame.
  FrameReader R2;
  R2.feed("IR");
  EXPECT_EQ(R2.next(P), FrameReader::Status::NeedMore);
  EXPECT_TRUE(R2.midFrame());
}

TEST(Frame, BufferedBytesStayBounded) {
  FrameReader R(/*MaxPayloadBytes=*/32);
  // Keep feeding valid frames; the parser must drain as it goes.
  for (int I = 0; I < 100; ++I) {
    R.feed(encodeFrame(std::string(32, 'a' + (I % 26))));
    std::string P;
    while (R.next(P) == FrameReader::Status::Frame)
      ;
    EXPECT_LE(R.bufferedBytes(), FrameHeaderBytes + 32);
  }
}

TEST(Frame, LittleEndianLengthEncoding) {
  std::string Wire = encodeFrame(std::string(0x0102, 'z'));
  ASSERT_GE(Wire.size(), FrameHeaderBytes);
  EXPECT_EQ(static_cast<unsigned char>(Wire[4]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(Wire[5]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(Wire[6]), 0x00);
  EXPECT_EQ(static_cast<unsigned char>(Wire[7]), 0x00);
}
