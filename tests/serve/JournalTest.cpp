//===- tests/serve/JournalTest.cpp - Cache journal persistence tests ------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "serve/Journal.h"

#include "api/Pipeline.h"
#include "ir/NestHash.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

using namespace irlt;
using namespace irlt::serve;

namespace {

const char *Matmul = "arrays B, C\n"
                     "do i = 1, n\n"
                     "  do j = 1, n\n"
                     "    do k = 1, n\n"
                     "      A(i, j) += B(i, k) * C(k, j)\n"
                     "    enddo\n"
                     "  enddo\n"
                     "enddo\n";

std::string keyOf(const std::string &Source) {
  api::Pipeline P;
  auto N = P.loadNest(Source);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return canonicalNestKey(*N);
}

std::string tmpPath(const std::string &Name) {
  return std::string(::testing::TempDir()) + "/" + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

TEST(Journal, RecordDumpLoadReplayRoundTrip) {
  std::string Key = keyOf(Matmul);
  CacheJournal J(0);
  J.record(Key, Matmul, "");
  J.record(Key, Matmul, "interchange 1 2");
  J.record("", Matmul, ""); // empty key: dropped
  EXPECT_EQ(J.size(), 2u);

  std::string Path = tmpPath("journal_roundtrip.ndjson");
  auto Dumped = J.dump(Path);
  ASSERT_TRUE(static_cast<bool>(Dumped)) << Dumped.message();
  EXPECT_EQ(*Dumped, 2u);
  EXPECT_FALSE(std::filesystem::exists(Path + ".tmp"))
      << "temp file must be renamed away";

  api::Pipeline P;
  CacheJournal J2(0);
  JournalLoadResult R = J2.loadAndReplay(Path, P);
  EXPECT_TRUE(R.FileFound);
  EXPECT_EQ(R.Loaded, 2u);
  EXPECT_EQ(R.Replayed, 2u);
  EXPECT_EQ(R.Discarded, 0u);
  EXPECT_FALSE(R.Truncated);
  EXPECT_EQ(J2.size(), 2u) << "replayed entries carry to the next dump";

  // Replay rewarmed the pipeline's caches from sources alone.
  api::CacheStats S = P.cacheStats();
  EXPECT_GE(S.DepInserts, 1u);
  EXPECT_GE(S.LegalityInserts, 1u);

  // A dump of the replayed journal reproduces the file byte-identically
  // (same entries, same LRU -> MRU order).
  std::string Path2 = tmpPath("journal_roundtrip2.ndjson");
  auto Dumped2 = J2.dump(Path2);
  ASSERT_TRUE(static_cast<bool>(Dumped2)) << Dumped2.message();
  EXPECT_EQ(slurp(Path), slurp(Path2));
}

TEST(Journal, MissingFileIsACleanColdStart) {
  api::Pipeline P;
  CacheJournal J(0);
  JournalLoadResult R = J.loadAndReplay(tmpPath("journal_nope.ndjson"), P);
  EXPECT_FALSE(R.FileFound);
  EXPECT_EQ(R.Loaded, 0u);
  EXPECT_EQ(R.Replayed, 0u);
  EXPECT_FALSE(R.Truncated);
}

TEST(Journal, TruncatedFileKeepsTheValidPrefix) {
  std::string Key = keyOf(Matmul);
  CacheJournal J(0);
  J.record(Key, Matmul, "");
  J.record(Key, Matmul, "interchange 1 2");
  std::string Path = tmpPath("journal_trunc.ndjson");
  ASSERT_TRUE(static_cast<bool>(J.dump(Path)));

  // Tear the file: drop the trailer and cut into the final entry line,
  // the shape a torn non-atomic write (or mistaken temp file) would have.
  std::string Whole = slurp(Path);
  size_t LastNl = Whole.rfind('\n', Whole.size() - 2);
  ASSERT_NE(LastNl, std::string::npos);
  std::string Torn = Whole.substr(0, LastNl - 10);
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << Torn;
  }

  api::Pipeline P;
  CacheJournal J2(0);
  JournalLoadResult R = J2.loadAndReplay(Path, P);
  EXPECT_TRUE(R.FileFound);
  EXPECT_TRUE(R.Truncated) << "no cache_dump_end trailer";
  EXPECT_EQ(R.Replayed, 1u) << "the intact first entry survives";
  EXPECT_GE(R.Discarded, 1u) << "the torn line is skipped, not fatal";
}

TEST(Journal, CacheCorruptFaultDiscardsEveryEntry) {
  std::string Key = keyOf(Matmul);
  CacheJournal J(0);
  J.record(Key, Matmul, "");
  J.record(Key, Matmul, "interchange 1 2");
  std::string Path = tmpPath("journal_corrupt.ndjson");
  ASSERT_TRUE(static_cast<bool>(J.dump(Path)));

  FaultConfig F;
  F.CacheCorrupt = true;
  api::Pipeline P;
  CacheJournal J2(0);
  JournalLoadResult R = J2.loadAndReplay(Path, P, F);
  EXPECT_TRUE(R.FileFound);
  EXPECT_EQ(R.Replayed, 0u);
  EXPECT_EQ(R.Discarded, 2u) << "every corrupted entry line is skipped";
  EXPECT_EQ(J2.size(), 0u);
}

TEST(Journal, StaleKeyFailsTheFingerprintCrossCheck) {
  // An entry whose recorded key does not match the nest source's freshly
  // computed fingerprint is discarded: replay never trusts stored keys.
  CacheJournal J(0);
  J.record("not-the-real-fingerprint", Matmul, "");
  std::string Path = tmpPath("journal_stalekey.ndjson");
  ASSERT_TRUE(static_cast<bool>(J.dump(Path)));

  api::Pipeline P;
  CacheJournal J2(0);
  JournalLoadResult R = J2.loadAndReplay(Path, P);
  EXPECT_TRUE(R.FileFound);
  EXPECT_EQ(R.Loaded, 1u);
  EXPECT_EQ(R.Replayed, 0u);
  EXPECT_EQ(R.Discarded, 1u);
}

TEST(Journal, CapacityBoundsResidentEntriesLruFirst) {
  std::string Key = keyOf(Matmul);
  CacheJournal J(2);
  J.record(Key, Matmul, "interchange 1 2");
  J.record(Key, Matmul, "reverse 3");
  J.record(Key, Matmul, "block 1 3 8 8 8"); // evicts the first
  EXPECT_EQ(J.size(), 2u);

  std::string Path = tmpPath("journal_cap.ndjson");
  auto Dumped = J.dump(Path);
  ASSERT_TRUE(static_cast<bool>(Dumped));
  EXPECT_EQ(*Dumped, 2u);
  std::string Body = slurp(Path);
  EXPECT_EQ(Body.find("interchange 1 2"), std::string::npos)
      << "the evicted entry is gone from the dump";
  EXPECT_NE(Body.find("reverse 3"), std::string::npos);
  EXPECT_NE(Body.find("block 1 3 8 8 8"), std::string::npos);
}

TEST(Journal, CapacityBoundedReloadKeepsMruTail) {
  // A restart with --journal-cap smaller than the dumped journal must
  // keep the most-recently-used tail (the entries most likely to warm
  // live traffic), not the stale head - and still replay everything
  // through the pipeline on the way.
  std::string Key = keyOf(Matmul);
  CacheJournal J(0);
  J.record(Key, Matmul, "interchange 1 2");
  J.record(Key, Matmul, "reverse 3");
  J.record(Key, Matmul, "block 1 3 8 8 8");
  J.record(Key, Matmul, "stripmine 1 4");
  std::string Path = tmpPath("journal_capreload.ndjson");
  ASSERT_TRUE(static_cast<bool>(J.dump(Path)));

  api::Pipeline P;
  CacheJournal J2(2);
  JournalLoadResult R = J2.loadAndReplay(Path, P);
  EXPECT_TRUE(R.FileFound);
  EXPECT_EQ(R.Loaded, 4u);
  EXPECT_EQ(R.Replayed, 4u) << "capacity bounds residency, not replay";
  EXPECT_EQ(R.Discarded, 0u);
  EXPECT_EQ(J2.size(), 2u);

  // The dump reads LRU -> MRU, so insertion order during reload matches
  // recording order and eviction discards the oldest first.
  std::string Path2 = tmpPath("journal_capreload2.ndjson");
  ASSERT_TRUE(static_cast<bool>(J2.dump(Path2)));
  std::string Body = slurp(Path2);
  EXPECT_EQ(Body.find("interchange 1 2"), std::string::npos);
  EXPECT_EQ(Body.find("reverse 3"), std::string::npos);
  EXPECT_NE(Body.find("block 1 3 8 8 8"), std::string::npos);
  EXPECT_NE(Body.find("stripmine 1 4"), std::string::npos);

  // The pipeline was still warmed by all four replays.
  api::CacheStats S = P.cacheStats();
  EXPECT_GE(S.LegalityInserts, 4u);
}

TEST(Journal, DumpOverwritesAtomically) {
  // Pre-existing garbage at the destination is replaced wholesale by the
  // rename; a reload sees only the new dump.
  std::string Path = tmpPath("journal_overwrite.ndjson");
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << "garbage that is not a dump\n";
  }
  std::string Key = keyOf(Matmul);
  CacheJournal J(0);
  J.record(Key, Matmul, "");
  ASSERT_TRUE(static_cast<bool>(J.dump(Path)));

  api::Pipeline P;
  CacheJournal J2(0);
  JournalLoadResult R = J2.loadAndReplay(Path, P);
  EXPECT_EQ(R.Replayed, 1u);
  EXPECT_EQ(R.Discarded, 0u);
  EXPECT_FALSE(R.Truncated);
}
