//===- tests/serve/ServerTest.cpp - In-process serve daemon tests ---------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives a Server instance in-process over real sockets: inline ops,
/// pipelined ordering, the determinism anchor (byte-identical responses
/// across worker counts and cache cold/warm/restored), admission
/// shedding, deadlines, structured bad-frame rejects, worker-throw, and
/// the drain lifecycle. Every recv carries a timeout so a regression
/// fails instead of hanging the suite.
///
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "serve/Client.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace irlt;
using namespace irlt::serve;

namespace {

constexpr uint64_t RecvMs = 30000;

const char *MatmulEscaped =
    "arrays B, C\\ndo i = 1, n\\n  do j = 1, n\\n    do k = 1, n\\n"
    "      A(i, j) += B(i, k) * C(k, j)\\n    enddo\\n  enddo\\nenddo\\n";

const char *TriangularEscaped =
    "do i = 1, n\\n  do j = 1, i\\n    a(i, j) = a(i, j) + 1\\n"
    "  enddo\\nenddo\\n";

std::string sockPath(const std::string &Name) {
  return std::string(::testing::TempDir()) + "irlt_" + Name + ".sock";
}

/// The mixed request corpus the determinism tests replay everywhere.
std::vector<std::string> corpus() {
  return {
      std::string(R"({"id":"r-block","nest":")") + MatmulEscaped +
          R"(","script":"block 1 3 8 8 8","emit":"loop"})",
      std::string(R"({"id":"r-auto","nest":")") + MatmulEscaped +
          R"(","auto":"locality","beam":2,"depth":1})",
      std::string(R"({"id":"r-illegal","nest":")") + TriangularEscaped +
          R"(","script":"interchange 1 2"})",
      R"({"id":"r-bad","script":"x"})",
  };
}

/// Pipelines all of \p Requests, then collects one response each.
std::vector<std::string> roundTrip(ClientConn &C,
                                   const std::vector<std::string> &Requests) {
  for (const std::string &R : Requests)
    EXPECT_TRUE(C.sendFrame(R));
  std::vector<std::string> Out;
  for (size_t I = 0; I < Requests.size(); ++I) {
    auto P = C.recvFrame(RecvMs);
    EXPECT_TRUE(static_cast<bool>(P)) << P.message();
    Out.push_back(P ? *P : std::string());
  }
  return Out;
}

/// Serves \p Requests on a fresh connection of a fresh server built from
/// \p Opts, drains, and returns the responses.
std::vector<std::string> serveOnce(ServeOptions Opts,
                                   const std::vector<std::string> &Requests,
                                   size_t Repeats = 1) {
  Server S(Opts);
  auto St = S.start();
  EXPECT_TRUE(static_cast<bool>(St)) << St.message();
  std::vector<std::string> Out;
  for (size_t R = 0; R < Repeats; ++R) {
    auto C = connectUnix(Opts.SocketPath);
    EXPECT_TRUE(static_cast<bool>(C)) << C.message();
    std::vector<std::string> Got = roundTrip(*C, Requests);
    Out.insert(Out.end(), Got.begin(), Got.end());
  }
  S.requestDrain();
  EXPECT_TRUE(S.run());
  return Out;
}

/// Extracts the integer after "\p Field": in a response body.
uint64_t u64Field(const std::string &Body, const std::string &Field) {
  std::string Needle = "\"" + Field + "\":";
  size_t At = Body.find(Needle);
  EXPECT_NE(At, std::string::npos) << Field << " missing in " << Body;
  if (At == std::string::npos)
    return 0;
  return std::stoull(Body.substr(At + Needle.size()));
}

} // namespace

TEST(Server, InlineOpsAnswerWithoutQueueing) {
  ServeOptions O;
  O.SocketPath = sockPath("inline");
  Server S(O);
  auto St = S.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  {
    auto C = connectUnix(O.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();

    ASSERT_TRUE(C->sendFrame(R"({"op":"healthz","id":"h1"})"));
    auto H = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(H)) << H.message();
    EXPECT_NE(H->find("\"record\":\"healthz\""), std::string::npos);
    EXPECT_NE(H->find("\"id\":\"h1\""), std::string::npos);
    EXPECT_NE(H->find("\"ok\":true"), std::string::npos);
    EXPECT_NE(H->find("\"draining\":false"), std::string::npos);

    ASSERT_TRUE(C->sendFrame(R"({"op":"statz","id":"s1"})"));
    auto Z = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(Z)) << Z.message();
    EXPECT_NE(Z->find("\"record\":\"statz\""), std::string::npos);
    EXPECT_EQ(u64Field(*Z, "frames_in"), 2u);
    EXPECT_EQ(u64Field(*Z, "inline_ops"), 2u);
    EXPECT_EQ(u64Field(*Z, "queue_capacity"), O.QueueCapacity);

    // persist without --persist is a structured error, not a crash.
    ASSERT_TRUE(C->sendFrame(R"({"op":"persist","id":"p1"})"));
    auto P = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(P)) << P.message();
    EXPECT_NE(P->find("\"ok\":false"), std::string::npos);
    EXPECT_NE(P->find("persistence is disabled"), std::string::npos);

    ASSERT_TRUE(C->sendFrame(R"({"op":"no-such-op","id":"u1"})"));
    auto U = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(U)) << U.message();
    EXPECT_NE(U->find("\"kind\":\"request\""), std::string::npos);
    EXPECT_NE(U->find("unknown op"), std::string::npos);
  }
  S.requestDrain();
  EXPECT_TRUE(S.run());
  EXPECT_EQ(S.stats().FramesIn.load(),
            S.stats().InlineOps.load() + S.stats().Admitted.load() +
                S.stats().Shed.load() + S.stats().DrainRejects.load());
}

TEST(Server, PipelinedResponsesArriveInRequestOrder) {
  ServeOptions O;
  O.SocketPath = sockPath("order");
  O.Jobs = 4; // concurrent workers must not reorder a connection's replies
  Server S(O);
  auto St = S.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  {
    auto C = connectUnix(O.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    // Interleave slow engine requests with instant inline ops: the
    // reorder buffer must hold the inline replies behind the slow ones.
    std::vector<std::string> Reqs;
    for (int I = 0; I < 12; ++I) {
      if (I % 3 == 2)
        Reqs.push_back(R"({"op":"healthz","id":"q)" + std::to_string(I) +
                       "\"}");
      else
        Reqs.push_back(std::string(R"({"id":"q)") + std::to_string(I) +
                       R"(","nest":")" + MatmulEscaped +
                       R"(","script":"block 1 3 8 8 8"})");
    }
    std::vector<std::string> Got = roundTrip(*C, Reqs);
    ASSERT_EQ(Got.size(), Reqs.size());
    for (int I = 0; I < 12; ++I)
      EXPECT_NE(Got[I].find("\"id\":\"q" + std::to_string(I) + "\""),
                std::string::npos)
          << "response " << I << " out of order: " << Got[I];
  }
  S.requestDrain();
  EXPECT_TRUE(S.run());
}

TEST(Server, ResponsesAreByteIdenticalAcrossJobsAndCacheModes) {
  std::vector<std::string> Reqs = corpus();

  ServeOptions Cold;
  Cold.SocketPath = sockPath("det_cold");
  Cold.Jobs = 1;
  std::vector<std::string> Baseline = serveOnce(Cold, Reqs);
  ASSERT_EQ(Baseline.size(), Reqs.size());

  // Warm: the same corpus twice through one server; the second pass hits
  // the caches and must not change a byte.
  ServeOptions Warm;
  Warm.SocketPath = sockPath("det_warm");
  Warm.Jobs = 1;
  std::vector<std::string> Twice = serveOnce(Warm, Reqs, /*Repeats=*/2);
  ASSERT_EQ(Twice.size(), 2 * Reqs.size());
  for (size_t I = 0; I < Reqs.size(); ++I) {
    EXPECT_EQ(Twice[I], Baseline[I]);
    EXPECT_EQ(Twice[Reqs.size() + I], Baseline[I]) << "warm pass diverged";
  }

  ServeOptions Par;
  Par.SocketPath = sockPath("det_jobs");
  Par.Jobs = 4;
  EXPECT_EQ(serveOnce(Par, Reqs), Baseline) << "worker count leaked in";

  ServeOptions NoCache;
  NoCache.SocketPath = sockPath("det_nocache");
  NoCache.EnableCache = false;
  EXPECT_EQ(serveOnce(NoCache, Reqs), Baseline) << "cache is not a no-op";

  ServeOptions Tiny;
  Tiny.SocketPath = sockPath("det_evict");
  Tiny.CacheCapacity = 1; // constant eviction churn
  EXPECT_EQ(serveOnce(Tiny, Reqs, /*Repeats=*/2),
            [&] {
              std::vector<std::string> B2 = Baseline;
              B2.insert(B2.end(), Baseline.begin(), Baseline.end());
              return B2;
            }())
      << "eviction changed a response";
}

TEST(Server, RestoredCacheReplaysByteIdentical) {
  std::vector<std::string> Reqs = corpus();
  std::string Persist = std::string(::testing::TempDir()) + "irlt_det.journal";
  std::remove(Persist.c_str());

  ServeOptions A;
  A.SocketPath = sockPath("persist_a");
  A.PersistPath = Persist;
  std::vector<std::string> Baseline = serveOnce(A, Reqs);

  ServeOptions B;
  B.SocketPath = sockPath("persist_b");
  B.PersistPath = Persist;
  Server S(B);
  auto St = S.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  EXPECT_TRUE(S.journalLoad().FileFound);
  EXPECT_GE(S.journalLoad().Replayed, 2u) << "restart must rewarm the cache";
  EXPECT_EQ(S.journalLoad().Discarded, 0u);
  {
    auto C = connectUnix(B.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    EXPECT_EQ(roundTrip(*C, Reqs), Baseline)
        << "journal-restored responses diverged";
    // The replay really warmed the dependence cache: the corpus re-run
    // above must have hit it.
    ASSERT_TRUE(C->sendFrame(R"({"op":"statz","id":"s"})"));
    auto Z = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(Z)) << Z.message();
    EXPECT_GT(u64Field(*Z, "dep_hits"), 0u);
  }
  S.requestDrain();
  EXPECT_TRUE(S.run());
  EXPECT_GT(S.persistedEntries(), 0u);
}

TEST(Server, JournalCapSmallerThanDumpRestoresMruTailByteIdentical) {
  // Restarting with --journal-cap below the dumped entry count keeps the
  // MRU tail resident and must not change a response byte: the journal
  // only carries cache warmth, never results.
  std::vector<std::string> Reqs = corpus();
  std::string Persist = std::string(::testing::TempDir()) + "irlt_cap.journal";
  std::remove(Persist.c_str());

  ServeOptions A;
  A.SocketPath = sockPath("cap_a");
  A.PersistPath = Persist;
  std::vector<std::string> Baseline = serveOnce(A, Reqs);

  ServeOptions B;
  B.SocketPath = sockPath("cap_b");
  B.PersistPath = Persist;
  B.JournalCapacity = 1;
  Server S(B);
  auto St = S.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  EXPECT_TRUE(S.journalLoad().FileFound);
  EXPECT_GE(S.journalLoad().Replayed, 2u)
      << "residency is capped, replay is not";
  EXPECT_EQ(S.journalLoad().Discarded, 0u);
  {
    auto C = connectUnix(B.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    EXPECT_EQ(roundTrip(*C, Reqs), Baseline)
        << "capacity-bounded restore diverged";
  }
  S.requestDrain();
  EXPECT_TRUE(S.run());
  EXPECT_EQ(S.persistedEntries(), 1u)
      << "the next dump carries exactly the capped MRU tail";
}

TEST(Server, CacheCountersReconcileUnderEviction) {
  ServeOptions O;
  O.SocketPath = sockPath("reconcile");
  O.CacheCapacity = 1;
  Server S(O);
  auto St = S.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  {
    auto C = connectUnix(O.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    std::vector<std::string> Reqs;
    for (int Pass = 0; Pass < 3; ++Pass) {
      std::vector<std::string> Co = corpus();
      Reqs.insert(Reqs.end(), Co.begin(), Co.end());
    }
    roundTrip(*C, Reqs);
    ASSERT_TRUE(C->sendFrame(R"({"op":"statz","id":"s"})"));
    auto Z = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(Z)) << Z.message();
    EXPECT_EQ(u64Field(*Z, "dep_hits") + u64Field(*Z, "dep_misses"),
              u64Field(*Z, "dep_lookups"));
    EXPECT_EQ(u64Field(*Z, "legality_hits") + u64Field(*Z, "legality_misses"),
              u64Field(*Z, "legality_lookups"));
    EXPECT_EQ(u64Field(*Z, "dep_inserts") - u64Field(*Z, "dep_evictions"),
              u64Field(*Z, "dep_entries"));
    EXPECT_EQ(u64Field(*Z, "legality_inserts") -
                  u64Field(*Z, "legality_evictions"),
              u64Field(*Z, "legality_entries"));
    EXPECT_GT(u64Field(*Z, "dep_evictions"), 0u) << "capacity 1 must churn";
    EXPECT_LE(u64Field(*Z, "dep_entries"), 1u);
  }
  S.requestDrain();
  EXPECT_TRUE(S.run());
}

TEST(Server, FullQueueShedsWithStructuredOverloaded) {
  ServeOptions O;
  O.SocketPath = sockPath("shed");
  O.Jobs = 1;
  O.QueueCapacity = 1;
  Server S(O);
  auto St = S.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  size_t Sent = 32;
  {
    auto C = connectUnix(O.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    std::string Req = std::string(R"({"id":"burst","nest":")") +
                      MatmulEscaped + R"(","auto":"locality","beam":2})";
    for (size_t I = 0; I < Sent; ++I)
      ASSERT_TRUE(C->sendFrame(Req));
    size_t Overloaded = 0, Results = 0;
    for (size_t I = 0; I < Sent; ++I) {
      auto P = C->recvFrame(RecvMs);
      ASSERT_TRUE(static_cast<bool>(P)) << P.message();
      if (P->find("\"kind\":\"overloaded\"") != std::string::npos)
        ++Overloaded;
      else
        ++Results;
    }
    EXPECT_EQ(Overloaded + Results, Sent) << "every frame gets a response";
    EXPECT_GT(Overloaded, 0u) << "queue bound 1 under a 32-burst must shed";
    EXPECT_GT(Results, 0u) << "shedding must not starve admitted work";
  }
  S.requestDrain();
  EXPECT_TRUE(S.run());
  const ServerStats &T = S.stats();
  EXPECT_EQ(T.FramesIn.load(), T.InlineOps.load() + T.Admitted.load() +
                                   T.Shed.load() + T.DrainRejects.load());
  EXPECT_EQ(T.FramesIn.load(), Sent);
}

TEST(Server, ExpiredDeadlineCancelsWithStructuredRecord) {
  ServeOptions O;
  O.SocketPath = sockPath("deadline");
  O.Jobs = 1;
  Server S(O);
  auto St = S.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  {
    auto C = connectUnix(O.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    // Park the single worker on a slow search, then queue a request with
    // a 1ms deadline behind it: the deadline burns out in the queue
    // (deadlines are measured from arrival), so the cancellation is
    // deterministic - the slow request takes far longer than 1ms.
    std::string Slow = std::string(R"({"id":"slow","nest":")") +
                       MatmulEscaped + R"(","auto":"locality","beam":2})";
    std::string Req = std::string(R"({"id":"dl","deadline_ms":1,"nest":")") +
                      MatmulEscaped + R"(","script":"block 1 3 8 8 8"})";
    ASSERT_TRUE(C->sendFrame(Slow));
    ASSERT_TRUE(C->sendFrame(Req));
    auto First = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(First)) << First.message();
    EXPECT_NE(First->find("\"id\":\"slow\""), std::string::npos);
    auto P = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(P)) << P.message();
    EXPECT_NE(P->find("\"kind\":\"deadline\""), std::string::npos) << *P;
    EXPECT_NE(P->find("\"id\":\"dl\""), std::string::npos);
  }
  S.requestDrain();
  EXPECT_TRUE(S.run());
  EXPECT_EQ(S.stats().Deadline.load(), 1u);
}

TEST(Server, GarbageBytesGetBadFrameRecordThenClose) {
  ServeOptions O;
  O.SocketPath = sockPath("garbage");
  Server S(O);
  auto St = S.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  {
    auto C = connectUnix(O.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    ASSERT_TRUE(C->sendRaw("GET / HTTP/1.1\r\n\r\n"));
    auto P = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(P)) << P.message();
    EXPECT_NE(P->find("\"kind\":\"bad_frame\""), std::string::npos) << *P;
    EXPECT_NE(P->find("bad_magic"), std::string::npos);
    auto After = C->recvFrame(RecvMs);
    EXPECT_FALSE(static_cast<bool>(After)) << "connection must be closed";
  }
  S.requestDrain();
  EXPECT_TRUE(S.run());
  EXPECT_EQ(S.stats().BadFrames.load(), 1u);
}

TEST(Server, TruncatedFrameAtEofGetsBadFrameRecord) {
  ServeOptions O;
  O.SocketPath = sockPath("trunc");
  Server S(O);
  auto St = S.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  {
    auto C = connectUnix(O.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    // A valid header declaring 64 bytes, 5 bytes of payload, then EOF.
    std::string Raw(FrameMagic, 4);
    Raw += std::string(1, '\x40') + std::string(3, '\0');
    Raw += "hello";
    ASSERT_TRUE(C->sendRaw(Raw));
    C->finishWrites();
    auto P = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(P)) << P.message();
    EXPECT_NE(P->find("\"kind\":\"bad_frame\""), std::string::npos) << *P;
    EXPECT_NE(P->find("truncated"), std::string::npos);
  }
  S.requestDrain();
  EXPECT_TRUE(S.run());
}

TEST(Server, OversizedDeclaredLengthRejectedStructurally) {
  ServeOptions O;
  O.SocketPath = sockPath("oversized");
  O.MaxFrameBytes = 1024;
  Server S(O);
  auto St = S.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  {
    auto C = connectUnix(O.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    std::string Raw(FrameMagic, 4);
    Raw += std::string(4, '\xff'); // declares ~4 GiB
    ASSERT_TRUE(C->sendRaw(Raw));
    auto P = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(P)) << P.message();
    EXPECT_NE(P->find("\"kind\":\"bad_frame\""), std::string::npos) << *P;
    EXPECT_NE(P->find("oversized_frame"), std::string::npos);
  }
  S.requestDrain();
  EXPECT_TRUE(S.run());
}

TEST(Server, WorkerThrowFaultYieldsInternalRecord) {
  ServeOptions O;
  O.SocketPath = sockPath("boom");
  O.Faults.WorkerThrow = true;
  Server S(O);
  auto St = S.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  {
    auto C = connectUnix(O.SocketPath);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    std::string Req = std::string(R"({"id":"boom-1","nest":")") +
                      MatmulEscaped + R"(","script":"block 1 3 8 8 8"})";
    ASSERT_TRUE(C->sendFrame(Req));
    auto P = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(P)) << P.message();
    EXPECT_NE(P->find("\"kind\":\"internal\""), std::string::npos) << *P;
    // The same request without the marker id still serves normally: the
    // fault is targeted, not a poison pill for the worker pool.
    std::string Ok = std::string(R"({"id":"fine","nest":")") + MatmulEscaped +
                     R"(","script":"block 1 3 8 8 8"})";
    ASSERT_TRUE(C->sendFrame(Ok));
    auto Q = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(Q)) << Q.message();
    EXPECT_NE(Q->find("\"ok\":true"), std::string::npos) << *Q;
  }
  S.requestDrain();
  EXPECT_TRUE(S.run());
}

TEST(Server, ShortReadFaultStillServesCorrectly) {
  // 1-byte socket reads exercise reassembly on maximally fragmented
  // input without changing a single response byte.
  std::vector<std::string> Reqs = corpus();
  ServeOptions Plain;
  Plain.SocketPath = sockPath("shortread_base");
  std::vector<std::string> Baseline = serveOnce(Plain, Reqs);

  ServeOptions Frag;
  Frag.SocketPath = sockPath("shortread");
  Frag.Faults.ShortRead = true;
  EXPECT_EQ(serveOnce(Frag, Reqs), Baseline);
}

TEST(Server, TcpLoopbackModeWorks) {
  ServeOptions O;
  O.TcpPort = 0; // kernel-assigned
  Server S(O);
  auto St = S.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  ASSERT_GT(S.boundPort(), 0);
  {
    auto C = connectTcp(S.boundPort());
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    ASSERT_TRUE(C->sendFrame(R"({"op":"healthz","id":"t"})"));
    auto P = C->recvFrame(RecvMs);
    ASSERT_TRUE(static_cast<bool>(P)) << P.message();
    EXPECT_NE(P->find("\"ok\":true"), std::string::npos);
  }
  S.requestDrain();
  EXPECT_TRUE(S.run());
}

TEST(Server, DrainCompletesAdmittedWorkAndRejectsNewConnections) {
  ServeOptions O;
  O.SocketPath = sockPath("drain");
  O.Jobs = 2;
  Server S(O);
  auto St = S.start();
  ASSERT_TRUE(static_cast<bool>(St)) << St.message();
  std::vector<std::string> Reqs = corpus();
  auto C = connectUnix(O.SocketPath);
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  std::vector<std::string> Got = roundTrip(*C, Reqs);
  ASSERT_EQ(Got.size(), Reqs.size());

  S.requestDrain();
  EXPECT_TRUE(S.run()) << "no response write may fail";

  const ServerStats &T = S.stats();
  EXPECT_EQ(T.Admitted.load(), static_cast<uint64_t>(Reqs.size()));
  EXPECT_EQ(T.Served.load(), T.Admitted.load())
      << "zero admitted requests lost on drain";
  EXPECT_EQ(T.WriteFailures.load(), 0u);
  // The socket is gone: a post-drain connect must fail, not hang.
  auto C2 = connectUnix(O.SocketPath);
  EXPECT_FALSE(static_cast<bool>(C2));
}
