//===- tests/serve/WireFuzzTest.cpp - Framing-parser fuzz oracle tests ----===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "serve/WireFuzz.h"

#include <gtest/gtest.h>

using namespace irlt::serve;

TEST(WireFuzz, SmokeRunHasNoOracleFailures) {
  WireFuzzOptions O;
  O.Seed = 1;
  O.Cases = 300;
  WireFuzzStats S = runWireFuzz(O);
  EXPECT_EQ(S.Cases, 300u);
  EXPECT_EQ(S.Failures, 0u) << S.FirstFailure;
  // The mutation coin is fair-ish; both stream kinds must be exercised.
  EXPECT_GT(S.CleanStreams, 0u);
  EXPECT_GT(S.MutatedStreams, 0u);
  EXPECT_EQ(S.CleanStreams + S.MutatedStreams, S.Cases);
  EXPECT_GT(S.FramesParsed, 0u);
  EXPECT_GT(S.Rejects, 0u) << "mutated streams must produce rejects";
}

TEST(WireFuzz, RunsAreDeterministicInTheSeed) {
  WireFuzzOptions O;
  O.Seed = 42;
  O.Cases = 120;
  WireFuzzStats A = runWireFuzz(O);
  WireFuzzStats B = runWireFuzz(O);
  EXPECT_EQ(A.CleanStreams, B.CleanStreams);
  EXPECT_EQ(A.MutatedStreams, B.MutatedStreams);
  EXPECT_EQ(A.FramesParsed, B.FramesParsed);
  EXPECT_EQ(A.Rejects, B.Rejects);
  EXPECT_EQ(A.Failures, B.Failures);
}

TEST(WireFuzz, DistinctSeedsExploreDistinctStreams) {
  WireFuzzOptions A, B;
  A.Seed = 7;
  B.Seed = 8;
  A.Cases = B.Cases = 120;
  WireFuzzStats SA = runWireFuzz(A);
  WireFuzzStats SB = runWireFuzz(B);
  // Equal aggregate counters across different seeds would mean the seed
  // is not actually threaded through generation.
  EXPECT_NE(SA.FramesParsed, SB.FramesParsed);
}
