//===- tests/support/CastingTest.cpp ---------------------------------------===//

#include "support/Casting.h"

#include "ir/Expr.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

TEST(Casting, IsaOnExprHierarchy) {
  ExprRef E = Expr::add(Expr::var("i"), Expr::intConst(1));
  EXPECT_TRUE(isa<BinaryExpr>(E.get()));
  EXPECT_FALSE(isa<VarExpr>(E.get()));
  EXPECT_FALSE(isa<IntConstExpr>(E.get()));
  EXPECT_TRUE(isa<VarExpr>(cast<BinaryExpr>(E.get())->lhs().get()));
}

TEST(Casting, DynCastReturnsNullOnMismatch) {
  ExprRef E = Expr::minE({Expr::var("a"), Expr::var("b")});
  EXPECT_NE(dyn_cast<MinMaxExpr>(E.get()), nullptr);
  EXPECT_EQ(dyn_cast<CallExpr>(E.get()), nullptr);
  EXPECT_EQ(dyn_cast<BinaryExpr>(E.get()), nullptr);
}

TEST(Casting, SharedPtrDynCastSharesOwnership) {
  ExprRef E = Expr::call("f", {Expr::var("x")});
  std::shared_ptr<const CallExpr> C = dyn_cast<CallExpr>(E);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C.get(), E.get());
  EXPECT_EQ(E.use_count(), 2);
  std::shared_ptr<const MinMaxExpr> M = dyn_cast<MinMaxExpr>(E);
  EXPECT_EQ(M, nullptr);
}

TEST(Casting, TemplateHierarchy) {
  TemplateRef T = makeInterchange(2, 0, 1);
  EXPECT_TRUE(isa<ReversePermuteTemplate>(T.get()));
  EXPECT_FALSE(isa<UnimodularTemplate>(T.get()));
  const auto *RP = dyn_cast<ReversePermuteTemplate>(T.get());
  ASSERT_NE(RP, nullptr);
  EXPECT_EQ(RP->perm()[0], 1u);
}

TEST(Casting, ReferenceCast) {
  ExprRef E = Expr::var("q");
  const VarExpr &V = cast<VarExpr>(*E);
  EXPECT_EQ(V.name(), "q");
}

} // namespace
