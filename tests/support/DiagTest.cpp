//===- tests/support/DiagTest.cpp - Diag rendering & dedup tests ---------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "support/Diag.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

TEST(Diag, EqualityComparesEveryField) {
  Diag A = Diag::error("boom");
  Diag B = Diag::error("boom");
  EXPECT_EQ(A, B);

  EXPECT_NE(A, Diag::error("bang"));
  EXPECT_NE(A, Diag::note("boom"));
  EXPECT_NE(A, Diag::error("boom").atLine(3));
  EXPECT_NE(A, Diag::error("boom").atStage(2));
  EXPECT_NE(A, Diag::error("boom").inTemplate("Block"));

  Diag C = Diag::error("boom").atStage(2).inTemplate("Block");
  Diag D = Diag::error("boom").atStage(2).inTemplate("Block");
  EXPECT_EQ(C, D);
}

TEST(Diag, RenderDiagsSuppressesExactDuplicates) {
  std::vector<Diag> Diags{
      Diag::error("bounds precondition violated").atStage(1),
      Diag::error("bounds precondition violated").atStage(1),
      Diag::error("bounds precondition violated").atStage(1),
  };
  EXPECT_EQ(renderDiags(Diags), "stage 1: bounds precondition violated");
}

TEST(Diag, RenderDiagsPreservesFirstOccurrenceOrder) {
  std::vector<Diag> Diags{
      Diag::error("first").atLine(1),
      Diag::error("second").atLine(2),
      Diag::error("first").atLine(1),  // duplicate of [0]
      Diag::error("third").atLine(3),
      Diag::error("second").atLine(2), // duplicate of [1]
  };
  EXPECT_EQ(renderDiags(Diags),
            "line 1: first\nline 2: second\nline 3: third");
}

TEST(Diag, RenderDiagsKeepsNearDuplicatesThatDifferInAField) {
  // Same message at different stages is two distinct findings; the
  // dedup must not collapse them.
  std::vector<Diag> Diags{
      Diag::error("overflow").atStage(1),
      Diag::error("overflow").atStage(2),
      Diag::note("overflow").atStage(1),
  };
  EXPECT_EQ(renderDiags(Diags),
            "stage 1: overflow\nstage 2: overflow\nstage 1: overflow");
}

TEST(Diag, RenderDiagsEmptyList) { EXPECT_EQ(renderDiags({}), ""); }

} // namespace
