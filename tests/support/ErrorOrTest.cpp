//===- tests/support/ErrorOrTest.cpp ---------------------------------------===//

#include "support/ErrorOr.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace irlt;

namespace {

ErrorOr<int> parsePositive(int V) {
  if (V <= 0)
    return Failure("value must be positive");
  return V;
}

TEST(ErrorOr, SuccessPath) {
  ErrorOr<int> R = parsePositive(7);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(*R, 7);
}

TEST(ErrorOr, FailurePath) {
  ErrorOr<int> R = parsePositive(-1);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.message(), "value must be positive");
}

TEST(ErrorOr, TakeMovesValueOut) {
  ErrorOr<std::vector<int>> R = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(static_cast<bool>(R));
  std::vector<int> V = R.take();
  EXPECT_EQ(V.size(), 3u);
}

TEST(ErrorOr, MoveOnlyPayload) {
  ErrorOr<std::unique_ptr<int>> R = std::make_unique<int>(5);
  ASSERT_TRUE(static_cast<bool>(R));
  std::unique_ptr<int> P = R.take();
  EXPECT_EQ(*P, 5);
}

TEST(ErrorOr, ArrowOperator) {
  ErrorOr<std::string> R = std::string("hello");
  EXPECT_EQ(R->size(), 5u);
}

TEST(ErrorOr, StringPayloadIsUnambiguous) {
  // Failure wraps the message so ErrorOr<std::string> works.
  ErrorOr<std::string> Ok = std::string("payload");
  ErrorOr<std::string> Bad = Failure("diagnostic");
  EXPECT_TRUE(static_cast<bool>(Ok));
  EXPECT_FALSE(static_cast<bool>(Bad));
  EXPECT_EQ(*Ok, "payload");
  EXPECT_EQ(Bad.message(), "diagnostic");
}

} // namespace
