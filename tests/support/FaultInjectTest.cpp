//===- tests/support/FaultInjectTest.cpp - Fault-spec parsing tests -------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"

#include <gtest/gtest.h>

using namespace irlt;

TEST(FaultInject, EmptySpecMeansNoFaults) {
  auto C = parseFaultSpec("");
  ASSERT_TRUE(static_cast<bool>(C));
  EXPECT_FALSE(C->any());
}

TEST(FaultInject, SingleKind) {
  auto C = parseFaultSpec("worker-throw");
  ASSERT_TRUE(static_cast<bool>(C));
  EXPECT_TRUE(C->WorkerThrow);
  EXPECT_FALSE(C->ShortRead);
  EXPECT_TRUE(C->any());
}

TEST(FaultInject, CommaSeparatedKindsCompose) {
  auto C = parseFaultSpec("short-read,cache-corrupt,dump-partial");
  ASSERT_TRUE(static_cast<bool>(C));
  EXPECT_TRUE(C->ShortRead);
  EXPECT_TRUE(C->CacheCorrupt);
  EXPECT_TRUE(C->DumpPartial);
  EXPECT_FALSE(C->WorkerThrow);
}

TEST(FaultInject, AllKindsParse) {
  auto C = parseFaultSpec("short-read,truncated-frame,oversized-record,"
                          "lying-length,garbage-frame,slow-client,"
                          "cache-corrupt,dump-partial,worker-throw");
  ASSERT_TRUE(static_cast<bool>(C));
  EXPECT_TRUE(C->ShortRead && C->TruncatedFrame && C->OversizedRecord &&
              C->LyingLength && C->GarbageFrame && C->SlowClient &&
              C->CacheCorrupt && C->DumpPartial && C->WorkerThrow);
}

TEST(FaultInject, UnknownKindIsAnErrorNamingTheOffender) {
  auto C = parseFaultSpec("worker-throw,no-such-fault");
  ASSERT_FALSE(static_cast<bool>(C));
  EXPECT_NE(C.message().find("no-such-fault"), std::string::npos);
}

TEST(FaultInject, WorkerThrowMarkerIsStable) {
  // Integration tests and docs/SERVE.md both bake in the "boom" marker;
  // renaming it silently would break recorded corpora.
  EXPECT_STREQ(WorkerThrowIdMarker, "boom");
}
