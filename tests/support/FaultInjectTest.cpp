//===- tests/support/FaultInjectTest.cpp - Fault-spec parsing tests -------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"

#include <gtest/gtest.h>

using namespace irlt;

TEST(FaultInject, EmptySpecMeansNoFaults) {
  auto C = parseFaultSpec("");
  ASSERT_TRUE(static_cast<bool>(C));
  EXPECT_FALSE(C->any());
}

TEST(FaultInject, SingleKind) {
  auto C = parseFaultSpec("worker-throw");
  ASSERT_TRUE(static_cast<bool>(C));
  EXPECT_TRUE(C->WorkerThrow);
  EXPECT_FALSE(C->ShortRead);
  EXPECT_TRUE(C->any());
}

TEST(FaultInject, CommaSeparatedKindsCompose) {
  auto C = parseFaultSpec("short-read,cache-corrupt,dump-partial");
  ASSERT_TRUE(static_cast<bool>(C));
  EXPECT_TRUE(C->ShortRead);
  EXPECT_TRUE(C->CacheCorrupt);
  EXPECT_TRUE(C->DumpPartial);
  EXPECT_FALSE(C->WorkerThrow);
}

TEST(FaultInject, AllKindsParse) {
  auto C = parseFaultSpec("short-read,truncated-frame,oversized-record,"
                          "lying-length,garbage-frame,slow-client,"
                          "cache-corrupt,dump-partial,worker-throw,"
                          "worker-kill,worker-hang,worker-slow-start");
  ASSERT_TRUE(static_cast<bool>(C));
  EXPECT_TRUE(C->ShortRead && C->TruncatedFrame && C->OversizedRecord &&
              C->LyingLength && C->GarbageFrame && C->SlowClient &&
              C->CacheCorrupt && C->DumpPartial && C->WorkerThrow);
  EXPECT_TRUE(C->WorkerKill && C->WorkerHang && C->WorkerSlowStart);
}

TEST(FaultInject, WorkerProcessKindsParseIndividually) {
  auto C = parseFaultSpec("worker-kill,worker-hang");
  ASSERT_TRUE(static_cast<bool>(C));
  EXPECT_TRUE(C->WorkerKill);
  EXPECT_TRUE(C->WorkerHang);
  EXPECT_FALSE(C->WorkerSlowStart);
  EXPECT_FALSE(C->WorkerThrow);
  EXPECT_TRUE(C->any());
}

TEST(FaultInject, KindNameTableCoversEveryKind) {
  // One entry per FaultConfig flag: the table backs --fault list and the
  // parse error message, so a kind missing here is undiscoverable.
  const std::vector<std::string> &Names = faultKindNames();
  EXPECT_EQ(Names.size(), 12u);
  // Every listed name must parse, alone, to a config that is armed.
  for (const std::string &N : Names) {
    auto C = parseFaultSpec(N);
    ASSERT_TRUE(static_cast<bool>(C)) << N;
    EXPECT_TRUE(C->any()) << N << " parses but arms nothing";
  }
}

TEST(FaultInject, RenderedSpecRoundTrips) {
  // irlt-front forwards its FaultConfig to worker command lines through
  // renderFaultSpec; a kind dropped by the renderer would silently
  // disarm faults across the process boundary.
  for (const std::string &N : faultKindNames()) {
    auto C = parseFaultSpec(N);
    ASSERT_TRUE(static_cast<bool>(C)) << N;
    EXPECT_EQ(renderFaultSpec(*C), N) << "single kind must render itself";
  }
  auto Multi = parseFaultSpec("worker-kill,short-read,dump-partial");
  ASSERT_TRUE(static_cast<bool>(Multi));
  auto Back = parseFaultSpec(renderFaultSpec(*Multi));
  ASSERT_TRUE(static_cast<bool>(Back)) << renderFaultSpec(*Multi);
  EXPECT_TRUE(Back->WorkerKill && Back->ShortRead && Back->DumpPartial);
  EXPECT_FALSE(Back->WorkerHang || Back->WorkerThrow || Back->GarbageFrame);
  EXPECT_EQ(renderFaultSpec(FaultConfig{}), "");
}

TEST(FaultInject, UnknownKindIsAnErrorNamingTheOffender) {
  auto C = parseFaultSpec("worker-throw,no-such-fault");
  ASSERT_FALSE(static_cast<bool>(C));
  EXPECT_NE(C.message().find("no-such-fault"), std::string::npos);
}

TEST(FaultInject, WorkerThrowMarkerIsStable) {
  // Integration tests and docs/SERVE.md both bake in the "boom" marker;
  // renaming it silently would break recorded corpora.
  EXPECT_STREQ(WorkerThrowIdMarker, "boom");
}

TEST(FaultInject, WorkerProcessMarkersAreStable) {
  // The front integration tests and docs/FRONT.md bake these in.
  EXPECT_STREQ(WorkerKillIdMarker, "kill");
  EXPECT_STREQ(WorkerHangIdMarker, "hang");
}
