//===- tests/support/JsonTest.cpp - Shared JSON emitter/parser tests ------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

using namespace irlt;
using namespace irlt::json;

TEST(JsonWriter, FlatObject) {
  JsonWriter W;
  W.beginObject();
  W.field("a", static_cast<int64_t>(1));
  W.field("b", "two");
  W.field("c", true);
  W.nullField("d");
  W.endObject();
  EXPECT_EQ(W.take(), R"({"a":1,"b":"two","c":true,"d":null})");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter W;
  W.beginObject();
  W.key("xs").beginArray();
  W.value(static_cast<int64_t>(1));
  W.value(static_cast<int64_t>(2));
  W.beginObject();
  W.field("k", "v");
  W.endObject();
  W.endArray();
  W.key("o").beginObject();
  W.endObject();
  W.endObject();
  EXPECT_EQ(W.take(), R"({"xs":[1,2,{"k":"v"}],"o":{}})");
}

TEST(JsonWriter, StringEscaping) {
  JsonWriter W;
  W.beginObject();
  W.field("s", "a\"b\\c\nd\te\x01"
               "f");
  W.endObject();
  EXPECT_EQ(W.take(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001f\"}");
}

TEST(JsonWriter, Doubles) {
  JsonWriter W;
  W.beginObject();
  W.field("half", 0.5);
  W.field("whole", 3.0);
  W.endObject();
  std::string Out = W.take();
  EXPECT_NE(Out.find("\"half\":0.5"), std::string::npos) << Out;
}

TEST(JsonWriter, ToolRecordPrologue) {
  JsonWriter W;
  beginToolRecord(W, "irlt-test");
  W.field("ok", true);
  W.endObject();
  EXPECT_EQ(W.take(),
            R"({"schema_version":1,"tool":"irlt-test","ok":true})");
}

TEST(JsonValue, ParsesScalars) {
  ErrorOr<JsonValue> V = JsonValue::parse("42");
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(V->asInt(), 42);

  V = JsonValue::parse("-7");
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(V->asInt(), -7);

  V = JsonValue::parse("1.5");
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_DOUBLE_EQ(V->asDouble(), 1.5);

  V = JsonValue::parse("true");
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_TRUE(V->asBool());

  V = JsonValue::parse("null");
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_TRUE(V->isNull());

  V = JsonValue::parse(R"("hi")");
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(V->asString(), "hi");
}

TEST(JsonValue, ParsesStringEscapes) {
  ErrorOr<JsonValue> V = JsonValue::parse(R"("a\"b\\c\ndAe")");
  ASSERT_TRUE(static_cast<bool>(V)) << V.message();
  EXPECT_EQ(V->asString(), "a\"b\\c\ndAe");
}

TEST(JsonValue, ParsesObjectAndArray) {
  ErrorOr<JsonValue> V =
      JsonValue::parse(R"({"a": [1, 2, 3], "b": {"c": "d"}, "e": null})");
  ASSERT_TRUE(static_cast<bool>(V)) << V.message();
  ASSERT_TRUE(V->isObject());
  const JsonValue *A = V->find("a");
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->elements().size(), 3u);
  EXPECT_EQ(A->elements()[1].asInt(), 2);
  const JsonValue *B = V->find("b");
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->stringOr("c"), "d");
  EXPECT_EQ(V->find("missing"), nullptr);
}

TEST(JsonValue, AccessorDefaults) {
  ErrorOr<JsonValue> V =
      JsonValue::parse(R"({"s": "x", "i": 3, "b": true})");
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(V->stringOr("s", "d"), "x");
  EXPECT_EQ(V->stringOr("nope", "d"), "d");
  EXPECT_EQ(V->intOr("i", 9), 3);
  EXPECT_EQ(V->intOr("nope", 9), 9);
  EXPECT_TRUE(V->boolOr("b", false));
  EXPECT_FALSE(V->boolOr("nope", false));
}

TEST(JsonValue, RejectsMalformedInput) {
  EXPECT_FALSE(static_cast<bool>(JsonValue::parse("")));
  EXPECT_FALSE(static_cast<bool>(JsonValue::parse("{")));
  EXPECT_FALSE(static_cast<bool>(JsonValue::parse("{\"a\" 1}")));
  EXPECT_FALSE(static_cast<bool>(JsonValue::parse("[1, 2,]")));
  EXPECT_FALSE(static_cast<bool>(JsonValue::parse("\"unterminated")));
  // Trailing garbage after a complete value is an error, not ignored.
  EXPECT_FALSE(static_cast<bool>(JsonValue::parse("{} x")));
}

TEST(JsonValue, RoundTripsWriterOutput) {
  JsonWriter W;
  beginToolRecord(W, "irlt-opt");
  W.field("ok", true);
  W.field("text", "line1\nline2 \"quoted\"");
  W.key("list").beginArray();
  W.value(static_cast<int64_t>(-1));
  W.value("s");
  W.endArray();
  W.endObject();
  ErrorOr<JsonValue> V = JsonValue::parse(W.take());
  ASSERT_TRUE(static_cast<bool>(V)) << V.message();
  EXPECT_EQ(V->intOr("schema_version", 0), SchemaVersion);
  EXPECT_EQ(V->stringOr("tool"), "irlt-opt");
  EXPECT_EQ(V->stringOr("text"), "line1\nline2 \"quoted\"");
  ASSERT_NE(V->find("list"), nullptr);
  EXPECT_EQ(V->find("list")->elements().size(), 2u);
}
