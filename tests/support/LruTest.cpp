//===- tests/support/LruTest.cpp - Bounded LRU map tests ------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "support/Lru.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace irlt;

namespace {

std::shared_ptr<const int> val(int V) {
  return std::make_shared<const int>(V);
}

/// Resident keys from least- to most-recently used.
std::vector<std::string> order(const LruMap<int> &M) {
  std::vector<std::string> Keys;
  M.forEachLruToMru([&](const std::string &K, const int &) {
    Keys.push_back(K);
  });
  return Keys;
}

} // namespace

TEST(Lru, UnboundedNeverEvicts) {
  LruMap<int> M(0);
  for (int I = 0; I < 100; ++I)
    M.insert("k" + std::to_string(I), val(I));
  EXPECT_EQ(M.size(), 100u);
  EXPECT_EQ(M.evictions(), 0u);
  EXPECT_EQ(M.inserts(), 100u);
}

TEST(Lru, EvictsLeastRecentlyUsedInAccessOrder) {
  LruMap<int> M(2);
  M.insert("a", val(1));
  M.insert("b", val(2));
  EXPECT_NE(M.lookup("a"), nullptr); // refresh: a is now MRU
  M.insert("c", val(3));             // evicts b, the LRU
  EXPECT_EQ(M.lookup("b"), nullptr);
  EXPECT_NE(M.lookup("a"), nullptr);
  EXPECT_NE(M.lookup("c"), nullptr);
  EXPECT_EQ(M.evictions(), 1u);
}

TEST(Lru, InsertOfPresentKeyRefreshesAndReturnsExisting) {
  LruMap<int> M(2);
  auto First = M.insert("a", val(1));
  M.insert("b", val(2));
  auto Again = M.insert("a", val(99)); // dedup: refresh, keep the old value
  EXPECT_EQ(Again, First);
  EXPECT_EQ(*Again, 1);
  EXPECT_EQ(M.inserts(), 2u) << "a re-insert is not a new insert";
  M.insert("c", val(3)); // b is LRU now (a was refreshed)
  EXPECT_EQ(M.lookup("b"), nullptr);
}

TEST(Lru, EvictedEntryStaysValidForHolders) {
  LruMap<int> M(1);
  auto Held = M.insert("a", val(7));
  M.insert("b", val(8)); // evicts a
  EXPECT_EQ(M.lookup("a"), nullptr);
  EXPECT_EQ(*Held, 7) << "shared_ptr keeps evicted values alive";
}

TEST(Lru, ReconciliationInvariantHoldsUnderMixedTraffic) {
  LruMap<int> M(5);
  // A deterministic access mix (the serve eviction tests pin the same
  // invariant end to end through the Pipeline counters).
  for (int I = 0; I < 200; ++I) {
    M.insert("k" + std::to_string(I % 13), val(I));
    M.lookup("k" + std::to_string(I % 7));
  }
  EXPECT_EQ(M.inserts() - M.evictions(), M.size());
  EXPECT_LE(M.size(), 5u);
}

TEST(Lru, EvictionOrderIsDeterministic) {
  auto runOnce = [] {
    LruMap<int> M(3);
    for (int I = 0; I < 50; ++I) {
      M.insert("k" + std::to_string(I % 9), val(I));
      if (I % 4 == 0)
        M.lookup("k" + std::to_string(I % 5));
    }
    return order(M);
  };
  EXPECT_EQ(runOnce(), runOnce());
}

TEST(Lru, ForEachVisitsLruToMru) {
  LruMap<int> M(0);
  M.insert("a", val(1));
  M.insert("b", val(2));
  M.insert("c", val(3));
  M.lookup("a"); // a becomes MRU
  std::vector<std::string> Keys = order(M);
  ASSERT_EQ(Keys.size(), 3u);
  EXPECT_EQ(Keys.front(), "b"); // LRU first
  EXPECT_EQ(Keys.back(), "a");  // MRU last
}
