//===- tests/support/MathUtilsTest.cpp ------------------------------------===//

#include "support/MathUtils.h"

#include <gtest/gtest.h>

using namespace irlt;

TEST(MathUtils, FloorDivRoundsTowardNegativeInfinity) {
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(7, -2), -4);
  EXPECT_EQ(floorDiv(-7, -2), 3);
  EXPECT_EQ(floorDiv(6, 3), 2);
  EXPECT_EQ(floorDiv(-6, 3), -2);
  EXPECT_EQ(floorDiv(0, 5), 0);
}

TEST(MathUtils, CeilDivRoundsTowardPositiveInfinity) {
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(ceilDiv(7, -2), -3);
  EXPECT_EQ(ceilDiv(-7, -2), 4);
  EXPECT_EQ(ceilDiv(6, 3), 2);
}

TEST(MathUtils, FloorModFollowsDivisorSign) {
  EXPECT_EQ(floorMod(7, 3), 1);
  EXPECT_EQ(floorMod(-7, 3), 2);
  EXPECT_EQ(floorMod(7, -3), -2);
  EXPECT_EQ(floorMod(-7, -3), -1);
}

TEST(MathUtils, FloorIdentity) {
  // a == floorDiv(a,b)*b + floorMod(a,b) for every sign combination.
  for (int64_t A = -20; A <= 20; ++A)
    for (int64_t B : {-7, -3, -1, 1, 2, 5})
      EXPECT_EQ(A, floorDiv(A, B) * B + floorMod(A, B)) << A << " " << B;
}

TEST(MathUtils, Gcd) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(-12, 18), 6);
  EXPECT_EQ(gcd(0, 5), 5);
  EXPECT_EQ(gcd(0, 0), 0);
  EXPECT_EQ(gcd(17, 13), 1);
}

TEST(MathUtils, Lcm) {
  EXPECT_EQ(lcm(4, 6), 12);
  EXPECT_EQ(lcm(0, 6), 0);
  EXPECT_EQ(lcm(-4, 6), 12);
}

TEST(MathUtils, Sign) {
  EXPECT_EQ(sign(5), 1);
  EXPECT_EQ(sign(-5), -1);
  EXPECT_EQ(sign(0), 0);
}

TEST(MathUtils, ExtendedGcdBezout) {
  for (int64_t A : {12, -12, 35, 0, 7})
    for (int64_t B : {18, 5, -14, 9}) {
      int64_t X, Y;
      int64_t G = extendedGcd(A, B, X, Y);
      EXPECT_EQ(G, gcd(A, B));
      EXPECT_EQ(A * X + B * Y, G) << A << " " << B;
    }
}
