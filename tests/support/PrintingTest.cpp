//===- tests/support/PrintingTest.cpp --------------------------------------===//

#include "support/Printing.h"

#include <gtest/gtest.h>

using namespace irlt;

TEST(Printing, FormatStr) {
  EXPECT_EQ(formatStr("x=%d, s=%s", 42, "hi"), "x=42, s=hi");
  EXPECT_EQ(formatStr("%s", ""), "");
  EXPECT_EQ(formatStr("%u%%", 7u), "7%");
}

TEST(Printing, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"x"}, ", "), "x");
}

TEST(Printing, IndentedWriter) {
  IndentedWriter W;
  W.line("do i = 1, n");
  W.indent();
  W.line("body");
  W.outdent();
  W.line("enddo");
  EXPECT_EQ(W.str(), "do i = 1, n\n  body\nenddo\n");
}

TEST(Printing, IndentedWriterOutdentClampsAtZero) {
  IndentedWriter W;
  W.outdent();
  W.line("x");
  EXPECT_EQ(W.str(), "x\n");
}
