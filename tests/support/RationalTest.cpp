//===- tests/support/RationalTest.cpp --------------------------------------===//

#include "support/Rational.h"

#include <gtest/gtest.h>

using namespace irlt;

TEST(Rational, Canonicalization) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, -4), Rational(1, 2));
  EXPECT_EQ(Rational(2, -4), Rational(-1, 2));
  EXPECT_EQ(Rational(0, 7), Rational(0));
  EXPECT_EQ(Rational(2, 4).den(), 2);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LE(Rational(1, 2), Rational(1, 2));
  EXPECT_GT(Rational(7, 2), Rational(3));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, Predicates) {
  EXPECT_TRUE(Rational(4, 2).isInteger());
  EXPECT_FALSE(Rational(5, 2).isInteger());
  EXPECT_TRUE(Rational(0).isZero());
  EXPECT_TRUE(Rational(-1, 5).isNegative());
  EXPECT_TRUE(Rational(1, 5).isPositive());
}

TEST(Rational, Str) {
  EXPECT_EQ(Rational(3).str(), "3");
  EXPECT_EQ(Rational(-5, 2).str(), "-5/2");
}
