//===- tests/transform/AutoParTest.cpp -------------------------------------===//
//
// The search-based auto-parallelizer (the Section 5/6 "automatic
// transformation system" built on the framework): found sequences must
// be legal, semantically verified, and match the expected shapes on the
// classic kernels.
//
//===----------------------------------------------------------------------===//

#include "dependence/DepAnalysis.h"
#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/AutoPar.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

void verifyBest(const LoopNest &Nest, const AutoParResult &R,
                std::map<std::string, int64_t> Params) {
  ASSERT_TRUE(R.Best.has_value());
  ErrorOr<LoopNest> Out = applySequence(R.Best->Seq, Nest);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EvalConfig C;
  C.Params = std::move(Params);
  VerifyResult V = verifyTransformed(Nest, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(AutoPar, FullyIndependentNestParallelizesEverything) {
  LoopNest N = parse("do i = 1, n\n  do j = 1, n\n    a(i, j) = i + j\n"
                     "  enddo\nenddo\n");
  AutoParResult R = autoParallelize(N, analyzeDependences(N));
  ASSERT_TRUE(R.Best.has_value());
  EXPECT_EQ(R.Best->ParallelLoops, (std::vector<unsigned>{0, 1}));
  verifyBest(N, R, {{"n", 6}});
}

TEST(AutoPar, MatmulParallelizesIJ) {
  LoopNest N = parse("arrays B, C\n"
                     "do i = 1, n\n  do j = 1, n\n    do k = 1, n\n"
                     "      A(i, j) += B(i, k) * C(k, j)\n"
                     "    enddo\n  enddo\nenddo\n");
  AutoParResult R = autoParallelize(N, analyzeDependences(N));
  ASSERT_TRUE(R.Best.has_value());
  // The k-reduction stays sequential; i and j run parallel (outermost).
  EXPECT_EQ(R.Best->ParallelLoops, (std::vector<unsigned>{0, 1}));
  verifyBest(N, R, {{"n", 5}});
}

TEST(AutoPar, StencilNeedsAWavefront) {
  LoopNest N = parse("do i = 2, n - 1\n  do j = 2, n - 1\n"
                     "    a(i, j) = a(i - 1, j) + a(i, j - 1)\n"
                     "  enddo\nenddo\n");
  DepSet D = analyzeDependences(N);
  // No signed permutation can parallelize anything...
  AutoParOptions NoWave;
  NoWave.TryWavefronts = false;
  AutoParResult RP = autoParallelize(N, D, NoWave);
  EXPECT_FALSE(RP.Best.has_value());
  // ...but the hyperplane search finds the skewed inner loop.
  AutoParResult R = autoParallelize(N, D);
  ASSERT_TRUE(R.Best.has_value());
  EXPECT_EQ(R.Best->ParallelLoops, (std::vector<unsigned>{1}));
  verifyBest(N, R, {{"n", 9}});
}

TEST(AutoPar, FullySerialChainFindsNothing) {
  LoopNest N = parse("do i = 2, n\n  a(i) = a(i - 1) + 1\nenddo\n");
  AutoParResult R = autoParallelize(N, analyzeDependences(N));
  EXPECT_FALSE(R.Best.has_value());
  EXPECT_GT(R.Enumerated, 0u);
}

TEST(AutoPar, OuterCarriedPrefersInterchange) {
  // Dependence carried by i only; j is parallel in place, but swapping
  // brings the parallel loop outermost, which scores higher.
  LoopNest N = parse("do i = 2, n\n  do j = 1, n\n"
                     "    a(i, j) = a(i - 1, j) + 1\n  enddo\nenddo\n");
  AutoParResult R = autoParallelize(N, analyzeDependences(N));
  ASSERT_TRUE(R.Best.has_value());
  EXPECT_EQ(R.Best->ParallelLoops, (std::vector<unsigned>{0}));
  // The winning base must be an interchange (ReversePermute), not a
  // wavefront: cheap templates win ties and outer-parallel beats inner.
  ASSERT_GE(R.Best->Seq.size(), 1u);
  EXPECT_EQ(R.Best->Seq.steps()[0]->name(), "ReversePermute");
  verifyBest(N, R, {{"n", 7}});
}

TEST(AutoPar, ThreeDeepWavefront) {
  // Classic 3-D Gauss-Seidel-like body: all three loops carry.
  LoopNest N = parse(
      "do i = 2, n\n  do j = 2, n\n    do k = 2, n\n"
      "      a(i, j, k) = a(i - 1, j, k) + a(i, j - 1, k) + a(i, j, k - 1)\n"
      "    enddo\n  enddo\nenddo\n");
  AutoParResult R = autoParallelize(N, analyzeDependences(N));
  ASSERT_TRUE(R.Best.has_value());
  // The hyperplane i+j+k sequentializes one loop and parallelizes two.
  EXPECT_EQ(R.Best->ParallelLoops.size(), 2u);
  verifyBest(N, R, {{"n", 5}});
}

TEST(AutoPar, SearchNeverMutatesTheNest) {
  LoopNest N = parse("do i = 2, n\n  do j = 1, n\n"
                     "    a(i, j) = a(i - 1, j) + 1\n  enddo\nenddo\n");
  std::string Before = N.str();
  autoParallelize(N, analyzeDependences(N));
  EXPECT_EQ(N.str(), Before);
}

TEST(AutoPar, CountsAreReported) {
  LoopNest N = parse("do i = 1, n\n  do j = 1, n\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  AutoParResult R = autoParallelize(N, analyzeDependences(N));
  EXPECT_GT(R.Enumerated, 8u);
  EXPECT_GT(R.Legal, 0u);
  EXPECT_LE(R.Legal, R.Enumerated);
}

} // namespace
