//===- tests/transform/AutoVecTest.cpp -------------------------------------===//
//
// The vector-execution objective (Section 1 lists it with parallel
// execution and locality): autoVectorize must find sequences whose
// innermost loop carries no dependence, verified by execution.
//
//===----------------------------------------------------------------------===//

#include "dependence/DepAnalysis.h"
#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/AutoPar.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

TEST(AutoVec, AlreadyVectorizableKeepsIdentity) {
  LoopNest N = parse("do i = 2, n\n  do j = 1, n\n"
                     "    a(i, j) = a(i - 1, j) + 1\n  enddo\nenddo\n");
  AutoParResult R = autoVectorize(N, analyzeDependences(N));
  ASSERT_TRUE(R.Best.has_value());
  // Inner loop j is dependence-free in place: one Parallelize step only.
  EXPECT_EQ(R.Best->Seq.size(), 1u);
  EXPECT_EQ(R.Best->ParallelLoops, (std::vector<unsigned>{1}));
}

TEST(AutoVec, InnerCarriedNeedsInterchange) {
  // The dependence is carried by the inner loop; moving it outward makes
  // the (new) innermost loop vectorizable.
  LoopNest N = parse("do i = 1, n\n  do j = 2, n\n"
                     "    a(i, j) = a(i, j - 1) + 1\n  enddo\nenddo\n");
  DepSet D = analyzeDependences(N);
  EXPECT_EQ(D.str(), "{(0, 1)}");
  AutoParResult R = autoVectorize(N, D);
  ASSERT_TRUE(R.Best.has_value());
  ASSERT_GE(R.Best->Seq.size(), 2u);
  EXPECT_EQ(R.Best->Seq.steps()[0]->name(), "ReversePermute");

  ErrorOr<LoopNest> Out = applySequence(R.Best->Seq, N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->Loops[1].Kind, LoopKind::ParDo);
  EvalConfig C;
  C.Params["n"] = 7;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(AutoVec, StencilVectorizesViaWavefront) {
  LoopNest N = parse("do i = 2, n - 1\n  do j = 2, n - 1\n"
                     "    a(i, j) = a(i - 1, j) + a(i, j - 1)\n"
                     "  enddo\nenddo\n");
  AutoParResult R = autoVectorize(N, analyzeDependences(N));
  ASSERT_TRUE(R.Best.has_value());
  ErrorOr<LoopNest> Out = applySequence(R.Best->Seq, N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->Loops[Out->numLoops() - 1].Kind, LoopKind::ParDo);
  EvalConfig C;
  C.Params["n"] = 10;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(AutoVec, SerialChainHasNoVectorForm) {
  LoopNest N = parse("do i = 3, n\n  a(i) = a(i - 1) + a(i - 2)\nenddo\n");
  AutoParResult R = autoVectorize(N, analyzeDependences(N));
  EXPECT_FALSE(R.Best.has_value());
}

} // namespace
