//===- tests/transform/BlockTest.cpp ---------------------------------------===//

#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

TEST(Block, RectangularPairStructure) {
  LoopNest N = parse("do i = 1, n\n  do j = 1, n\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  TemplateRef T = makeBlock(2, 1, 2, {Expr::var("b1"), Expr::var("b2")});
  ASSERT_EQ(T->checkPreconditions(N), "");
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  ASSERT_EQ(Out->numLoops(), 4u);
  // Block loops (doubled names), then element loops reusing the names.
  EXPECT_EQ(Out->Loops[0].IndexVar, "ii");
  EXPECT_EQ(Out->Loops[1].IndexVar, "jj");
  EXPECT_EQ(Out->Loops[2].IndexVar, "i");
  EXPECT_EQ(Out->Loops[3].IndexVar, "j");
  EXPECT_EQ(Out->Loops[0].Step->str(), "b1");
  EXPECT_EQ(Out->Loops[1].Step->str(), "b2");
  // Element loop clamps (Table 4).
  EXPECT_EQ(Out->Loops[2].Lower->str(), "max(ii, 1)");
  EXPECT_EQ(Out->Loops[2].Upper->str(), "min(b1 + ii - 1, n)");
  EXPECT_TRUE(Out->Inits.empty()); // element vars reuse the names
}

TEST(Block, SemanticEquivalenceAcrossSizes) {
  LoopNest N = parse("do i = 1, n\n  do j = 1, n\n"
                     "    a(i, j) = a(i, j) + i*j\n  enddo\nenddo\n");
  TemplateRef T = makeBlock(2, 1, 2, {Expr::var("b1"), Expr::var("b2")});
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  for (int64_t NN : {1, 5, 8}) {
    for (int64_t B1 : {1, 3, 10}) {
      EvalConfig C;
      C.Params = {{"n", NN}, {"b1", B1}, {"b2", 2}};
      VerifyResult V = verifyTransformed(N, *Out, C);
      EXPECT_TRUE(V.Ok) << "n=" << NN << " b1=" << B1 << ": " << V.Problem;
    }
  }
}

TEST(Block, StridedLoopBlocks) {
  LoopNest N = parse("do i = 1, 30, 3\n  a(i) = i\nenddo\n");
  TemplateRef T = makeBlock(1, 1, 1, {Expr::intConst(4)});
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  // Block step = s * bsize = 12.
  EXPECT_EQ(Out->Loops[0].Step->str(), "12");
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Block, NegativeStepBlocks) {
  LoopNest N = parse("do i = 20, 1, -2\n  a(i) = i\nenddo\n");
  TemplateRef T = makeBlock(1, 1, 1, {Expr::intConst(3)});
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->Loops[0].Step->str(), "-6");
  // Element loop keeps the negative stride and clamps with min/max
  // swapped.
  EXPECT_EQ(Out->Loops[1].Step->str(), "-2");
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Block, TrapezoidXminXmaxSubstitution) {
  // Table 4's substitution: bounds of inner blocked loops get the block
  // extremes of the outer blocked variables.
  LoopNest N = parse("do i = 1, n\n  do j = i, n\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  TemplateRef T = makeBlock(2, 1, 2, {Expr::intConst(4), Expr::intConst(4)});
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  // jj's lower bound references ii (the minimizing extreme of l_j = i is
  // the block minimum, i.e. ii itself).
  EXPECT_EQ(Out->Loops[1].Lower->str(), "ii");
  EvalConfig C;
  C.Params["n"] = 13;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Block, DecreasingTrapezoid) {
  // l_j = n - i + 1: negative coefficient of i, so the *maximum* extreme
  // of i's block is substituted into jj's lower bound.
  LoopNest N = parse("do i = 1, n\n  do j = n - i + 1, n\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  TemplateRef T = makeBlock(2, 1, 2, {Expr::intConst(3), Expr::intConst(3)});
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  // n - (ii+2) + 1 in canonical linear form.
  EXPECT_EQ(Out->Loops[1].Lower->str(), "n - ii - 1");
  EvalConfig C;
  C.Params["n"] = 11;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Block, InnerRangeOnly) {
  LoopNest N = parse("do t = 1, 4\n  do i = 1, n\n    do j = 1, n\n"
                     "      a(i, j) = a(i, j) + t\n"
                     "    enddo\n  enddo\nenddo\n");
  TemplateRef T = makeBlock(3, 2, 3, {Expr::intConst(3), Expr::intConst(5)});
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  ASSERT_EQ(Out->numLoops(), 5u);
  EXPECT_EQ(Out->Loops[0].IndexVar, "t");
  EXPECT_EQ(Out->Loops[1].IndexVar, "ii");
  EXPECT_EQ(Out->Loops[2].IndexVar, "jj");
  EvalConfig C;
  C.Params["n"] = 9;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Block, PreconditionRejectsNonlinearInnerBound) {
  LoopNest N = parse("do i = 1, n\n  do j = colstr(i), n\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  TemplateRef T = makeBlock(2, 1, 2, {Expr::intConst(2), Expr::intConst(2)});
  std::string E = T->checkPreconditions(N);
  EXPECT_NE(E.find("nonlinear"), std::string::npos) << E;
  // Blocking only loop j itself (range 2..2) is fine: no pair constraint.
  TemplateRef T2 = makeBlock(2, 2, 2, {Expr::intConst(2)});
  EXPECT_EQ(T2->checkPreconditions(N), "");
}

TEST(Block, PreconditionRejectsSymbolicStep) {
  LoopNest N = parse("do i = 1, n, s\n  a(i) = 1\nenddo\n");
  TemplateRef T = makeBlock(1, 1, 1, {Expr::intConst(2)});
  EXPECT_NE(T->checkPreconditions(N), "");
}

TEST(Block, FreshNamesAvoidCollisions) {
  // A variable "ii" already exists: the block variable must pick another.
  LoopNest N = parse("do ii = 1, n\n  do i = 1, n\n    a(ii, i) = 1\n"
                     "  enddo\nenddo\n");
  TemplateRef T = makeBlock(2, 2, 2, {Expr::intConst(2)});
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->Loops[1].IndexVar, "ii_"); // "ii" taken
  EvalConfig C;
  C.Params["n"] = 5;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

} // namespace
