//===- tests/transform/CoalesceTest.cpp ------------------------------------===//

#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

TEST(Coalesce, PairCollapsesToNormalizedLoop) {
  LoopNest N = parse("do i = 1, n\n  do j = 1, m\n    a(i, j) = i + j\n"
                     "  enddo\nenddo\n");
  TemplateRef T = makeCoalesce(2, 1, 2);
  ASSERT_EQ(T->checkPreconditions(N), "");
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  ASSERT_EQ(Out->numLoops(), 1u);
  EXPECT_EQ(Out->Loops[0].IndexVar, "ijc");
  EXPECT_EQ(Out->Loops[0].Lower->str(), "1");
  EXPECT_EQ(Out->Loops[0].Step->str(), "1");
  EXPECT_EQ(Out->Loops[0].Upper->str(), "n*m"); // product of trip counts
  // Init statements recover i and j via div/mod.
  ASSERT_EQ(Out->Inits.size(), 2u);
  EXPECT_EQ(Out->Inits[0].Var, "i");
  EXPECT_EQ(Out->Inits[1].Var, "j");
  EvalConfig C;
  C.Params = {{"n", 4}, {"m", 7}};
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Coalesce, PreservesExecutionOrderExactly) {
  // Coalescing does not reorder iterations at all.
  LoopNest N = parse("do i = 1, 3\n  do j = 1, 4\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  TemplateRef T = makeCoalesce(2, 1, 2);
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EvalConfig C;
  ArrayStore S1, S2;
  EvalResult R1 = evaluate(N, C, S1);
  EvalResult R2 = evaluate(*Out, C, S2);
  EXPECT_EQ(R1.Instances, R2.Instances);
}

TEST(Coalesce, StridedAndOffsetLoops) {
  LoopNest N = parse("do i = 2, 13, 3\n  do j = 5, 1, -2\n    a(i, j) = i*j\n"
                     "  enddo\nenddo\n");
  TemplateRef T = makeCoalesce(2, 1, 2);
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->Loops[0].Upper->str(), "12"); // 4 * 3 iterations
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Coalesce, InnerPairOfTriple) {
  LoopNest N = parse("do t = 1, 3\n  do i = 1, n\n    do j = 1, 4\n"
                     "      a(t, i, j) = t + i + j\n"
                     "    enddo\n  enddo\nenddo\n");
  TemplateRef T = makeCoalesce(3, 2, 3);
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  ASSERT_EQ(Out->numLoops(), 2u);
  EXPECT_EQ(Out->Loops[0].IndexVar, "t");
  EXPECT_EQ(Out->Loops[1].IndexVar, "ijc");
  EvalConfig C;
  C.Params["n"] = 5;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Coalesce, SingleLoopActsAsNormalization) {
  LoopNest N = parse("do i = 4, 19, 5\n  a(i) = i\nenddo\n");
  TemplateRef T = makeCoalesce(1, 1, 1);
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->Loops[0].Lower->str(), "1");
  EXPECT_EQ(Out->Loops[0].Upper->str(), "4");
  EXPECT_EQ(Out->Loops[0].Step->str(), "1");
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Coalesce, BandBoundsMayDependOnOuterLoops) {
  // The coalesced band's bounds depend on t (outside the band): allowed.
  LoopNest N = parse("do t = 1, 4\n  do i = t, t + 3\n    do j = 1, 2\n"
                     "      a(t, i, j) = 1\n"
                     "    enddo\n  enddo\nenddo\n");
  TemplateRef T = makeCoalesce(3, 2, 3);
  ASSERT_EQ(T->checkPreconditions(N), "");
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Coalesce, PreconditionRejectsTriangularBand) {
  LoopNest N = parse("do i = 1, n\n  do j = i, n\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  TemplateRef T = makeCoalesce(2, 1, 2);
  std::string E = T->checkPreconditions(N);
  EXPECT_NE(E.find("exceeds invar"), std::string::npos) << E;
}

TEST(Coalesce, InnerLoopBoundsSubstituteRecovery) {
  // A loop below the band references a coalesced variable in its bounds:
  // the recovery expression is substituted in place (Figure 7's tmp).
  LoopNest N = parse("do i = 1, 4\n  do j = 1, 3\n    do k = i, i + 1\n"
                     "      a(i, j, k) = 1\n"
                     "    enddo\n  enddo\nenddo\n");
  TemplateRef T = makeCoalesce(3, 1, 2);
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  ASSERT_EQ(Out->numLoops(), 2u);
  // k's bounds no longer mention i directly.
  EXPECT_FALSE(Out->Loops[1].Lower->containsVar("i"));
  EXPECT_TRUE(Out->Loops[1].Lower->containsVar("ijc"));
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Coalesce, ParDoOnlyWhenAllParDo) {
  LoopNest N1 = parse("pardo i = 1, 3\n  pardo j = 1, 3\n    a(i, j) = 1\n"
                      "  enddo\nenddo\n");
  ErrorOr<LoopNest> Out1 = makeCoalesce(2, 1, 2)->apply(N1);
  ASSERT_TRUE(static_cast<bool>(Out1));
  EXPECT_EQ(Out1->Loops[0].Kind, LoopKind::ParDo);

  LoopNest N2 = parse("pardo i = 1, 3\n  do j = 1, 3\n    a(i, j) = 1\n"
                      "  enddo\nenddo\n");
  ErrorOr<LoopNest> Out2 = makeCoalesce(2, 1, 2)->apply(N2);
  ASSERT_TRUE(static_cast<bool>(Out2));
  EXPECT_EQ(Out2->Loops[0].Kind, LoopKind::Do);
}

} // namespace
