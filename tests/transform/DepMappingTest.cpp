//===- tests/transform/DepMappingTest.cpp - Table 2, rule by rule ---------===//
//
// Unit tests for every dependence-vector mapping rule of Table 2, checked
// entry-by-entry against the paper's definitions (blockmap, imap,
// mergedirs, parmap, reverse, matrix product).
//
//===----------------------------------------------------------------------===//

#include "dependence/DepAnalysis.h"
#include "ir/Parser.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

DepSet single(std::vector<DepElem> Elems) {
  DepSet D;
  D.insert(DepVector(std::move(Elems)));
  return D;
}

//===--- ReversePermute -----------------------------------------------------=

TEST(Table2, ReversePermuteMovesAndReverses) {
  // rev = [F T F], perm = [3 1 2]: d'[3] = d1, d'[1] = -d2, d'[2] = d3.
  TemplateRef T = makeReversePermute(3, {false, true, false}, {2, 0, 1});
  DepSet D = T->mapDependences(
      single({DepElem::distance(1), DepElem::pos(), DepElem::zeroNeg()}));
  EXPECT_EQ(D.str(), "{(-, 0-, 1)}");
}

TEST(Table2, ReversePermuteIdentityIsNoop) {
  TemplateRef T = makeReversePermute(2, {false, false}, {0, 1});
  DepSet In = single({DepElem::nonZero(), DepElem::distance(-4)});
  EXPECT_EQ(T->mapDependences(In).str(), In.str());
}

//===--- Parallelize --------------------------------------------------------=

TEST(Table2, ParallelizeSymmetrizesFlaggedEntries) {
  TemplateRef T = makeParallelize(3, {true, false, true});
  DepSet D = T->mapDependences(
      single({DepElem::distance(2), DepElem::distance(2), DepElem::zero()}));
  EXPECT_EQ(D.str(), "{(+-, 2, 0)}");
}

TEST(Table2, ParallelizeZeroStaysZero) {
  TemplateRef T = makeParallelize(1, {true});
  EXPECT_EQ(T->mapDependences(single({DepElem::zero()})).str(), "{(0)}");
}

TEST(Table2, ParallelizeMakesCarriedLoopIllegalByLexTest) {
  // The point of parmap: a dependence carried at a parallelized level
  // becomes lex-negative-capable.
  TemplateRef T = makeParallelize(2, {true, false});
  DepSet D = T->mapDependences(
      single({DepElem::distance(1), DepElem::distance(0)}));
  EXPECT_FALSE(D.allLexNonNegative());
  // Carried strictly outside the parallel loop: stays legal.
  TemplateRef T2 = makeParallelize(2, {false, true});
  DepSet D2 = T2->mapDependences(
      single({DepElem::distance(1), DepElem::distance(5)}));
  EXPECT_TRUE(D2.allLexNonNegative());
}

//===--- Block ---------------------------------------------------------------

TEST(Table2, BlockmapZero) {
  TemplateRef T = makeBlock(1, 1, 1, {Expr::intConst(4)});
  EXPECT_EQ(T->mapDependences(single({DepElem::zero()})).str(), "{(0, 0)}");
}

TEST(Table2, BlockmapStar) {
  TemplateRef T = makeBlock(1, 1, 1, {Expr::intConst(4)});
  EXPECT_EQ(T->mapDependences(single({DepElem::any()})).str(), "{(*, *)}");
}

TEST(Table2, BlockmapUnitDistance) {
  // |d| = 1: {(0, d), (d, *)}.
  TemplateRef T = makeBlock(1, 1, 1, {Expr::intConst(4)});
  EXPECT_EQ(T->mapDependences(single({DepElem::distance(1)})).str(),
            "{(0, 1), (1, *)}");
  EXPECT_EQ(T->mapDependences(single({DepElem::distance(-1)})).str(),
            "{(-1, *), (0, -1)}");
}

TEST(Table2, BlockmapGeneralDistanceAndDirection) {
  TemplateRef T = makeBlock(1, 1, 1, {Expr::intConst(4)});
  // d = 5: {(0, 5), (+, *)}.
  EXPECT_EQ(T->mapDependences(single({DepElem::distance(5)})).str(),
            "{(0, 5), (+, *)}");
  // 0+ direction: {(0, 0+), (0+, *)}.
  EXPECT_EQ(T->mapDependences(single({DepElem::zeroPos()})).str(),
            "{(0, 0+), (0+, *)}");
}

TEST(Table2, BlockPositionsAndFanOut) {
  // Block(4, 2, 3): vector (a, b, c, d) maps to
  // (a, B(b), B(c), E(b), E(c), d).
  TemplateRef T = makeBlock(4, 2, 3, {Expr::intConst(2), Expr::intConst(2)});
  DepSet D = T->mapDependences(single({DepElem::distance(7), DepElem::zero(),
                                       DepElem::distance(1),
                                       DepElem::neg()}));
  // b = 0 -> (0,0); c = 1 -> {(0,1),(1,*)}: two output vectors.
  EXPECT_EQ(D.str(), "{(7, 0, 0, 0, 1, -), (7, 0, 1, 0, *, -)}");
}

//===--- Coalesce -------------------------------------------------------------

TEST(Table2, MergedirsOuterNonzeroDominates) {
  // mergedirs(+, -) = + (the paper's example).
  TemplateRef T = makeCoalesce(2, 1, 2);
  EXPECT_EQ(T->mapDependences(single({DepElem::pos(), DepElem::neg()})).str(),
            "{(+)}");
  EXPECT_EQ(
      T->mapDependences(single({DepElem::distance(2), DepElem::neg()})).str(),
      "{(+)}");
}

TEST(Table2, MergedirsZeroPassesInner) {
  TemplateRef T = makeCoalesce(2, 1, 2);
  EXPECT_EQ(T->mapDependences(single({DepElem::zero(), DepElem::neg()})).str(),
            "{(-)}");
  EXPECT_EQ(T->mapDependences(single({DepElem::zero(), DepElem::zero()})).str(),
            "{(0)}");
}

TEST(Table2, MergedirsSummaries) {
  TemplateRef T = makeCoalesce(2, 1, 2);
  // 0+ outer, - inner: zero case contributes -, positive case +: +-.
  EXPECT_EQ(
      T->mapDependences(single({DepElem::zeroPos(), DepElem::neg()})).str(),
      "{(+-)}");
  // 0- outer, 0+ inner: {neg} u {zero,pos} = *.
  EXPECT_EQ(
      T->mapDependences(single({DepElem::zeroNeg(), DepElem::zeroPos()})).str(),
      "{(*)}");
}

TEST(Table2, CoalescePositionsPreserved) {
  TemplateRef T = makeCoalesce(4, 2, 3);
  DepSet D = T->mapDependences(single({DepElem::distance(3), DepElem::zero(),
                                       DepElem::pos(), DepElem::distance(-2)}));
  EXPECT_EQ(D.str(), "{(3, +, -2)}");
}

//===--- Interleave ------------------------------------------------------------

TEST(Table2, ImapZeroAndStar) {
  TemplateRef T = makeInterleave(1, 1, 1, {Expr::intConst(4)});
  EXPECT_EQ(T->mapDependences(single({DepElem::zero()})).str(), "{(0, 0)}");
  EXPECT_EQ(T->mapDependences(single({DepElem::any()})).str(), "{(*, *)}");
}

TEST(Table2, ImapPositive) {
  TemplateRef T = makeInterleave(1, 1, 1, {Expr::intConst(4)});
  // d = 2: same element ordinal with phase diff 2, or ordinal advanced.
  EXPECT_EQ(T->mapDependences(single({DepElem::distance(2)})).str(),
            "{(2, 0), (*, +)}");
  EXPECT_EQ(T->mapDependences(single({DepElem::pos()})).str(),
            "{(+, 0), (*, +)}");
}

TEST(Table2, ImapSummariesUnion) {
  TemplateRef T = makeInterleave(1, 1, 1, {Expr::intConst(3)});
  EXPECT_EQ(T->mapDependences(single({DepElem::zeroPos()})).str(),
            "{(0, 0), (+, 0), (*, +)}");
}

TEST(Table2, InterleavePositionsMirrorBlock) {
  TemplateRef T =
      makeInterleave(3, 2, 3, {Expr::intConst(2), Expr::intConst(2)});
  DepSet D = T->mapDependences(
      single({DepElem::distance(1), DepElem::zero(), DepElem::zero()}));
  EXPECT_EQ(D.str(), "{(1, 0, 0, 0, 0)}");
}

//===--- Unimodular -------------------------------------------------------------

TEST(Table2, UnimodularMatrixVectorProduct) {
  TemplateRef T = makeUnimodular(2, UnimodularMatrix(2, {1, 1, 1, 0}));
  DepSet In;
  In.insert(DepVector::distances({1, 0}));
  In.insert(DepVector::distances({0, 1}));
  EXPECT_EQ(T->mapDependences(In).str(), "{(1, 0), (1, 1)}");
}

//===--- Cross-cutting -----------------------------------------------------------

TEST(Table2, MappingPreservesSetSemantics) {
  // Mapping a whole set equals the union of mapping singletons.
  DepSet In;
  In.insert(DepVector({DepElem::distance(1), DepElem::pos()}));
  In.insert(DepVector({DepElem::zero(), DepElem::nonZero()}));
  TemplateRef T = makeBlock(2, 1, 2, {Expr::intConst(3), Expr::intConst(3)});
  DepSet Whole = T->mapDependences(In);
  DepSet Union;
  for (const DepVector &V : In.vectors()) {
    DepSet One;
    One.insert(V);
    DepSet Mapped = T->mapDependences(One);
    for (const DepVector &W : Mapped.vectors())
      Union.insert(W);
  }
  EXPECT_EQ(Whole.str(), Union.str());
}

//===--- Strided-loop dependence convention ---------------------------------=
//
// Regression pins for the former "Known soundness gap" (ROADMAP, fixed in
// ISSUE 3): dependence entries of a constant-step != 1 loop are expressed
// in *trip-counter* units (x = l + s*c, entry = cJ - cI), matching the
// normalized space the Unimodular bounds rules operate in. Getting this
// wrong is what let permuting sequences reorder dependent instances on
// strided nests. The exact sets below come from the fuzzer's shrunk
// reproducers (case seeds 16900907164382347021 and 16273675876593014471).

DepSet depsOf(const std::string &Src) {
  ErrorOr<LoopNest> Nest = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(Nest)) << Nest.message();
  return analyzeDependences(*Nest);
}

TEST(StridedDeps, TripCounterUnitsUnderLoopVariableLowerBound) {
  // do j = i+1, n, 2: an i-distance of 2 shifts j's start by 2, so the
  // same j value is one trip *earlier* - the hat-unit entry is -1, and
  // the strided bound constraints make it exact (not a direction).
  EXPECT_EQ(depsOf("do i = 1, n\n"
                   "  do j = i + 1, n, 2\n"
                   "    do k = 1, n\n"
                   "      a(i, j, k) = a(i, j, k) + a(i - 2, j, k)\n"
                   "    enddo\n"
                   "  enddo\n"
                   "enddo\n")
                .str(),
            "{(2, -1, 0)}");
}

TEST(StridedDeps, TripCounterUnitsForStridedStartAtOuterIndex) {
  // do k = j, n, 2 with a j-2 carried dependence: same k value, start
  // shifted by -2, so the k trip counter differs by -1 in hat units.
  EXPECT_EQ(depsOf("do i = 1, n\n"
                   "  do j = 1, n\n"
                   "    do k = j, n, 2\n"
                   "      a(i, j, k) = a(i, j, k) + a(i, j - 2, k)\n"
                   "    enddo\n"
                   "  enddo\n"
                   "enddo\n")
                .str(),
            "{(0, 2, -1)}");
}

TEST(StridedDeps, UnitStepKeepsIndexValueUnits) {
  // Control: with step 1 the same nest's entries stay index-value deltas.
  EXPECT_EQ(depsOf("do i = 1, n\n"
                   "  do j = 1, n\n"
                   "    do k = j, n\n"
                   "      a(i, j, k) = a(i, j, k) + a(i, j - 2, k)\n"
                   "    enddo\n"
                   "  enddo\n"
                   "enddo\n")
                .str(),
            "{(0, 2, 0)}");
}

} // namespace
