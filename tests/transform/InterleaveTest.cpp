//===- tests/transform/InterleaveTest.cpp ----------------------------------===//

#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

TEST(Interleave, SingleLoopStructure) {
  LoopNest N = parse("do i = 1, n\n  a(i) = i\nenddo\n");
  TemplateRef T = makeInterleave(1, 1, 1, {Expr::var("f")});
  ASSERT_EQ(T->checkPreconditions(N), "");
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  ASSERT_EQ(Out->numLoops(), 2u);
  // Phase loop 0..f-1, then the original loop striding by f.
  EXPECT_EQ(Out->Loops[0].IndexVar, "ip");
  EXPECT_EQ(Out->Loops[0].Lower->str(), "0");
  EXPECT_EQ(Out->Loops[0].Upper->str(), "f - 1");
  EXPECT_EQ(Out->Loops[1].IndexVar, "i");
  EXPECT_EQ(Out->Loops[1].Lower->str(), "ip + 1");
  EXPECT_EQ(Out->Loops[1].Step->str(), "f");
  EXPECT_TRUE(Out->Inits.empty());
}

TEST(Interleave, SemanticEquivalenceAcrossFactors) {
  LoopNest N = parse("do i = 1, n\n  a(i) = a(i) + i\nenddo\n");
  TemplateRef T = makeInterleave(1, 1, 1, {Expr::var("f")});
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  for (int64_t NN : {1, 7, 12})
    for (int64_t F : {1, 2, 5}) {
      EvalConfig C;
      C.Params = {{"n", NN}, {"f", F}};
      VerifyResult V = verifyTransformed(N, *Out, C);
      EXPECT_TRUE(V.Ok) << "n=" << NN << " f=" << F << ": " << V.Problem;
    }
}

TEST(Interleave, PairWithStridesAndOffsets) {
  LoopNest N = parse("do i = 3, 20, 2\n  do j = 1, 9, 3\n    a(i, j) = i\n"
                     "  enddo\nenddo\n");
  TemplateRef T =
      makeInterleave(2, 1, 2, {Expr::intConst(2), Expr::intConst(2)});
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  ASSERT_EQ(Out->numLoops(), 4u);
  // Element strides multiply: 2*2 = 4 and 2*3 = 6.
  EXPECT_EQ(Out->Loops[2].Step->str(), "4");
  EXPECT_EQ(Out->Loops[3].Step->str(), "6");
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Interleave, InnerRangeOfTriple) {
  LoopNest N = parse("do t = 1, 3\n  do i = 1, n\n    do j = 1, n\n"
                     "      a(i, j) = a(i, j) + t\n"
                     "    enddo\n  enddo\nenddo\n");
  TemplateRef T =
      makeInterleave(3, 2, 3, {Expr::intConst(3), Expr::intConst(2)});
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  ASSERT_EQ(Out->numLoops(), 5u);
  EXPECT_EQ(Out->Loops[0].IndexVar, "t");
  EXPECT_EQ(Out->Loops[1].IndexVar, "ip");
  EXPECT_EQ(Out->Loops[2].IndexVar, "jp");
  EXPECT_EQ(Out->Loops[3].IndexVar, "i");
  EXPECT_EQ(Out->Loops[4].IndexVar, "j");
  EvalConfig C;
  C.Params["n"] = 7;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Interleave, TriangularBoundsWithinRangeAreLinearAndWork) {
  // l_j depends linearly on i (both in the range): allowed by Table 3.
  LoopNest N = parse("do i = 1, 9\n  do j = i, 9\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  TemplateRef T =
      makeInterleave(2, 1, 2, {Expr::intConst(2), Expr::intConst(3)});
  ASSERT_EQ(T->checkPreconditions(N), "");
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Interleave, PreconditionRejectsNonlinearInRange) {
  LoopNest N = parse("do i = 1, n\n  do j = colstr(i), n\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  TemplateRef T =
      makeInterleave(2, 1, 2, {Expr::intConst(2), Expr::intConst(2)});
  EXPECT_NE(T->checkPreconditions(N), "");
}

TEST(Interleave, PhaseNamesAvoidCollisions) {
  LoopNest N = parse("do ip = 1, 4\n  do i = 1, 4\n    a(ip, i) = 1\n"
                     "  enddo\nenddo\n");
  TemplateRef T = makeInterleave(2, 2, 2, {Expr::intConst(2)});
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->Loops[1].IndexVar, "ip_");
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

} // namespace
