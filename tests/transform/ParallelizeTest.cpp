//===- tests/transform/ParallelizeTest.cpp ---------------------------------===//

#include "dependence/DepAnalysis.h"
#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

TEST(Parallelize, FlipsLoopKinds) {
  LoopNest N = parse("do i = 1, n\n  do j = 1, n\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  TemplateRef T = makeParallelize(2, {false, true});
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->Loops[0].Kind, LoopKind::Do);
  EXPECT_EQ(Out->Loops[1].Kind, LoopKind::ParDo);
  EXPECT_TRUE(Out->Inits.empty());
}

TEST(Parallelize, NoPreconditions) {
  LoopNest N = parse("do i = 1, n\n  do j = colstr(i), n, s\n"
                     "    a(i, j) = 1\n  enddo\nenddo\n");
  // Even nonlinear bounds and symbolic steps are fine (Table 3: none).
  EXPECT_EQ(makeParallelize(2, {true, true})->checkPreconditions(N), "");
}

TEST(Parallelize, LegalOnIndependentLoop) {
  LoopNest N = parse("do i = 1, n\n  do j = 2, n\n"
                     "    a(i, j) = a(i, j - 1) + 1\n  enddo\nenddo\n");
  DepSet D = analyzeDependences(N); // (0, 1): carried by j only
  EXPECT_EQ(D.str(), "{(0, 1)}");
  // Parallelizing i is legal.
  LegalityResult RI = isLegal(
      TransformSequence::of({makeParallelize(2, {true, false})}), N, D);
  EXPECT_TRUE(RI.Legal) << RI.Reason;
  // Parallelizing j is not.
  LegalityResult RJ = isLegal(
      TransformSequence::of({makeParallelize(2, {false, true})}), N, D);
  EXPECT_FALSE(RJ.Legal);
}

TEST(Parallelize, InteractsWithLaterReordering) {
  // Parallel is "just another transformation": parallelize i (legal),
  // then interchange - now the parallel loop is inside and the dependence
  // (0,1) became (1, +-)... wait, parmap keeps position; interchange
  // moves the symmetric entry to the front where it can be negative:
  // the sequence must be illegal even though each stage looks plausible.
  LoopNest N = parse("do i = 1, n\n  do j = 2, n\n"
                     "    a(i, j) = a(i, j - 1) + 1\n  enddo\nenddo\n");
  DepSet D = analyzeDependences(N);
  TransformSequence Seq = TransformSequence::of(
      {makeParallelize(2, {false, true}), makeInterchange(2, 0, 1)});
  // (0,1) -par(j)-> (0,+-) -swap-> (+-,0): lex-negative capable: illegal.
  LegalityResult R = isLegal(Seq, N, D);
  EXPECT_FALSE(R.Legal);

  // Whereas parallelizing i then interchanging keeps (1) at the front
  // after the swap: (0,1) -par(i)-> (0,1) -swap-> (1,0): legal.
  TransformSequence Seq2 = TransformSequence::of(
      {makeParallelize(2, {true, false}), makeInterchange(2, 0, 1)});
  LegalityResult R2 = isLegal(Seq2, N, D);
  EXPECT_TRUE(R2.Legal) << R2.Reason;
}

TEST(Parallelize, VerifierCatchesIllegalParallelization) {
  // Ground-truth cross-check: running the illegally parallelized nest
  // trips the pardo-unordered check in the verifier.
  LoopNest N = parse("do i = 2, n\n  a(i) = a(i - 1) + 1\nenddo\n");
  TemplateRef T = makeParallelize(1, {true});
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out));
  EvalConfig C;
  C.Params["n"] = 6;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Problem.find("pardo"), std::string::npos) << V.Problem;
}

TEST(Parallelize, FusionOfAdjacentParallelizes) {
  TransformSequence Seq = TransformSequence::of(
      {makeParallelize(2, {true, false}), makeParallelize(2, {false, true})});
  TransformSequence Red = Seq.reduced();
  ASSERT_EQ(Red.size(), 1u);
  const auto *P = dyn_cast<ParallelizeTemplate>(Red.steps()[0].get());
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->parFlag(), (std::vector<bool>{true, true}));
}

} // namespace
