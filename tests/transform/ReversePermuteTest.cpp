//===- tests/transform/ReversePermuteTest.cpp ------------------------------===//

#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

TEST(ReversePermute, InterchangeKeepsNamesNoInits) {
  LoopNest N = parse("do i = 1, n\n  do j = 1, m\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  TemplateRef T = makeInterchange(2, 0, 1);
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->Loops[0].IndexVar, "j");
  EXPECT_EQ(Out->Loops[1].IndexVar, "i");
  EXPECT_TRUE(Out->Inits.empty()); // the Section 4.2 advantage
  EvalConfig C;
  C.Params = {{"n", 4}, {"m", 6}};
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(ReversePermute, ReversalRewritesBoundsInPlace) {
  LoopNest N = parse("do i = 2, 11, 3\n  a(i) = i\nenddo\n");
  TemplateRef T = makeReversePermute(1, {true}, {0});
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  // Iterates 11, 8, 5, 2: last = 2 + floor(9/3)*3 = 11.
  EXPECT_EQ(Out->Loops[0].Lower->str(), "11");
  EXPECT_EQ(Out->Loops[0].Upper->str(), "2");
  EXPECT_EQ(Out->Loops[0].Step->str(), "-3");
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(ReversePermute, ReversalOfNonDivisibleRange) {
  // 1..10 step 3 visits 1, 4, 7, 10... wait: 1+3*3 = 10: exact. Use
  // 1..9 step 3: visits 1, 4, 7; last = 7.
  LoopNest N = parse("do i = 1, 9, 3\n  a(i) = i\nenddo\n");
  TemplateRef T = makeReversePermute(1, {true}, {0});
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->Loops[0].Lower->str(), "7");
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(ReversePermute, SymbolicStrideReversal) {
  // Section 5 claims reversal/interchange with *unknown strides*; the
  // reversed bounds stay symbolic in s.
  LoopNest N = parse("do i = 1, n, s\n  a(i) = i\nenddo\n");
  TemplateRef T = makeReversePermute(1, {true}, {0});
  ASSERT_EQ(T->checkPreconditions(N), "");
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  for (auto [NV, SV] : {std::pair<int64_t, int64_t>{13, 3},
                        std::pair<int64_t, int64_t>{12, 4}}) {
    EvalConfig C;
    C.Params = {{"n", NV}, {"s", SV}};
    VerifyResult V = verifyTransformed(N, *Out, C);
    EXPECT_TRUE(V.Ok) << "n=" << NV << " s=" << SV << ": " << V.Problem;
  }
}

TEST(ReversePermute, NegativeStepReversalRoundTrips) {
  LoopNest N = parse("do i = 9, 2, -2\n  a(i) = i\nenddo\n");
  TemplateRef T = makeReversePermute(1, {true}, {0});
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  // Visits 9, 7, 5, 3 -> reversed starts at 3 with step 2.
  EXPECT_EQ(Out->Loops[0].Lower->str(), "3");
  EXPECT_EQ(Out->Loops[0].Step->str(), "2");
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(ReversePermute, DoubleReversalIsIdentityOnValues) {
  LoopNest N = parse("do i = 1, 9, 3\n  a(i) = i\nenddo\n");
  TemplateRef T = makeReversePermute(1, {true}, {0});
  ErrorOr<LoopNest> Once = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Once));
  ErrorOr<LoopNest> Twice = T->apply(*Once);
  ASSERT_TRUE(static_cast<bool>(Twice));
  EvalConfig C;
  ArrayStore S1, S2;
  EvalResult R1 = evaluate(N, C, S1);
  EvalResult R2 = evaluate(*Twice, C, S2);
  EXPECT_EQ(R1.Instances, R2.Instances); // same order, not just same set
}

TEST(ReversePermute, ThreeLoopRotationWithPerVarKinds) {
  LoopNest N = parse("do i = 1, 4\n  pardo j = 1, 5\n    do k = 1, 3\n"
                     "      a(i, j, k) = 1\n"
                     "    enddo\n  enddo\nenddo\n");
  TemplateRef T = makeReversePermute(3, {false, false, false}, {2, 0, 1});
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  // The pardo kind travels with its loop (j is now outermost).
  EXPECT_EQ(Out->Loops[0].IndexVar, "j");
  EXPECT_EQ(Out->Loops[0].Kind, LoopKind::ParDo);
  EXPECT_EQ(Out->Loops[2].IndexVar, "i");
  EXPECT_EQ(Out->Loops[2].Kind, LoopKind::Do);
}

TEST(ReversePermute, PreconditionOnlyConstrainsReorderedPairs) {
  // Triangular j depends on i; swapping them is rejected...
  LoopNest N = parse("do i = 1, n\n  do j = i, n\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  EXPECT_NE(makeInterchange(2, 0, 1)->checkPreconditions(N), "");
  // ...but the identity permutation (with a reversal of j) is fine.
  TemplateRef T = makeReversePermute(2, {false, true}, {0, 1});
  EXPECT_EQ(T->checkPreconditions(N), "");
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EvalConfig C;
  C.Params["n"] = 6;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

} // namespace
