//===- tests/transform/SequenceTest.cpp ------------------------------------===//

#include "dependence/DepAnalysis.h"
#include "eval/Evaluator.h"
#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

TEST(Sequence, CompositionIsConcatenation) {
  TransformSequence A = TransformSequence::of({makeInterchange(2, 0, 1)});
  TransformSequence B =
      TransformSequence::of({makeParallelize(2, {true, false})});
  TransformSequence C = A.composedWith(B);
  ASSERT_EQ(C.size(), 2u);
  EXPECT_EQ(C.steps()[0]->name(), "ReversePermute");
  EXPECT_EQ(C.steps()[1]->name(), "Parallelize");
}

TEST(Sequence, StrRendersAllSteps) {
  TransformSequence S = TransformSequence::of(
      {makeInterchange(2, 0, 1), makeCoalesce(2, 1, 2)});
  std::string Str = S.str();
  EXPECT_NE(Str.find("ReversePermute"), std::string::npos);
  EXPECT_NE(Str.find("Coalesce"), std::string::npos);
}

TEST(Sequence, ReduceFusesUnimodularChain) {
  TransformSequence S = TransformSequence::of(
      {makeUnimodular(2, UnimodularMatrix::skew(2, 0, 1, 1)),
       makeUnimodular(2, UnimodularMatrix::interchange(2, 0, 1)),
       makeUnimodular(2, UnimodularMatrix::reversal(2, 0))});
  TransformSequence R = S.reduced();
  ASSERT_EQ(R.size(), 1u);
  const auto *U = dyn_cast<UnimodularTemplate>(R.steps()[0].get());
  ASSERT_NE(U, nullptr);
  // reversal * interchange * skew.
  UnimodularMatrix Expect = UnimodularMatrix::reversal(2, 0) *
                            UnimodularMatrix::interchange(2, 0, 1) *
                            UnimodularMatrix::skew(2, 0, 1, 1);
  EXPECT_EQ(U->matrix(), Expect);
}

TEST(Sequence, ReduceStopsAtIncompatibleNeighbors) {
  TransformSequence S = TransformSequence::of(
      {makeUnimodular(2, UnimodularMatrix::interchange(2, 0, 1)),
       makeBlock(2, 1, 2, {Expr::intConst(2), Expr::intConst(2)}),
       makeUnimodular(4, UnimodularMatrix::identity(4))});
  TransformSequence R = S.reduced();
  EXPECT_EQ(R.size(), 3u);
}

TEST(Sequence, ReversePermuteFusionMatchesComposition) {
  // Random-ish pair of ReversePermutes over 3 loops: fusing then mapping
  // equals mapping stage by stage, for dependences and for code.
  TemplateRef A = makeReversePermute(3, {true, false, true}, {1, 2, 0});
  TemplateRef B = makeReversePermute(3, {false, true, false}, {2, 0, 1});
  TransformSequence S = TransformSequence::of({A, B});
  TransformSequence R = S.reduced();
  ASSERT_EQ(R.size(), 1u);

  DepSet D;
  D.insert(DepVector({DepElem::distance(1), DepElem::pos(), DepElem::neg()}));
  D.insert(DepVector::distances({0, 2, -1}));
  EXPECT_EQ(mapDependences(S, D).str(), mapDependences(R, D).str());

  LoopNest N = parse("do i = 1, 4\n  do j = 1, 5\n    do k = 1, 3\n"
                     "      a(i, j, k) = 1\n    enddo\n  enddo\nenddo\n");
  ErrorOr<LoopNest> OutS = applySequence(S, N);
  ErrorOr<LoopNest> OutR = applySequence(R, N);
  ASSERT_TRUE(static_cast<bool>(OutS));
  ASSERT_TRUE(static_cast<bool>(OutR));
  EXPECT_EQ(OutS->str(), OutR->str());
}

TEST(Sequence, ReduceAbsorbsReversePermuteIntoUnimodular) {
  // RP;U and U;RP both fold into one Unimodular whose matrix composes the
  // RP's signed permutation matrix on the right/left respectively, so the
  // canonical form does not depend on which representation a search path
  // happened to build.
  TemplateRef RP = makeReversePermute(3, {true, false, false}, {1, 2, 0});
  TemplateRef U =
      makeUnimodular(3, UnimodularMatrix::skew(3, 0, 1, 2));

  TransformSequence RPThenU = TransformSequence::of({RP, U}).reduced();
  ASSERT_EQ(RPThenU.size(), 1u);
  EXPECT_EQ(RPThenU.steps()[0]->kind(), TransformTemplate::Kind::Unimodular);

  TransformSequence UThenRP = TransformSequence::of({U, RP}).reduced();
  ASSERT_EQ(UThenRP.size(), 1u);
  EXPECT_EQ(UThenRP.steps()[0]->kind(), TransformTemplate::Kind::Unimodular);

  // Semantics preserved: dependence mapping and generated code agree with
  // the unreduced two-step sequences.
  DepSet D;
  D.insert(DepVector::distances({1, 0, 2}));
  D.insert(DepVector({DepElem::distance(2), DepElem::pos(), DepElem::neg()}));
  EXPECT_EQ(mapDependences(TransformSequence::of({RP, U}), D).str(),
            mapDependences(RPThenU, D).str());
  EXPECT_EQ(mapDependences(TransformSequence::of({U, RP}), D).str(),
            mapDependences(UThenRP, D).str());

  LoopNest N = parse("do i = 1, 6\n  do j = 1, 4\n    do k = 1, 5\n"
                     "      a(i, j, k) = 1\n    enddo\n  enddo\nenddo\n");
  ErrorOr<LoopNest> Full = applySequence(TransformSequence::of({RP, U}), N);
  ErrorOr<LoopNest> Fused = applySequence(RPThenU, N);
  ASSERT_TRUE(static_cast<bool>(Full)) << Full.message();
  ASSERT_TRUE(static_cast<bool>(Fused)) << Fused.message();
  // The two pipelines pick different generated variable names, so compare
  // executions, not renderings: identical original-instance order.
  EvalConfig C;
  ArrayStore S1, S2;
  EvalResult R1 = evaluate(*Full, C, S1);
  EvalResult R2 = evaluate(*Fused, C, S2);
  EXPECT_EQ(R1.Instances, R2.Instances);
  EXPECT_TRUE(S1 == S2);
}

TEST(Sequence, ReduceCascadesAcrossMixedKinds) {
  // RP;RP;U: the two RPs fuse first, then the result is absorbed into
  // the Unimodular - requires the fixed-point re-try against the new
  // predecessor, not just one adjacent pass.
  TransformSequence S = TransformSequence::of(
      {makeReversePermute(2, {false, true}, {1, 0}),
       makeReversePermute(2, {true, false}, {1, 0}),
       makeUnimodular(2, UnimodularMatrix::skew(2, 0, 1, 1))});
  TransformSequence R = S.reduced();
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R.steps()[0]->kind(), TransformTemplate::Kind::Unimodular);
}

TEST(Sequence, ReducedIsIdempotentAndCanonicalizes) {
  // The search engine memoizes on reduced().str(); that key is only sound
  // if reduce is idempotent and peephole-equivalent sequences collapse to
  // the same rendering.
  TemplateRef RP1 = makeReversePermute(3, {false, true, false}, {2, 0, 1});
  TemplateRef RP2 = makeReversePermute(3, {true, false, false}, {0, 2, 1});
  TemplateRef U = makeUnimodular(3, UnimodularMatrix::skew(3, 1, 2, 1));
  TemplateRef B = makeBlock(3, 1, 2, {Expr::intConst(4), Expr::intConst(4)});

  std::vector<TransformSequence> Seqs = {
      TransformSequence::of({RP1, RP2, U, B}),
      TransformSequence::of({RP1, RP2, U}),
      TransformSequence::of({RP1, U}),
      TransformSequence::of({U, RP2, B}),
      TransformSequence(),
  };
  for (const TransformSequence &S : Seqs) {
    TransformSequence Once = S.reduced();
    EXPECT_EQ(Once.str(), Once.reduced().str()) << S.str();
  }

  // A fused RP pair and its single-step equivalent share one key.
  TransformSequence Pair = TransformSequence::of({RP1, RP2});
  TransformSequence Single = Pair.reduced();
  ASSERT_EQ(Single.size(), 1u);
  EXPECT_EQ(Pair.reduced().str(), Single.reduced().str());
}

TEST(Sequence, RejectKindNamesAreStable) {
  using RK = LegalityResult::RejectKind;
  EXPECT_STREQ(rejectKindName(RK::None), "none");
  EXPECT_STREQ(rejectKindName(RK::BoundsPrecondition), "bounds-precondition");
  EXPECT_STREQ(rejectKindName(RK::DependencePrecondition),
               "dependence-precondition");
  EXPECT_STREQ(rejectKindName(RK::LexNegative), "lex-negative");
  EXPECT_STREQ(rejectKindName(RK::ApplyFailure), "apply-failure");
  EXPECT_STREQ(rejectKindName(RK::Overflow), "overflow");
}

TEST(Sequence, ApplyReportsFailingStage) {
  LoopNest N = parse("do i = 1, n\n  do j = colstr(i), n\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  TransformSequence S = TransformSequence::of(
      {makeParallelize(2, {false, false}),
       makeUnimodular(2, UnimodularMatrix::interchange(2, 0, 1))});
  ErrorOr<LoopNest> Out = applySequence(S, N);
  ASSERT_FALSE(static_cast<bool>(Out));
  EXPECT_NE(Out.message().find("stage 2"), std::string::npos)
      << Out.message();
}

TEST(Sequence, IsLegalReportsPreconditionStage) {
  LoopNest N = parse("do i = 1, n\n  do j = i, n\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  // Coalesce of a triangular band violates its precondition at stage 1.
  TransformSequence S = TransformSequence::of({makeCoalesce(2, 1, 2)});
  LegalityResult R = isLegal(S, N, DepSet());
  EXPECT_FALSE(R.Legal);
  EXPECT_NE(R.Reason.find("stage 1"), std::string::npos) << R.Reason;
}

TEST(Sequence, EmptySequenceIsIdentity) {
  LoopNest N = parse("do i = 1, 5\n  a(i) = i\nenddo\n");
  TransformSequence S;
  LegalityResult R = isLegal(S, N, DepSet());
  EXPECT_TRUE(R.Legal);
  ErrorOr<LoopNest> Out = applySequence(S, N);
  ASSERT_TRUE(static_cast<bool>(Out));
  EXPECT_EQ(Out->str(), N.str());
}

TEST(Sequence, SizeMismatchIsACaughtPreconditionFailure) {
  LoopNest N = parse("do i = 1, 5\n  a(i) = i\nenddo\n");
  TransformSequence S = TransformSequence::of({makeInterchange(2, 0, 1)});
  LegalityResult R = isLegal(S, N, DepSet());
  EXPECT_FALSE(R.Legal);
  EXPECT_NE(R.Reason.find("template expects"), std::string::npos) << R.Reason;
}

TEST(Sequence, LongPipelineEndToEnd) {
  // Block, parallelize the block loops, interchange element loops,
  // coalesce the block loops - a Figure 7-shaped pipeline on a fresh
  // nest, verified by execution.
  LoopNest N = parse("do i = 1, n\n  do j = 1, n\n"
                     "    c(i, j) = c(i, j) + 1\n  enddo\nenddo\n");
  DepSet D = analyzeDependences(N);
  TransformSequence S = TransformSequence::of(
      {makeBlock(2, 1, 2, {Expr::intConst(3), Expr::intConst(2)}),
       makeParallelize(4, {true, true, false, false}),
       makeInterchange(4, 2, 3), makeCoalesce(4, 1, 2)});
  LegalityResult L = isLegal(S, N, D);
  EXPECT_TRUE(L.Legal) << L.Reason;
  ErrorOr<LoopNest> Out = applySequence(S, N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->numLoops(), 3u);
  EvalConfig C;
  C.Params["n"] = 8;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

} // namespace
