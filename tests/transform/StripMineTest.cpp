//===- tests/transform/StripMineTest.cpp -----------------------------------===//
//
// The StripMine extension template, including the Table 1 decomposition
// claim: Block == strip-mine each loop, then interchange the strips out.
//
//===----------------------------------------------------------------------===//

#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

TEST(StripMine, SingleLoopStructure) {
  LoopNest N = parse("do i = 1, n\n  a(i) = i\nenddo\n");
  TemplateRef T = makeStripMine(1, 1, Expr::var("b"));
  ASSERT_EQ(T->checkPreconditions(N), "");
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  ASSERT_EQ(Out->numLoops(), 2u);
  EXPECT_EQ(Out->Loops[0].IndexVar, "ii");
  EXPECT_EQ(Out->Loops[0].Step->str(), "b");
  EXPECT_EQ(Out->Loops[1].IndexVar, "i");
  EXPECT_EQ(Out->Loops[1].Lower->str(), "ii");
  EXPECT_EQ(Out->Loops[1].Upper->str(), "min(b + ii - 1, n)");
  EXPECT_TRUE(Out->Inits.empty());
}

TEST(StripMine, SemanticEquivalence) {
  LoopNest N = parse("do i = 2, n\n  a(i) = a(i - 1) + 1\nenddo\n");
  TemplateRef T = makeStripMine(1, 1, Expr::var("b"));
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  for (int64_t NN : {1, 2, 9, 16})
    for (int64_t B : {1, 3, 7, 20}) {
      EvalConfig C;
      C.Params = {{"n", NN}, {"b", B}};
      VerifyResult V = verifyTransformed(N, *Out, C);
      EXPECT_TRUE(V.Ok) << "n=" << NN << " b=" << B << ": " << V.Problem;
    }
}

TEST(StripMine, StridedAndTrapezoidalLoops) {
  // Strip-mining anchors the block grid at l_k, so unlike Block it has no
  // stride restriction even on trapezoids.
  LoopNest N = parse("do i = 1, 10\n  do j = i, 30, 3\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  TemplateRef T = makeStripMine(2, 2, Expr::intConst(2));
  ASSERT_EQ(T->checkPreconditions(N), "");
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(StripMine, DependenceFanOutMatchesBlockmap) {
  TemplateRef T = makeStripMine(2, 1, Expr::intConst(4));
  DepSet D;
  D.insert(DepVector::distances({1, 2}));
  // blockmap(1) = {(0,1),(1,*)}, position 2 untouched.
  EXPECT_EQ(T->mapDependences(D).str(), "{(0, 1, 2), (1, *, 2)}");
}

TEST(StripMine, BlockEqualsStripMinePlusInterchange) {
  // Table 1: "Blocking can be viewed as a combination of strip mining and
  // interchanging." For a 2-nest: strip-mine i (at 1), strip-mine j (now
  // at 3), then permute (ii, i, jj, j) -> (ii, jj, i, j).
  LoopNest N = parse("do i = 1, n\n  do j = 1, n\n"
                     "    a(i, j) = a(i, j) + i\n  enddo\nenddo\n");
  ExprRef B1 = Expr::intConst(3), B2 = Expr::intConst(5);

  TransformSequence ViaBlock =
      TransformSequence::of({makeBlock(2, 1, 2, {B1, B2})});
  TransformSequence ViaStrips = TransformSequence::of(
      {makeStripMine(2, 1, B1), makeStripMine(3, 3, B2),
       makeReversePermute(4, {false, false, false, false}, {0, 2, 1, 3})});

  ErrorOr<LoopNest> OutBlock = applySequence(ViaBlock, N);
  ErrorOr<LoopNest> OutStrips = applySequence(ViaStrips, N);
  ASSERT_TRUE(static_cast<bool>(OutBlock)) << OutBlock.message();
  ASSERT_TRUE(static_cast<bool>(OutStrips)) << OutStrips.message();

  // Same loop variables in the same order (Block's element clamps are
  // max/min-guarded where the strip route's are bare, so the bound text
  // differs; the iteration order must not).
  ASSERT_EQ(OutBlock->numLoops(), OutStrips->numLoops());
  for (unsigned K = 0; K < OutBlock->numLoops(); ++K)
    EXPECT_EQ(OutBlock->Loops[K].IndexVar, OutStrips->Loops[K].IndexVar);

  // Identical execution order against the same reference.
  EvalConfig C;
  C.Params["n"] = 11;
  VerifyResult VB = verifyTransformed(N, *OutBlock, C);
  VerifyResult VS = verifyTransformed(N, *OutStrips, C);
  EXPECT_TRUE(VB.Ok) << VB.Problem;
  EXPECT_TRUE(VS.Ok) << VS.Problem;
  ArrayStore S1, S2;
  EvalResult R1 = evaluate(*OutBlock, C, S1);
  EvalResult R2 = evaluate(*OutStrips, C, S2);
  EXPECT_EQ(R1.Instances, R2.Instances); // identical order, not just legal
}

TEST(StripMine, InterchangePreconditionBlocksTrapezoidStripSwap) {
  // On the triangular nest the strip-mine+interchange route needs the
  // ReversePermute invariance precondition, which the strip bounds break
  // (jj's bounds reference i): the framework rejects the permutation -
  // Block's dedicated xmin/xmax rule is what makes trapezoids tileable.
  LoopNest N = parse("do i = 1, n\n  do j = 1, i\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  ExprRef B = Expr::intConst(4);
  ErrorOr<LoopNest> Strips = applySequence(
      TransformSequence::of(
          {makeStripMine(2, 1, B), makeStripMine(3, 3, B)}),
      N);
  ASSERT_TRUE(static_cast<bool>(Strips)) << Strips.message();
  TemplateRef Swap =
      makeReversePermute(4, {false, false, false, false}, {0, 2, 1, 3});
  EXPECT_NE(Swap->checkPreconditions(*Strips), "");
  // Block itself succeeds on the same nest.
  EXPECT_EQ(makeBlock(2, 1, 2, {B, B})->checkPreconditions(N), "");
}

TEST(StripMine, PreconditionRejectsSymbolicStep) {
  LoopNest N = parse("do i = 1, n, s\n  a(i) = 1\nenddo\n");
  TemplateRef T = makeStripMine(1, 1, Expr::intConst(2));
  EXPECT_NE(T->checkPreconditions(N), "");
}

} // namespace
