//===- tests/transform/SymbolicFMTest.cpp ----------------------------------===//
//
// The symbolic Fourier-Motzkin bounds generator behind the Unimodular
// template: projection order, ceil/floor division emission, symbolic
// coefficient combination, and row normalization.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "transform/SymbolicFM.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LinExpr lin(const std::string &S) {
  ErrorOr<ExprRef> E = parseExpr(S);
  EXPECT_TRUE(static_cast<bool>(E)) << E.message();
  return LinExpr::fromExpr(*E);
}

TEST(SymbolicFM, RectangleProjectsExactly) {
  // 1 <= y0 <= n; y0 <= y1 <= n.
  SymbolicFM S(2);
  S.addGE({1, 0}, lin("1"));
  S.addLE({1, 0}, lin("n"));
  S.addGE({-1, 1}, lin("0")); // y1 - y0 >= 0
  S.addLE({0, 1}, lin("n"));
  std::vector<GeneratedBounds> B = S.generateBounds({"u", "v"});
  ASSERT_EQ(B[1].Lowers.size(), 1u);
  EXPECT_EQ(B[1].Lowers[0]->str(), "u");
  ASSERT_EQ(B[1].Uppers.size(), 1u);
  EXPECT_EQ(B[1].Uppers[0]->str(), "n");
  // Eliminating y1 adds u <= n (redundant with the direct bound, deduped).
  ASSERT_GE(B[0].Lowers.size(), 1u);
  EXPECT_EQ(B[0].Lowers[0]->str(), "1");
  ASSERT_GE(B[0].Uppers.size(), 1u);
  EXPECT_EQ(B[0].Uppers[0]->str(), "n");
}

TEST(SymbolicFM, Figure1System) {
  // The Figure 1 system after substitution x = Minv y:
  //   2 <= y1 <= n-1;  2 <= y0 - y1 <= n-1.
  SymbolicFM S(2);
  S.addGE({0, 1}, lin("2"));
  S.addLE({0, 1}, lin("n - 1"));
  S.addGE({1, -1}, lin("2"));
  S.addLE({1, -1}, lin("n - 1"));
  std::vector<GeneratedBounds> B = S.generateBounds({"jj", "ii"});
  ASSERT_EQ(B[1].Lowers.size(), 2u);
  EXPECT_EQ(B[1].Lowers[0]->str(), "2");
  EXPECT_EQ(B[1].Lowers[1]->str(), "jj - n + 1");
  ASSERT_EQ(B[1].Uppers.size(), 2u);
  EXPECT_EQ(B[1].Uppers[0]->str(), "n - 1");
  EXPECT_EQ(B[1].Uppers[1]->str(), "jj - 2");
  ASSERT_EQ(B[0].Lowers.size(), 1u);
  EXPECT_EQ(B[0].Lowers[0]->str(), "4");
  ASSERT_EQ(B[0].Uppers.size(), 1u);
  EXPECT_EQ(B[0].Uppers[0]->str(), "2*n - 2");
}

TEST(SymbolicFM, DivisionEmission) {
  // 0 <= 3*y0 <= n - 1: lower ceil(0/3) = 0, upper floor((n-1)/3).
  SymbolicFM S(1);
  S.addGE({3}, lin("0"));
  S.addLE({3}, lin("n - 1"));
  std::vector<GeneratedBounds> B = S.generateBounds({"t"});
  ASSERT_EQ(B[0].Lowers.size(), 1u);
  EXPECT_EQ(B[0].Lowers[0]->str(), "0"); // ceil div by 3 of -0 folds
  ASSERT_EQ(B[0].Uppers.size(), 1u);
  EXPECT_EQ(B[0].Uppers[0]->str(), "(n - 1) / 3");
}

TEST(SymbolicFM, CeilDivisionOfSymbolicLower) {
  // m <= 2*y0: y0 >= ceil(m/2) = floor((m+1)/2).
  SymbolicFM S(1);
  S.addGE({2}, lin("m"));
  S.addLE({2}, lin("100"));
  std::vector<GeneratedBounds> B = S.generateBounds({"t"});
  ASSERT_EQ(B[0].Lowers.size(), 1u);
  EXPECT_EQ(B[0].Lowers[0]->str(), "(m + 1) / 2");
  EXPECT_EQ(B[0].Uppers[0]->str(), "50");
}

TEST(SymbolicFM, RowNormalizationDividesCommonFactor) {
  // 2*y0 <= 2*n normalizes to y0 <= n (no division emitted).
  SymbolicFM S(1);
  S.addLE({2}, lin("2*n"));
  S.addGE({1}, lin("0"));
  std::vector<GeneratedBounds> B = S.generateBounds({"t"});
  EXPECT_EQ(B[0].Uppers[0]->str(), "n");
}

TEST(SymbolicFM, EliminationCombinesSymbolicParts) {
  // y1 >= y0 - n + 1 and y1 <= n - 1 imply y0 <= 2n - 2.
  SymbolicFM S(2);
  S.addGE({-1, 1}, lin("1 - n")); // y1 - y0 >= 1 - n
  S.addLE({0, 1}, lin("n - 1"));
  S.addGE({1, 0}, lin("0"));
  std::vector<GeneratedBounds> B = S.generateBounds({"a", "b"});
  ASSERT_EQ(B[0].Uppers.size(), 1u);
  EXPECT_EQ(B[0].Uppers[0]->str(), "2*n - 2");
}

TEST(SymbolicFM, OpaqueAtomsRideAlong) {
  // Bounds with an opaque invariant atom f(n): y0 <= f(n) + 2.
  SymbolicFM S(1);
  S.addLE({1}, lin("f(n) + 2"));
  S.addGE({1}, lin("f(n)"));
  std::vector<GeneratedBounds> B = S.generateBounds({"t"});
  EXPECT_EQ(B[0].Lowers[0]->str(), "f(n)");
  EXPECT_EQ(B[0].Uppers[0]->str(), "f(n) + 2");
}

TEST(SymbolicFM, UnboundedVariableYieldsEmptyList) {
  SymbolicFM S(1);
  S.addGE({1}, lin("0"));
  std::vector<GeneratedBounds> B = S.generateBounds({"t"});
  EXPECT_EQ(B[0].Lowers.size(), 1u);
  EXPECT_TRUE(B[0].Uppers.empty());
}

} // namespace
