//===- tests/transform/TypeStateTest.cpp -----------------------------------===//
//
// The Section 4.3 fast legality path: type-state propagation through each
// template, soundness of the predicted types against generated code, and
// verdict agreement between isLegalFast and the full isLegal.
//
//===----------------------------------------------------------------------===//

#include "dependence/DepAnalysis.h"
#include "ir/Parser.h"
#include "transform/TypeState.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

TEST(TypeState, FromNestClassification) {
  LoopNest N = parse("do i = 1, n\n  do j = 2*i + 1, colstr(i), 2\n"
                     "    a(i, j) = 1\n  enddo\nenddo\n");
  NestTypeState S = NestTypeState::fromNest(N);
  ASSERT_EQ(S.numLoops(), 2u);
  EXPECT_TRUE(S.Loops[0].LB.isConst());
  EXPECT_FALSE(S.Loops[0].UB.isConst());
  EXPECT_EQ(S.Loops[0].UB.wrt(0), BoundType::Invar);
  EXPECT_EQ(S.Loops[1].LB.wrt(0), BoundType::Linear);
  EXPECT_EQ(S.Loops[1].UB.wrt(0), BoundType::Nonlinear);
  EXPECT_EQ(S.Loops[1].Step.wrt(0), BoundType::Const);
  EXPECT_EQ(*S.Loops[1].StepConst, 2);
}

TEST(TypeState, FromNestMaxMinSpecialCase) {
  LoopNest N = parse("do i = max(1, m), min(n, 100)\n  do j = i, n\n"
                     "    a(i, j) = 1\n  enddo\nenddo\n");
  NestTypeState S = NestTypeState::fromNest(N);
  EXPECT_TRUE(S.Loops[0].StartComposite);
  EXPECT_FALSE(S.Loops[1].StartComposite);
  EXPECT_EQ(S.Loops[1].LB.wrt(0), BoundType::Linear);
}

/// Predicted types must over-approximate the generated bounds' true
/// types: apply the template for real, re-classify, compare pointwise.
void checkSoundness(const LoopNest &N, const TemplateRef &T) {
  NestTypeState S0 = NestTypeState::fromNest(N);
  std::optional<ErrorOr<NestTypeState>> Pred = mapTypes(*T, S0);
  ASSERT_TRUE(Pred.has_value()) << T->str() << " has no type rule";
  if (!*Pred) {
    // Precondition rejections must agree with the template's own check.
    EXPECT_NE(T->checkPreconditions(N), "")
        << T->str() << ": type rule rejected but template accepts\n"
        << Pred->message();
    return;
  }
  ASSERT_EQ(T->checkPreconditions(N), "")
      << T->str() << ": type rule accepted but template rejects";
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  NestTypeState Actual = NestTypeState::fromNest(*Out);
  const NestTypeState &P = **Pred;
  ASSERT_EQ(P.numLoops(), Actual.numLoops()) << T->str();
  for (unsigned K = 0; K < P.numLoops(); ++K) {
    EXPECT_EQ(P.Loops[K].Kind, Actual.Loops[K].Kind) << T->str() << " @" << K;
    for (unsigned V = 0; V < P.numLoops(); ++V) {
      EXPECT_TRUE(typeLE(Actual.Loops[K].LB.wrt(V), P.Loops[K].LB.wrt(V)))
          << T->str() << ": LB of loop " << K + 1 << " wrt " << V + 1
          << " actual " << typeName(Actual.Loops[K].LB.wrt(V)) << " predicted "
          << typeName(P.Loops[K].LB.wrt(V)) << "\n"
          << Out->str();
      EXPECT_TRUE(typeLE(Actual.Loops[K].UB.wrt(V), P.Loops[K].UB.wrt(V)))
          << T->str() << ": UB of loop " << K + 1 << " wrt " << V + 1 << "\n"
          << Out->str();
      EXPECT_TRUE(typeLE(Actual.Loops[K].Step.wrt(V), P.Loops[K].Step.wrt(V)))
          << T->str() << ": Step of loop " << K + 1 << " wrt " << V + 1;
    }
    if (P.Loops[K].StepConst) {
      ASSERT_TRUE(Actual.Loops[K].StepConst.has_value()) << T->str();
      EXPECT_EQ(*P.Loops[K].StepConst, *Actual.Loops[K].StepConst)
          << T->str();
    }
  }
}

std::vector<LoopNest> soundnessNests() {
  return {
      parse("do i = 1, n\n  do j = 1, m\n    a(i, j) = 1\n  enddo\nenddo\n"),
      parse("do i = 1, n\n  do j = i, n\n    a(i, j) = 1\n  enddo\nenddo\n"),
      parse("do i = 1, n, 2\n  do j = 1, 2*i + 3\n    a(i, j) = 1\n"
            "  enddo\nenddo\n"),
      parse("do i = 1, n\n  do j = 1, n\n    do k = j, n\n"
            "      a(i, j, k) = 1\n    enddo\n  enddo\nenddo\n"),
  };
}

std::vector<TemplateRef> typedTemplates(unsigned N) {
  std::vector<TemplateRef> Ts;
  Ts.push_back(makeInterchange(N, 0, 1));
  {
    std::vector<bool> Rev(N, false);
    Rev[N - 1] = true;
    std::vector<unsigned> Perm(N);
    for (unsigned K = 0; K < N; ++K)
      Perm[K] = K;
    Ts.push_back(makeReversePermute(N, Rev, Perm));
  }
  Ts.push_back(makeParallelize(N, std::vector<bool>(N, true)));
  Ts.push_back(makeUnimodular(N, UnimodularMatrix::skew(N, 0, N - 1, 1)));
  Ts.push_back(
      makeBlock(N, 1, N, std::vector<ExprRef>(N, Expr::intConst(4))));
  Ts.push_back(makeBlock(N, 1, N, std::vector<ExprRef>(N, Expr::var("b"))));
  Ts.push_back(makeCoalesce(N, 1, N));
  if (N >= 2)
    Ts.push_back(makeCoalesce(N, N - 1, N));
  Ts.push_back(
      makeInterleave(N, 1, 2, {Expr::intConst(2), Expr::intConst(3)}));
  return Ts;
}

using NT = std::tuple<size_t, size_t>;
class TypeRuleSoundness : public ::testing::TestWithParam<NT> {};

TEST_P(TypeRuleSoundness, PredictionCoversGeneratedCode) {
  auto [NIdx, TIdx] = GetParam();
  LoopNest N = soundnessNests()[NIdx];
  std::vector<TemplateRef> Ts = typedTemplates(N.numLoops());
  ASSERT_LT(TIdx, Ts.size());
  checkSoundness(N, Ts[TIdx]);
}

INSTANTIATE_TEST_SUITE_P(Corpus, TypeRuleSoundness,
                         ::testing::Combine(::testing::Range<size_t>(0, 4),
                                            ::testing::Range<size_t>(0, 9)));

TEST(TypeState, FastLegalAgreesWithFullOnFigurePipelines) {
  struct Case {
    LoopNest Nest;
    TransformSequence Seq;
  };
  LoopNest MM = parse("arrays B, C\ndo i = 1, n\n  do j = 1, n\n"
                      "    do k = 1, n\n      A(i, j) += B(i, k)*C(k, j)\n"
                      "    enddo\n  enddo\nenddo\n");
  LoopNest St = parse("do i = 2, n - 1\n  do j = 2, n - 1\n"
                      "    a(i, j) = a(i - 1, j) + a(i, j - 1)\n"
                      "  enddo\nenddo\n");
  LoopNest Sparse = parse("arrays b, c\ndo i = 1, n\n  do j = 1, n\n"
                          "    do k = colstr(j), colstr(j + 1) - 1\n"
                          "      a(i, j) += b(i, rowidx(k))*c(k)\n"
                          "    enddo\n  enddo\nenddo\n");

  std::vector<Case> Cases;
  // Figure 7 pipeline.
  Cases.push_back({MM, TransformSequence::of({
                           makeReversePermute(3, {false, false, false},
                                              {2, 0, 1}),
                           makeBlock(3, 1, 3,
                                     {Expr::var("bj"), Expr::var("bk"),
                                      Expr::var("bi")}),
                           makeParallelize(6,
                                           {true, false, true, false, false,
                                            false}),
                           makeReversePermute(6,
                                              {false, false, false, false,
                                               false, false},
                                              {0, 2, 1, 3, 4, 5}),
                           makeCoalesce(6, 1, 2),
                       })});
  // Figure 1 skew+interchange (+ an illegal parallelization variant).
  Cases.push_back({St, TransformSequence::of(
                           {makeUnimodular(2, UnimodularMatrix(2,
                                                               {1, 1, 1, 0})),
                            makeParallelize(2, {false, true})})});
  Cases.push_back({St, TransformSequence::of(
                           {makeUnimodular(2, UnimodularMatrix(2,
                                                               {1, 1, 1, 0})),
                            makeParallelize(2, {true, false})})});
  // Figure 4(c): nonlinear bounds - RP legal, Unimodular rejected.
  Cases.push_back({Sparse, TransformSequence::of({makeReversePermute(
                               3, {false, false, false}, {2, 0, 1})})});
  Cases.push_back({Sparse, TransformSequence::of({makeUnimodular(
                               3, UnimodularMatrix::interchange(3, 1, 2))})});
  // Triangular coalesce: precondition rejection.
  LoopNest Tri = parse("do i = 1, n\n  do j = i, n\n    a(i, j) = 1\n"
                       "  enddo\nenddo\n");
  Cases.push_back({Tri, TransformSequence::of({makeCoalesce(2, 1, 2)})});
  // Extension template (no type rule): the fast path falls back.
  Cases.push_back({Tri, TransformSequence::of(
                            {makeStripMine(2, 2, Expr::intConst(4)),
                             makeParallelize(3, {true, false, false})})});

  for (size_t I = 0; I < Cases.size(); ++I) {
    const Case &C = Cases[I];
    DepSet D = analyzeDependences(C.Nest);
    LegalityResult Full = isLegal(C.Seq, C.Nest, D);
    LegalityResult Fast = isLegalFast(C.Seq, C.Nest, D);
    EXPECT_EQ(Full.Legal, Fast.Legal)
        << "case " << I << ": full='" << Full.Reason << "' fast='"
        << Fast.Reason << "'";
    if (Full.Legal && Fast.Legal) {
      EXPECT_EQ(Full.FinalDeps.str(), Fast.FinalDeps.str());
    }
  }
}

TEST(TypeState, ExprTypesRemapDropsAndMoves) {
  ExprTypes E = ExprTypes::invariant();
  E.raise(0, BoundType::Linear);
  E.raise(2, BoundType::Nonlinear);
  std::vector<std::optional<unsigned>> Remap = {1, std::nullopt, std::nullopt};
  ExprTypes R = E.remapped(Remap);
  EXPECT_EQ(R.wrt(1), BoundType::Linear);
  EXPECT_EQ(R.wrt(0), BoundType::Invar);
  EXPECT_EQ(R.wrt(2), BoundType::Invar);
}

TEST(TypeState, JoinIsPointwise) {
  ExprTypes A = ExprTypes::constant();
  ExprTypes B = ExprTypes::invariant();
  B.raise(1, BoundType::Linear);
  ExprTypes J = A.joinedWith(B);
  EXPECT_FALSE(J.isConst());
  EXPECT_EQ(J.wrt(1), BoundType::Linear);
  EXPECT_EQ(J.wrt(0), BoundType::Invar);
}

} // namespace
