//===- tests/transform/UnimodularMatrixTest.cpp ----------------------------===//

#include "transform/UnimodularMatrix.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

TEST(UnimodularMatrix, Generators) {
  EXPECT_EQ(UnimodularMatrix::identity(3).str(),
            "[[1, 0, 0], [0, 1, 0], [0, 0, 1]]");
  EXPECT_EQ(UnimodularMatrix::reversal(2, 1).str(), "[[1, 0], [0, -1]]");
  EXPECT_EQ(UnimodularMatrix::interchange(2, 0, 1).str(), "[[0, 1], [1, 0]]");
  EXPECT_EQ(UnimodularMatrix::skew(2, 0, 1, 1).str(), "[[1, 0], [1, 1]]");
}

TEST(UnimodularMatrix, PermutationMatrix) {
  // Output loop Perm[k] carries input loop k: perm = [2, 0, 1].
  UnimodularMatrix P = UnimodularMatrix::permutation(3, {2, 0, 1});
  std::vector<int64_t> Y = P.apply(std::vector<int64_t>{10, 20, 30});
  // y[2] = x0, y[0] = x1, y[1] = x2.
  EXPECT_EQ(Y, (std::vector<int64_t>{20, 30, 10}));
  EXPECT_TRUE(P.isUnimodular());
}

TEST(UnimodularMatrix, DeterminantBareiss) {
  EXPECT_EQ(UnimodularMatrix::identity(4).determinant(), 1);
  EXPECT_EQ(UnimodularMatrix::interchange(3, 0, 2).determinant(), -1);
  EXPECT_EQ(UnimodularMatrix::reversal(3, 1).determinant(), -1);
  EXPECT_EQ(UnimodularMatrix::skew(3, 0, 2, 7).determinant(), 1);
  UnimodularMatrix M(2, {2, 0, 0, 2});
  EXPECT_EQ(M.determinant(), 4);
  EXPECT_FALSE(M.isUnimodular());
  UnimodularMatrix Singular(2, {1, 2, 2, 4});
  EXPECT_EQ(Singular.determinant(), 0);
  // A pivot-swap case (zero on the diagonal).
  UnimodularMatrix Swap(3, {0, 1, 0, 1, 0, 0, 0, 0, 1});
  EXPECT_EQ(Swap.determinant(), -1);
}

TEST(UnimodularMatrix, MultiplicationComposesGenerators) {
  // Figure 1: skew then interchange = [[1, 1], [1, 0]].
  UnimodularMatrix Skew = UnimodularMatrix::skew(2, 0, 1, 1);
  UnimodularMatrix Inter = UnimodularMatrix::interchange(2, 0, 1);
  EXPECT_EQ((Inter * Skew).str(), "[[1, 1], [1, 0]]");
}

TEST(UnimodularMatrix, InverseIsExact) {
  std::vector<UnimodularMatrix> Ms = {
      UnimodularMatrix::identity(3),
      UnimodularMatrix::interchange(3, 0, 2),
      UnimodularMatrix::skew(3, 1, 2, -3),
      UnimodularMatrix(2, {1, 1, 1, 0}), // Figure 1's combined matrix
      UnimodularMatrix(3, {1, 2, 3, 0, 1, 4, 0, 0, -1}),
  };
  for (const UnimodularMatrix &M : Ms) {
    ASSERT_TRUE(M.isUnimodular()) << M.str();
    UnimodularMatrix I = M * M.inverse();
    EXPECT_EQ(I, UnimodularMatrix::identity(M.size())) << M.str();
  }
}

TEST(UnimodularMatrix, ApplyToDistanceVector) {
  UnimodularMatrix M(2, {1, 1, 1, 0});
  DepVector D = M.apply(DepVector::distances({1, 0}));
  EXPECT_EQ(D.str(), "(1, 1)");
  DepVector D2 = M.apply(DepVector::distances({0, 1}));
  EXPECT_EQ(D2.str(), "(1, 0)");
}

TEST(UnimodularMatrix, ApplyExtendedForDirections) {
  // Table 2: "appropriately extended for direction values".
  UnimodularMatrix M(2, {1, 1, 1, 0});
  DepVector D = M.apply(DepVector({DepElem::zero(), DepElem::pos()}));
  EXPECT_EQ(D.str(), "(+, 0)");
  // Skew of (+, -): first row +-: unbounded positive plus unbounded
  // negative reaches everything.
  DepVector D2 = M.apply(DepVector({DepElem::pos(), DepElem::neg()}));
  EXPECT_EQ(D2.str(), "(*, +)");
  // Reversal flips a direction exactly.
  UnimodularMatrix R = UnimodularMatrix::reversal(2, 0);
  EXPECT_EQ(R.apply(DepVector({DepElem::zeroPos(), DepElem::nonZero()})).str(),
            "(0-, +-)");
}

TEST(UnimodularMatrix, ApplyDirectionSoundness) {
  // Sampled soundness: M x for x drawn from the entries' value sets stays
  // inside the mapped vector's tuple set.
  UnimodularMatrix M(2, {2, 1, 1, 1});
  ASSERT_TRUE(M.isUnimodular());
  std::vector<DepElem> Pool = {DepElem::distance(2), DepElem::pos(),
                               DepElem::zeroNeg(), DepElem::any()};
  for (const DepElem &A : Pool)
    for (const DepElem &B : Pool) {
      DepVector In({A, B});
      DepVector Out = M.apply(In);
      for (int64_t VA : A.valuesWithin(3))
        for (int64_t VB : B.valuesWithin(3)) {
          std::vector<int64_t> Y = M.apply(std::vector<int64_t>{VA, VB});
          EXPECT_TRUE(Out.containsTuple(Y))
              << In.str() << " -> " << Out.str() << " misses (" << Y[0]
              << ", " << Y[1] << ")";
        }
    }
}

TEST(UnimodularMatrix, RowIsUnit) {
  UnimodularMatrix M = UnimodularMatrix::skew(3, 0, 2, 5);
  EXPECT_TRUE(M.rowIsUnit(0, 0));
  EXPECT_TRUE(M.rowIsUnit(1, 1));
  EXPECT_FALSE(M.rowIsUnit(2, 2));
  EXPECT_FALSE(M.rowIsUnit(0, 1));
}

} // namespace
