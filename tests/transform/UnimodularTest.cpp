//===- tests/transform/UnimodularTest.cpp ----------------------------------===//

#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(N)) << N.message();
  return *N;
}

TEST(Unimodular, IdentityKeepsNamesAndEmitsNoInits) {
  LoopNest N = parse("do i = 1, n\n  do j = 1, n\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  TemplateRef T = makeUnimodular(2, UnimodularMatrix::identity(2));
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->Loops[0].IndexVar, "i");
  EXPECT_EQ(Out->Loops[1].IndexVar, "j");
  EXPECT_TRUE(Out->Inits.empty());
}

TEST(Unimodular, InterchangeRectangular) {
  LoopNest N = parse("do i = 1, n\n  do j = 1, m\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  TemplateRef T = makeUnimodular(2, UnimodularMatrix::interchange(2, 0, 1));
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EXPECT_EQ(Out->Loops[0].Lower->str(), "1");
  EXPECT_EQ(Out->Loops[0].Upper->str(), "m");
  EXPECT_EQ(Out->Loops[1].Upper->str(), "n");
  // Renamed variables recover the originals through inits.
  ASSERT_EQ(Out->Inits.size(), 2u);
  EvalConfig C;
  C.Params = {{"n", 5}, {"m", 3}};
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Unimodular, SkewProducesShiftedInnerBounds) {
  LoopNest N = parse("do i = 0, 4\n  do j = 0, 4\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  // y2 = x2 + 2*x1.
  TemplateRef T = makeUnimodular(2, UnimodularMatrix::skew(2, 0, 1, 2));
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  // Outer loop keeps x1 (unit row); inner runs 2*i .. 2*i + 4.
  EXPECT_EQ(Out->Loops[0].IndexVar, "i");
  EXPECT_EQ(Out->Loops[1].Lower->str(), "2*i");
  EXPECT_EQ(Out->Loops[1].Upper->str(), "2*i + 4");
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Unimodular, StepNormalizationHandlesStridedLoops) {
  LoopNest N = parse("do i = 1, 20, 3\n  do j = 1, 10\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  TemplateRef T = makeUnimodular(2, UnimodularMatrix::interchange(2, 0, 1));
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
  // All output steps are 1 (Table 3 normalization).
  for (const Loop &L : Out->Loops)
    EXPECT_EQ(L.Step->str(), "1");
}

TEST(Unimodular, NegativeStepNormalization) {
  LoopNest N = parse("do i = 9, 2, -1\n  do j = 1, 4\n    a(i, j) = j\n"
                     "  enddo\nenddo\n");
  TemplateRef T = makeUnimodular(2, UnimodularMatrix::interchange(2, 0, 1));
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Unimodular, TriangularSkewCompound) {
  LoopNest N = parse("do i = 1, 8\n  do j = i, 8\n    a(i, j) = a(i, j) + 1\n"
                     "  enddo\nenddo\n");
  // Compound: y = [[1,1],[1,0]] (skew+interchange, as Figure 1).
  TemplateRef T = makeUnimodular(2, UnimodularMatrix(2, {1, 1, 1, 0}));
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Unimodular, ThreeDeepWavefront) {
  LoopNest N = parse("do i = 1, 5\n  do j = 1, 5\n    do k = 1, 5\n"
                     "      a(i, j, k) = a(i, j, k) + 1\n"
                     "    enddo\n  enddo\nenddo\n");
  // Wavefront: y1 = i + j + k (hyperplane method).
  UnimodularMatrix M(3, {1, 1, 1, 0, 1, 0, 0, 0, 1});
  TemplateRef T = makeUnimodular(3, M);
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Unimodular, PreconditionRejectsNonlinearBounds) {
  LoopNest N = parse("do i = 1, n\n  do j = colstr(i), n\n    a(i, j) = 1\n"
                     "  enddo\nenddo\n");
  TemplateRef T = makeUnimodular(2, UnimodularMatrix::interchange(2, 0, 1));
  EXPECT_NE(T->checkPreconditions(N), "");
  EXPECT_FALSE(static_cast<bool>(T->apply(N)));
}

TEST(Unimodular, PreconditionRejectsSymbolicStep) {
  LoopNest N = parse("do i = 1, n, s\n  a(i) = 1\nenddo\n");
  TemplateRef T = makeUnimodular(1, UnimodularMatrix::reversal(1, 0));
  EXPECT_NE(T->checkPreconditions(N), "");
}

TEST(Unimodular, PreconditionRejectsParallelLoops) {
  LoopNest N = parse("pardo i = 1, n\n  a(i) = 1\nenddo\n");
  TemplateRef T = makeUnimodular(1, UnimodularMatrix::identity(1));
  EXPECT_NE(T->checkPreconditions(N), "");
}

TEST(Unimodular, MaxMinBoundsFeedTheInequalitySystem) {
  // Lower bound max(1, m) and upper min(n, 10) decompose into separate
  // inequalities under the special case; interchange must succeed.
  LoopNest N = parse("do i = max(1, m), min(n, 10)\n  do j = 1, 5\n"
                     "    a(i, j) = 1\n  enddo\nenddo\n");
  TemplateRef T = makeUnimodular(2, UnimodularMatrix::interchange(2, 0, 1));
  ASSERT_EQ(T->checkPreconditions(N), "");
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  EvalConfig C;
  C.Params = {{"n", 8}, {"m", 3}};
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

TEST(Unimodular, ReversalEmitsNegatedInit) {
  LoopNest N = parse("do i = 1, 8\n  a(i) = i\nenddo\n");
  TemplateRef T = makeUnimodular(1, UnimodularMatrix::reversal(1, 0));
  ErrorOr<LoopNest> Out = T->apply(N);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();
  // y = -x: loop runs -8 .. -1 with init i = -y.
  EXPECT_EQ(Out->Loops[0].Lower->str(), "-8");
  EXPECT_EQ(Out->Loops[0].Upper->str(), "-1");
  ASSERT_EQ(Out->Inits.size(), 1u);
  EXPECT_EQ(Out->Inits[0].Var, "i");
  EvalConfig C;
  VerifyResult V = verifyTransformed(N, *Out, C);
  EXPECT_TRUE(V.Ok) << V.Problem;
}

} // namespace
