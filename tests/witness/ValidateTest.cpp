//===- tests/witness/ValidateTest.cpp - Guarded validation ladder ---------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The --validate layer (witness/Validate.h): candidate verdicts
/// (Confirmed / Disproved / Inconclusive), disproof reproducer dumps,
/// and the graceful-degradation ladder. The injected-unsound-candidate
/// tests are the ISSUE acceptance criterion: a candidate the legality
/// test would bless but concrete execution disproves must fall through
/// to the next-best candidate, and to the identity when nothing is
/// left - without a crash.
///
//===----------------------------------------------------------------------===//

#include "witness/Validate.h"

#include "dependence/DepAnalysis.h"
#include "ir/Parser.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

#include <fstream>

using namespace irlt;
using namespace irlt::witness;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> Nest = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(Nest)) << Nest.message();
  return Nest.take();
}

// Dependences {(0, 1), (1, 0)}: interchange is sound, reversing either
// loop is the canonical unsound-but-applicable candidate.
LoopNest stencil() {
  return parse("do i = 1, n\n"
               "  do j = 1, n\n"
               "    a(i, j) = a(i - 1, j) + a(i, j - 1)\n"
               "  enddo\n"
               "enddo\n");
}

TransformSequence soundCandidate() {
  return TransformSequence::of({makeInterchange(2, 0, 1)});
}

TransformSequence unsoundCandidate() {
  return TransformSequence::of(
      {makeReversePermute(2, {true, false}, {0, 1})});
}

ValidateOptions quietOptions() {
  ValidateOptions O = ValidateOptions::defaults();
  O.ReproDir.clear(); // tests that want dumps opt in explicitly
  return O;
}

TEST(Validate, SoundCandidateIsConfirmed) {
  LoopNest Nest = stencil();
  CandidateOutcome O =
      validateCandidate(Nest, soundCandidate(), quietOptions());
  EXPECT_EQ(O.Status, ValidateStatus::Confirmed) << O.Detail;
  EXPECT_NE(O.Detail.find("2 binding(s)"), std::string::npos) << O.Detail;
  EXPECT_TRUE(O.ReproPath.empty());
}

TEST(Validate, UnsoundCandidateIsDisprovedWithReproducer) {
  LoopNest Nest = stencil();
  ValidateOptions Opts = ValidateOptions::defaults();
  Opts.ReproDir = ::testing::TempDir() + "/irlt-validate-repro-test";

  CandidateOutcome O = validateCandidate(Nest, unsoundCandidate(), Opts);
  ASSERT_EQ(O.Status, ValidateStatus::Disproved) << O.Detail;
  EXPECT_NE(O.Detail.find("binding"), std::string::npos) << O.Detail;
  EXPECT_FALSE(O.Why.Message.empty());

  // The disproof is dumped as a replayable trio; the nest file must
  // round-trip through the parser.
  ASSERT_FALSE(O.ReproPath.empty());
  std::ifstream In(O.ReproPath);
  ASSERT_TRUE(In.good()) << "missing reproducer " << O.ReproPath;
  std::string Src((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  ErrorOr<LoopNest> Dumped = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(Dumped)) << Dumped.message();

  std::string Base = O.ReproPath.substr(0, O.ReproPath.rfind('.'));
  EXPECT_TRUE(std::ifstream(Base + ".script").good());
  EXPECT_TRUE(std::ifstream(Base + ".txt").good());
}

TEST(Validate, TinyBudgetIsInconclusiveNotDisproved) {
  LoopNest Nest = stencil();
  ValidateOptions Opts = quietOptions();
  Opts.MaxInstances = 1; // no binding can finish
  CandidateOutcome O = validateCandidate(Nest, soundCandidate(), Opts);
  EXPECT_EQ(O.Status, ValidateStatus::Inconclusive) << O.Detail;
  EXPECT_NE(O.Detail.find("budget"), std::string::npos) << O.Detail;
}

TEST(Validate, NoBindingsIsInconclusive) {
  LoopNest Nest = stencil();
  ValidateOptions Opts = quietOptions();
  Opts.Bindings.clear();
  CandidateOutcome O = validateCandidate(Nest, soundCandidate(), Opts);
  EXPECT_EQ(O.Status, ValidateStatus::Inconclusive) << O.Detail;
}

//===--- The degradation ladder ---------------------------------------------=

TEST(Validate, LadderFallsThroughUnsoundCandidateToNextBest) {
  // The ISSUE acceptance scenario: an unsound candidate injected ahead
  // of a sound one must be disproved and skipped, not chosen.
  LoopNest Nest = stencil();
  LadderResult R = validateLadder(
      Nest, {unsoundCandidate(), soundCandidate()}, quietOptions());
  EXPECT_EQ(R.Chosen, 1);
  EXPECT_FALSE(R.fellBackToIdentity());
  ASSERT_EQ(R.Outcomes.size(), 2u);
  EXPECT_EQ(R.Outcomes[0].Status, ValidateStatus::Disproved)
      << R.Outcomes[0].Detail;
  EXPECT_EQ(R.Outcomes[1].Status, ValidateStatus::Confirmed)
      << R.Outcomes[1].Detail;
}

TEST(Validate, LadderFallsBackToIdentityWhenAllDisproved) {
  LoopNest Nest = stencil();
  TransformSequence OtherUnsound =
      TransformSequence::of({makeParallelize(2, {true, false})});
  LadderResult R = validateLadder(
      Nest, {unsoundCandidate(), OtherUnsound}, quietOptions());
  EXPECT_EQ(R.Chosen, -1);
  EXPECT_TRUE(R.fellBackToIdentity());
  ASSERT_EQ(R.Outcomes.size(), 2u);
  EXPECT_EQ(R.Outcomes[0].Status, ValidateStatus::Disproved);
  EXPECT_EQ(R.Outcomes[1].Status, ValidateStatus::Disproved);
}

TEST(Validate, LadderStopsAtFirstConfirmedCandidate) {
  LoopNest Nest = stencil();
  LadderResult R = validateLadder(
      Nest, {soundCandidate(), unsoundCandidate()}, quietOptions());
  EXPECT_EQ(R.Chosen, 0);
  // The walk stops at the confirmation: the unsound candidate is never
  // examined.
  EXPECT_EQ(R.Outcomes.size(), 1u);
}

TEST(Validate, LadderPrefersInconclusiveOverIdentity) {
  // A candidate that cannot be disproved within budget outranks giving
  // up entirely; it was, after all, accepted by the legality test.
  LoopNest Nest = stencil();
  ValidateOptions Opts = quietOptions();
  Opts.MaxInstances = 1;
  LadderResult R = validateLadder(Nest, {soundCandidate()}, Opts);
  EXPECT_EQ(R.Chosen, 0);
  ASSERT_EQ(R.Outcomes.size(), 1u);
  EXPECT_EQ(R.Outcomes[0].Status, ValidateStatus::Inconclusive);
}

TEST(Validate, EmptyLadderFallsBackToIdentity) {
  LoopNest Nest = stencil();
  LadderResult R = validateLadder(Nest, {}, quietOptions());
  EXPECT_TRUE(R.fellBackToIdentity());
  EXPECT_TRUE(R.Outcomes.empty());
}

TEST(Validate, StatusNamesAreStable) {
  EXPECT_STREQ(validateStatusName(ValidateStatus::Confirmed), "confirmed");
  EXPECT_STREQ(validateStatusName(ValidateStatus::Disproved), "disproved");
  EXPECT_STREQ(validateStatusName(ValidateStatus::Inconclusive),
               "inconclusive");
}

} // namespace
