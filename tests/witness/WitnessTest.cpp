//===- tests/witness/WitnessTest.cpp - Certificates and the checker -------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Certificates (witness/Witness.h): acceptance traces, lex-negative
/// rejection witnesses with concrete tuples and violating iteration
/// pairs, the machine checker's tamper detection, sequence-to-script
/// round-tripping, and the Verify counterexample round trip through
/// checkViolationPair (ISSUE 3 satellite).
///
//===----------------------------------------------------------------------===//

#include "witness/Witness.h"

#include "dependence/DepAnalysis.h"
#include "driver/Script.h"
#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/Templates.h"

#include <gtest/gtest.h>

using namespace irlt;
using namespace irlt::witness;

namespace {

LoopNest parse(const std::string &Src) {
  ErrorOr<LoopNest> Nest = parseLoopNest(Src);
  EXPECT_TRUE(static_cast<bool>(Nest)) << Nest.message();
  return Nest.take();
}

// A 2-deep stencil whose dependence set {(0, 1), (1, 0)} admits
// interchange but rejects any reversal or parallelization.
const char *StencilSrc = "do i = 1, n\n"
                         "  do j = 1, n\n"
                         "    a(i, j) = a(i - 1, j) + a(i, j - 1)\n"
                         "  enddo\n"
                         "enddo\n";

//===--- Acceptance certificates --------------------------------------------=

TEST(Witness, AcceptanceTraceRecordsEveryStage) {
  LoopNest Nest = parse(StencilSrc);
  DepSet D = analyzeDependences(Nest);
  TransformSequence Seq = TransformSequence::of(
      {makeInterchange(2, 0, 1), makeParallelize(2, {false, false})});

  Certificate C = certify(Seq, Nest, D);
  ASSERT_TRUE(C.Accepted);
  ASSERT_EQ(C.Stages.size(), 2u);
  EXPECT_EQ(C.Stages[0].Stage, 1u);
  EXPECT_EQ(C.Stages[0].In, D);
  EXPECT_EQ(C.Stages[1].In, C.Stages[0].Out);
  EXPECT_EQ(C.FinalDeps, C.Stages[1].Out);
  EXPECT_TRUE(C.FinalDeps.allLexNonNegative());

  EXPECT_EQ(checkCertificate(C, Seq, Nest, D), "");
  EXPECT_NE(C.str().find("certificate: ACCEPT"), std::string::npos);
}

TEST(Witness, CheckerRejectsTamperedAcceptanceTrace) {
  LoopNest Nest = parse(StencilSrc);
  DepSet D = analyzeDependences(Nest);
  TransformSequence Seq = TransformSequence::of({makeInterchange(2, 0, 1)});

  Certificate C = certify(Seq, Nest, D);
  ASSERT_TRUE(C.Accepted);

  // Tamper with the recorded stage output: the checker re-derives the
  // mapping and must notice.
  Certificate Bad = C;
  DepSet Forged;
  Forged.insert(DepVector::distances({0, 0}));
  Bad.Stages[0].Out = Forged;
  EXPECT_NE(checkCertificate(Bad, Seq, Nest, D), "");

  // Tamper with the final set only.
  Bad = C;
  Bad.FinalDeps = Forged;
  EXPECT_NE(checkCertificate(Bad, Seq, Nest, D), "");

  // Drop a stage: arity mismatch.
  Bad = C;
  Bad.Stages.clear();
  EXPECT_NE(checkCertificate(Bad, Seq, Nest, D), "");
}

//===--- Rejection certificates ---------------------------------------------=

TEST(Witness, LexNegativeRejectionCarriesTupleAndConcretePair) {
  LoopNest Nest = parse(StencilSrc);
  DepSet D = analyzeDependences(Nest);
  // Reversing the outer loop flips the carried dependence: illegal.
  TransformSequence Seq =
      TransformSequence::of({makeReversePermute(2, {true, false}, {0, 1})});

  Certificate C = certify(Seq, Nest, D);
  ASSERT_FALSE(C.Accepted);
  EXPECT_EQ(C.Kind, LegalityResult::RejectKind::LexNegative);

  ASSERT_TRUE(C.HasBadVector);
  EXPECT_TRUE(C.BadVector.canBeLexNegative());
  ASSERT_FALSE(C.BadTuple.empty());
  EXPECT_TRUE(C.BadVector.containsTuple(C.BadTuple));
  EXPECT_LT(C.BadTuple[0], 0);

  // The bounds pipeline accepts a reversal, so bounded execution must
  // find a concrete violating pair and the checker must replay it.
  ASSERT_TRUE(C.HasPair);
  EXPECT_EQ(checkCertificate(C, Seq, Nest, D), "");
  EXPECT_NE(C.str().find("certificate: REJECT (lex-negative)"),
            std::string::npos);
  EXPECT_NE(C.str().find("violating pair"), std::string::npos);
}

TEST(Witness, CheckerRejectsTamperedRejection) {
  LoopNest Nest = parse(StencilSrc);
  DepSet D = analyzeDependences(Nest);
  TransformSequence Seq =
      TransformSequence::of({makeReversePermute(2, {true, false}, {0, 1})});

  Certificate C = certify(Seq, Nest, D);
  ASSERT_FALSE(C.Accepted);
  ASSERT_TRUE(C.HasBadVector);
  ASSERT_TRUE(C.HasPair);

  // A tuple outside the claimed vector's value set.
  Certificate Bad = C;
  Bad.BadTuple = std::vector<int64_t>(C.BadVector.size(), 99);
  EXPECT_NE(checkCertificate(Bad, Seq, Nest, D), "");

  // A lex-positive tuple.
  Bad = C;
  for (auto &V : Bad.BadTuple)
    V = V < 0 ? -V : V;
  if (Bad.BadTuple != C.BadTuple) {
    EXPECT_NE(checkCertificate(Bad, Seq, Nest, D), "");
  }

  // A vector the mapped set does not contain.
  Bad = C;
  Bad.BadVector = DepVector({DepElem::neg(), DepElem::distance(7)});
  EXPECT_NE(checkCertificate(Bad, Seq, Nest, D), "");

  // A "violating" pair that the transformed nest actually keeps in
  // order (swap source and destination).
  Bad = C;
  std::swap(Bad.SrcIter, Bad.DstIter);
  EXPECT_NE(checkCertificate(Bad, Seq, Nest, D), "");

  // A claimed verdict contradicting the legality test.
  Bad = C;
  Bad.Accepted = true;
  EXPECT_NE(checkCertificate(Bad, Seq, Nest, D), "");
}

//===--- lexNegativeTuple ---------------------------------------------------=

TEST(Witness, LexNegativeTupleExtraction) {
  EXPECT_EQ(lexNegativeTuple(
                DepVector({DepElem::zeroNeg(), DepElem::pos()})),
            (std::vector<int64_t>{-1, 1}));
  EXPECT_EQ(lexNegativeTuple(
                DepVector({DepElem::zero(), DepElem::distance(-3)})),
            (std::vector<int64_t>{0, -3}));
  // No lex-negative member: leading positive distance shields the tail.
  EXPECT_TRUE(lexNegativeTuple(
                  DepVector({DepElem::distance(1), DepElem::neg()}))
                  .empty());
  EXPECT_TRUE(
      lexNegativeTuple(DepVector({DepElem::pos(), DepElem::any()})).empty());
}

//===--- Sequence-to-script serialization -----------------------------------=

TEST(Witness, ScriptRoundTripsThroughTheParser) {
  // One of each directly-expressible template; sizes consistent with a
  // 3-deep nest (block 3->5 loops, coalesce 5->4, stripmine 4->5).
  TransformSequence Seq = TransformSequence::of(
      {makeUnimodular(3, UnimodularMatrix::skew(3, 0, 1, 2)),
       makeBlock(3, 1, 2, {Expr::intConst(4), Expr::var("b")}),
       makeCoalesce(5, 1, 2),
       makeStripMine(4, 2, Expr::intConst(8)),
       makeParallelize(5, {false, false, true, false, false})});

  ErrorOr<std::string> Script = scriptForSequence(Seq);
  ASSERT_TRUE(static_cast<bool>(Script)) << Script.message();
  ErrorOr<TransformSequence> Parsed = parseTransformScript(*Script, 3);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
  EXPECT_EQ(Parsed->str(), Seq.str());
}

TEST(Witness, ScriptSplitsReversePermuteIntoDirectives) {
  // RP reverses first, then permutes; the serializer emits `reverse` +
  // `permute` lines whose parse reduces back to the original step.
  TransformSequence Seq = TransformSequence::of(
      {makeReversePermute(3, {false, true, false}, {2, 0, 1})});
  ErrorOr<std::string> Script = scriptForSequence(Seq);
  ASSERT_TRUE(static_cast<bool>(Script)) << Script.message();
  ErrorOr<TransformSequence> Parsed = parseTransformScript(*Script, 3);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
  EXPECT_EQ(Parsed->reduced().str(), Seq.reduced().str());
}

TEST(Witness, ScriptRefusesInexpressibleSizes) {
  // A composite size expression has no script token.
  TransformSequence Seq = TransformSequence::of({makeStripMine(
      2, 1, Expr::add(Expr::var("b"), Expr::intConst(1)))});
  ErrorOr<std::string> Script = scriptForSequence(Seq);
  EXPECT_FALSE(static_cast<bool>(Script));
}

//===--- Verify counterexample round trip (ISSUE 3 satellite) ---------------=

TEST(Witness, VerifyCounterexampleRoundTripsThroughChecker) {
  LoopNest Nest = parse(StencilSrc);
  // Apply an illegal reversal *without* consulting legality: ground
  // truth must produce a concrete counterexample pair.
  TransformSequence Seq =
      TransformSequence::of({makeReversePermute(2, {true, false}, {0, 1})});
  ErrorOr<LoopNest> Out = applySequence(Seq, Nest);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();

  EvalConfig C;
  C.Params = {{"n", 5}};
  VerifyResult V = verifyTransformed(Nest, *Out, C);
  ASSERT_FALSE(V.Ok);
  ASSERT_TRUE(V.Counterexample.has_value())
      << "dependence-order failure must name a concrete pair: " << V.Problem;
  EXPECT_NE(V.Problem.find("("), std::string::npos)
      << "report must render the iteration tuples: " << V.Problem;
  ASSERT_EQ(V.Counterexample->SrcIter.size(), 2u);

  // The pair replays through the witness checker...
  EXPECT_EQ(checkViolationPair(Nest, *Out, V.Counterexample->SrcIter,
                               V.Counterexample->DstIter, C),
            "");
  // ...and a fabricated pair does not.
  EXPECT_NE(checkViolationPair(Nest, *Out, V.Counterexample->DstIter,
                               V.Counterexample->SrcIter, C),
            "");
  EXPECT_NE(checkViolationPair(Nest, *Out, {99, 99}, {100, 100}, C), "");
}

TEST(Witness, PardoCounterexampleRoundTripsThroughChecker) {
  LoopNest Nest = parse(StencilSrc);
  // Parallelizing the dependence-carrying outer loop leaves dependent
  // instances unordered: the unordered-pardo counterexample flavor.
  TransformSequence Seq =
      TransformSequence::of({makeParallelize(2, {true, false})});
  ErrorOr<LoopNest> Out = applySequence(Seq, Nest);
  ASSERT_TRUE(static_cast<bool>(Out)) << Out.message();

  EvalConfig C;
  C.Params = {{"n", 4}};
  VerifyResult V = verifyTransformed(Nest, *Out, C);
  ASSERT_FALSE(V.Ok);
  ASSERT_TRUE(V.Counterexample.has_value()) << V.Problem;
  EXPECT_EQ(checkViolationPair(Nest, *Out, V.Counterexample->SrcIter,
                               V.Counterexample->DstIter, C),
            "");
}

} // namespace
