//===- tools/irlt-analyze.cpp - The static diagnostic & lint driver -------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// irlt-analyze: run the static diagnostic and lint engine
/// (src/analysis/, docs/ANALYSIS.md) over loop nests and their
/// transformation scripts without executing anything.
///
///   irlt-analyze PATH... [options]
///     PATH                a .nest file or a directory scanned for
///                         *.nest files; a nest's script is the
///                         sibling <stem>.script when present
///     -s, --script FILE   explicit script for a single nest argument
///     --no-lint           error-class rules only (skip warnings)
///     --fixit             print the fixed sequence when one applies
///     --cross-check-deps  diff the production dependence analyzer
///                         against the first-principles fm-exact backend
///                         on each nest and report W205/W206 findings
///                         (docs/DEPENDENCE.md); off by default - the
///                         exact backend is much slower
///     --rules             print the rule registry and exit
///     --json              one versioned ndjson record per input (the
///                         shared schema of docs/API.md); the header
///                         carries the rule registry version
///                         (rules_version) so triage can tell which
///                         rule set produced the report
///
/// Exit status: 0 when every input analyzed clean of error-class
/// findings (warnings do not fail), 2 when any error-class finding or
/// script parse error was reported, 1 on tool/usage errors.
///
//===----------------------------------------------------------------------===//

#include "api/Pipeline.h"
#include "support/Json.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace irlt;

namespace {

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s PATH... [-s SCRIPTFILE] [--no-lint] [--fixit]\n"
               "          [--cross-check-deps] [--rules] [--json]\n"
               "PATH is a .nest file or a directory of *.nest files; a "
               "sibling <stem>.script\nis analyzed with its nest when "
               "present.\n"
               "exit status: 0 clean, 2 error-class findings, 1 error\n",
               Argv0);
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

struct Input {
  std::string NestPath;
  std::string ScriptPath; ///< empty when the nest has no script
};

/// Expands a path argument into nest/script pairs; directories are
/// scanned non-recursively and sorted for deterministic output.
bool expandPath(const std::string &Path, std::vector<Input> &Out) {
  namespace fs = std::filesystem;
  std::error_code EC;
  if (fs::is_directory(Path, EC)) {
    std::vector<std::string> Nests;
    for (const fs::directory_entry &E : fs::directory_iterator(Path, EC))
      if (E.is_regular_file() && E.path().extension() == ".nest")
        Nests.push_back(E.path().string());
    std::sort(Nests.begin(), Nests.end());
    for (const std::string &N : Nests) {
      Input I;
      I.NestPath = N;
      std::string Sibling = fs::path(N).replace_extension(".script").string();
      if (fs::exists(Sibling, EC))
        I.ScriptPath = Sibling;
      Out.push_back(std::move(I));
    }
    return true;
  }
  if (!fs::is_regular_file(Path, EC))
    return false;
  Input I;
  I.NestPath = Path;
  std::string Sibling =
      fs::path(Path).replace_extension(".script").string();
  if (Sibling != Path && fs::exists(Sibling, EC))
    I.ScriptPath = Sibling;
  Out.push_back(std::move(I));
  return true;
}

void printRules() {
  std::printf("%-6s %-8s %-62s %s\n", "rule", "severity", "title",
              "citation");
  for (const analysis::RuleInfo &R : analysis::ruleRegistry())
    std::printf("%-6s %-8s %-62s %s\n", R.Id,
                analysis::severityName(R.Severity), R.Title, R.Citation);
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Paths;
  std::string ScriptOverride;
  bool Lint = true, Fixit = false, JsonMode = false;
  bool CrossCheckDeps = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "-s" || A == "--script") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", A.c_str());
        return 1;
      }
      ScriptOverride = argv[++I];
    } else if (A == "--no-lint") {
      Lint = false;
    } else if (A == "--fixit") {
      Fixit = true;
    } else if (A == "--cross-check-deps") {
      CrossCheckDeps = true;
    } else if (A == "--json") {
      JsonMode = true;
    } else if (A == "--rules") {
      printRules();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      usage(argv[0]);
      return 1;
    } else {
      Paths.push_back(A);
    }
  }
  if (Paths.empty()) {
    usage(argv[0]);
    return 1;
  }
  if (!ScriptOverride.empty() && Paths.size() != 1) {
    std::fprintf(stderr,
                 "error: --script needs exactly one nest argument\n");
    return 1;
  }

  std::vector<Input> Inputs;
  for (const std::string &P : Paths) {
    if (!expandPath(P, Inputs)) {
      std::fprintf(stderr, "error: cannot read '%s'\n", P.c_str());
      return 1;
    }
  }
  if (!ScriptOverride.empty() && Inputs.size() == 1)
    Inputs.front().ScriptPath = ScriptOverride;

  api::Pipeline P;
  analysis::AnalysisOptions AO;
  AO.Lint = Lint;
  AO.CrossCheckDeps = CrossCheckDeps;

  unsigned TotalErrors = 0, TotalWarnings = 0;
  for (const Input &In : Inputs) {
    std::string Source;
    if (!readFile(In.NestPath, Source)) {
      std::fprintf(stderr, "error: cannot read '%s'\n", In.NestPath.c_str());
      return 1;
    }
    ErrorOr<LoopNest> NestOr = P.loadNest(Source);
    if (!NestOr) {
      std::fprintf(stderr, "%s: %s\n", In.NestPath.c_str(),
                   NestOr.message().c_str());
      return 1;
    }
    LoopNest Nest = NestOr.take();

    std::string Script;
    if (!In.ScriptPath.empty() && !readFile(In.ScriptPath, Script)) {
      std::fprintf(stderr, "error: cannot read '%s'\n",
                   In.ScriptPath.c_str());
      return 1;
    }

    json::JsonWriter W;
    if (JsonMode) {
      json::beginToolRecord(W, "irlt-analyze");
      W.field("rules_version",
              static_cast<uint64_t>(analysis::ruleRegistryVersion()));
      W.field("nest", In.NestPath);
      if (!In.ScriptPath.empty())
        W.field("script", In.ScriptPath);
    }

    // A script that does not parse is reported through the same severity
    // model: the parser's per-directive diagnostics count as errors.
    ErrorOr<TransformSequence> SeqOr =
        P.parseScript(Script, Nest.numLoops());
    if (!SeqOr) {
      std::vector<Diag> Diags = SeqOr.takeDiags();
      TotalErrors += static_cast<unsigned>(Diags.size());
      if (JsonMode) {
        W.field("ok", true);
        W.field("parse_ok", false);
        W.key("parse_errors").beginArray();
        for (const Diag &D : Diags)
          W.value(D.str());
        W.endArray();
        W.endObject();
        std::printf("%s\n", W.take().c_str());
      } else {
        std::printf("%s: script does not parse\n", In.NestPath.c_str());
        for (const Diag &D : Diags)
          std::printf("error: %s\n", D.str().c_str());
      }
      continue;
    }
    TransformSequence Seq = SeqOr.take();

    analysis::AnalysisReport AR = P.analyze(Seq, Nest, AO);
    TotalErrors += AR.errorCount();
    TotalWarnings += AR.warningCount();

    if (JsonMode) {
      W.field("ok", true);
      W.field("parse_ok", true);
      W.field("sequence", Seq.str());
      W.key("analysis");
      analysis::writeReport(W, AR);
      W.endObject();
      std::printf("%s\n", W.take().c_str());
    } else {
      std::printf("%s: %u error(s), %u warning(s)\n", In.NestPath.c_str(),
                  AR.errorCount(), AR.warningCount());
      for (const analysis::Finding &F : AR.Findings)
        std::printf("%s: %s\n", analysis::severityName(F.Severity),
                    F.toDiag().str().c_str());
      if (Fixit && AR.Fixed)
        std::printf("fixit: %s\n", AR.Fixed->str().c_str());
    }
  }

  if (!JsonMode && Inputs.size() > 1)
    std::printf("analyzed %zu nest(s): %u error(s), %u warning(s)\n",
                Inputs.size(), TotalErrors, TotalWarnings);
  return TotalErrors ? 2 : 0;
}
