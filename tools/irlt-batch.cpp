//===- tools/irlt-batch.cpp - Batch pipeline driver -----------------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// irlt-batch: the high-throughput front of the framework (docs/API.md).
/// Reads a stream of ndjson requests (engine/Wire.h) - one JSON object
/// per line, each a complete irlt-opt-style job: a nest plus either a
/// transformation script or an --auto search spec - executes them on a
/// worker pool sharing the facade's dependence and legality caches, and
/// writes one versioned JSON result record per request to stdout, in
/// input order, byte-identical for any --jobs value.
///
///   irlt-batch [FILE] [options]        (FILE defaults to stdin)
///     --jobs N        worker threads (default 1)
///     --no-cache      disable the shared memoization caches
///     --validate[=N]  force bounded concrete-execution validation of
///                     every request (N = instance budget, default 200000)
///     --stats         print the engine metrics record (cache hit rates,
///                     p50/p95 per-stage latency, worker utilization) to
///                     stderr after the run
///
/// Exit status: 0 when every request was served successfully, 2 when any
/// request failed (its record carries "ok": false) or any script-mode
/// legality test rejected, 1 on tool/usage errors.
///
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace irlt;

namespace {

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [FILE] [--jobs N] [--no-cache] [--validate[=N]]"
               " [--stats]\n"
               "reads ndjson requests (FILE or stdin), writes one JSON "
               "record per request\n"
               "exit status: 0 all served, 2 request errors or illegal "
               "sequences, 1 tool error\n",
               Argv0);
}

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    uint64_t D = static_cast<uint64_t>(C - '0');
    if (V > (UINT64_MAX - D) / 10)
      return false;
    V = V * 10 + D;
  }
  Out = V;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string InputPath;
  engine::EngineOptions Opts;
  bool Stats = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--jobs") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: --jobs needs an argument\n");
        return 1;
      }
      uint64_t J = 0;
      if (!parseU64(argv[++I], J) || !J || J > 1024) {
        std::fprintf(stderr, "error: --jobs expects 1..1024\n");
        return 1;
      }
      Opts.Jobs = static_cast<unsigned>(J);
    } else if (A == "--no-cache") {
      Opts.EnableCache = false;
    } else if (A == "--validate" || A.rfind("--validate=", 0) == 0) {
      Opts.ForcedValidateBudget = 200'000;
      if (A.size() > 10 && A[10] == '=') {
        uint64_t B = 0;
        if (!parseU64(A.substr(11), B) || !B) {
          std::fprintf(stderr, "error: --validate= expects a positive "
                               "instance budget\n");
          return 1;
        }
        Opts.ForcedValidateBudget = B;
      }
    } else if (A == "--stats") {
      Stats = true;
    } else if (A == "--help" || A == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      usage(argv[0]);
      return 1;
    } else if (InputPath.empty()) {
      InputPath = A;
    } else {
      std::fprintf(stderr, "error: more than one input file\n");
      return 1;
    }
  }

  std::string Input;
  if (InputPath.empty()) {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Input = SS.str();
  } else {
    std::ifstream In(InputPath);
    if (!In) {
      std::fprintf(stderr, "error: cannot read '%s'\n", InputPath.c_str());
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Input = SS.str();
  }

  engine::BatchEngine E(Opts);
  engine::EngineMetrics M =
      E.run(engine::splitLines(Input), [](const std::string &Record) {
        std::fwrite(Record.data(), 1, Record.size(), stdout);
        std::fputc('\n', stdout);
      });

  if (Stats)
    std::fprintf(stderr, "%s\n", M.toJson().c_str());

  return M.Errors || M.Illegal ? 2 : 0;
}
