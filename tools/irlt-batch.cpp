//===- tools/irlt-batch.cpp - Batch pipeline driver -----------------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// irlt-batch: the high-throughput front of the framework (docs/API.md).
/// Reads a stream of ndjson requests (engine/Wire.h) - one JSON object
/// per line, each a complete irlt-opt-style job: a nest plus either a
/// transformation script or an --auto search spec - executes them on a
/// worker pool sharing the facade's dependence and legality caches, and
/// writes one versioned JSON result record per request to stdout, in
/// input order, byte-identical for any --jobs value.
///
///   irlt-batch [FILE] [options]        (FILE defaults to stdin)
///     --jobs N            worker threads (default 1)
///     --no-cache          disable the shared memoization caches
///     --cache-cap N       bound each cache to N entries (LRU eviction;
///                         a memory knob, never a correctness one)
///     --max-line-bytes N  per-request line bound (default 1 MiB);
///                         longer lines degrade to a structured
///                         "oversized_line" error record
///     --validate[=N]      force bounded concrete-execution validation of
///                         every request (N = instance budget, default
///                         200000); --validate=native adds the
///                         compile-and-run tier (docs/CODEGEN.md) with
///                         the raised interpreter budget
///     --fault SPEC        deterministic fault injection (docs/SERVE.md;
///                         also via the IRLT_FAULT environment variable)
///     --stats             print the engine metrics record (cache hit
///                         rates, p50/p95 per-stage latency, worker
///                         utilization) to stderr after the run
///
/// SIGINT/SIGTERM interrupt cooperatively: workers finish their in-flight
/// request, the emitted stream is a clean completed prefix in input
/// order, a final {"record": "interrupted"} marker line distinguishes it
/// from a complete run, and the exit status is 3.
///
/// Exit status: 0 when every request was served successfully, 2 when any
/// request failed (its record carries "ok": false) or any script-mode
/// legality test rejected, 3 when interrupted by a signal, 1 on
/// tool/usage errors.
///
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "support/Json.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace irlt;

namespace {

/// Set by the SIGINT/SIGTERM handler; the engine polls it between
/// requests (cooperative interruption, never a torn record).
std::atomic<bool> GStop{false};

void onSignal(int) { GStop.store(true); }

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [FILE] [--jobs N] [--no-cache] [--cache-cap N]"
               " [--max-line-bytes N] [--validate[=N|native]] [--fault SPEC]"
               " [--stats]\n"
               "reads ndjson requests (FILE or stdin), writes one JSON "
               "record per request\n"
               "exit status: 0 all served, 2 request errors or illegal "
               "sequences, 3 interrupted, 1 tool error\n",
               Argv0);
}

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    uint64_t D = static_cast<uint64_t>(C - '0');
    if (V > (UINT64_MAX - D) / 10)
      return false;
    V = V * 10 + D;
  }
  Out = V;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string InputPath;
  engine::EngineOptions Opts;
  bool Stats = false;

  std::string FaultErr;
  Opts.Faults = faultsFromEnv(&FaultErr);
  if (!FaultErr.empty()) {
    std::fprintf(stderr, "error: IRLT_FAULT: %s\n", FaultErr.c_str());
    return 1;
  }

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--jobs") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: --jobs needs an argument\n");
        return 1;
      }
      uint64_t J = 0;
      if (!parseU64(argv[++I], J) || !J || J > 1024) {
        std::fprintf(stderr, "error: --jobs expects 1..1024\n");
        return 1;
      }
      Opts.Jobs = static_cast<unsigned>(J);
    } else if (A == "--no-cache") {
      Opts.EnableCache = false;
    } else if (A == "--cache-cap") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: --cache-cap needs an argument\n");
        return 1;
      }
      uint64_t N = 0;
      if (!parseU64(argv[++I], N) || !N) {
        std::fprintf(stderr, "error: --cache-cap expects a positive entry "
                             "count\n");
        return 1;
      }
      Opts.CacheCapacity = static_cast<size_t>(N);
    } else if (A == "--max-line-bytes") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: --max-line-bytes needs an argument\n");
        return 1;
      }
      uint64_t N = 0;
      if (!parseU64(argv[++I], N) || !N) {
        std::fprintf(stderr,
                     "error: --max-line-bytes expects a positive byte "
                     "count\n");
        return 1;
      }
      Opts.MaxLineBytes = static_cast<size_t>(N);
    } else if (A == "--fault") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: --fault needs an argument\n");
        return 1;
      }
      ErrorOr<FaultConfig> FC = parseFaultSpec(argv[++I]);
      if (!FC) {
        std::fprintf(stderr, "error: --fault: %s\n", FC.message().c_str());
        return 1;
      }
      Opts.Faults = *FC;
    } else if (A == "--validate" || A.rfind("--validate=", 0) == 0) {
      Opts.ForcedValidateBudget = 200'000;
      if (A.size() > 10 && A[10] == '=') {
        std::string Arg = A.substr(11);
        if (Arg == "native") {
          Opts.ForcedValidateBudget = 0;
          Opts.ForcedValidateNative = true;
        } else {
          uint64_t B = 0;
          if (!parseU64(Arg, B) || !B) {
            std::fprintf(stderr, "error: --validate= expects a positive "
                                 "instance budget or 'native'\n");
            return 1;
          }
          Opts.ForcedValidateBudget = B;
        }
      }
    } else if (A == "--stats") {
      Stats = true;
    } else if (A == "--help" || A == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      usage(argv[0]);
      return 1;
    } else if (InputPath.empty()) {
      InputPath = A;
    } else {
      std::fprintf(stderr, "error: more than one input file\n");
      return 1;
    }
  }

  std::string Input;
  if (InputPath.empty()) {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Input = SS.str();
  } else {
    std::ifstream In(InputPath, std::ios::binary);
    if (!In) {
      std::fprintf(stderr, "error: cannot read '%s'\n", InputPath.c_str());
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Input = SS.str();
  }

  Opts.StopFlag = &GStop;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  engine::BatchEngine E(Opts);
  engine::EngineMetrics M =
      E.run(engine::splitLines(Input), [](const std::string &Record) {
        std::fwrite(Record.data(), 1, Record.size(), stdout);
        std::fputc('\n', stdout);
      });

  if (M.Interrupted) {
    // A partial stream must never be mistaken for a complete run: the
    // marker carries how far the clean prefix got.
    json::JsonWriter W;
    json::beginToolRecord(W, "irlt-batch");
    W.field("record", "interrupted");
    W.field("served", M.Served);
    W.field("requests", M.Requests);
    W.endObject();
    std::fprintf(stdout, "%s\n", W.str().c_str());
  }
  std::fflush(stdout);

  if (Stats)
    std::fprintf(stderr, "%s\n", M.toJson().c_str());

  if (M.Interrupted)
    return 3;
  return M.Errors || M.Illegal ? 2 : 0;
}
