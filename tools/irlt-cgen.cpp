//===- tools/irlt-cgen.cpp - Emit / compile / run native harnesses --------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// irlt-cgen: lower an (original, transformed) nest pair into one
/// standalone differential C program (docs/CODEGEN.md), and optionally
/// compile and run it with the host compiler.
///
///   irlt-cgen FILE [options]
///     -s, --script TEXT    transformation script (see driver/Script.h)
///     -f, --script-file F  read the script from a file
///     --bind k=v,...       scalar parameter bindings
///                          (default n=16,m=12,b=4, overridable per key)
///     --seed N             array-image seed (default 42)
///     --reps N             timing repetitions in the harness (default 0)
///     -o FILE              write the program to FILE instead of stdout
///     --run                compile and run instead of printing
///     --cc PATH            compiler for --run (default: $IRLT_CC probe)
///     --no-openmp          emit/compile without OpenMP
///     --timeout-ms N       run timeout for --run (default 60000)
///     --keep               keep the generated .c/.bin files
///     --json               one versioned JSON record instead of text
///
/// Exit status: 0 emitted / run matched, 1 usage/parse/emission error,
/// 2 the harness reported a mismatch, 3 compile/run infrastructure
/// failure, 4 no host C compiler.
///
//===----------------------------------------------------------------------===//

#include "api/Pipeline.h"
#include "cgen/Cgen.h"
#include "cgen/NativeRunner.h"
#include "support/Json.h"
#include "support/Printing.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace irlt;

namespace {

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s FILE [-s SCRIPT | -f SCRIPTFILE] [--bind k=v,...]\n"
               "          [--seed N] [--reps N] [-o FILE] [--run] [--cc PATH]\n"
               "          [--no-openmp] [--timeout-ms N] [--keep] [--json]\n"
               "exit status: 0 emitted/matched, 1 error, 2 mismatch,\n"
               "             3 compile/run failure, 4 no compiler\n",
               Argv0);
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

bool parseBindings(const std::string &Spec,
                   std::map<std::string, int64_t> &Out) {
  std::istringstream SS(Spec);
  std::string Item;
  while (std::getline(SS, Item, ',')) {
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos || Eq == 0 || Eq + 1 == Item.size())
      return false;
    try {
      size_t Used = 0;
      std::string Val = Item.substr(Eq + 1);
      int64_t V = std::stoll(Val, &Used);
      if (Used != Val.size())
        return false;
      Out[Item.substr(0, Eq)] = V;
    } catch (...) {
      return false;
    }
  }
  return true;
}

int fail(bool JsonMode, const std::string &Message) {
  if (JsonMode) {
    json::JsonWriter W;
    json::beginToolRecord(W, "irlt-cgen")
        .field("ok", false)
        .field("error", Message)
        .endObject();
    std::printf("%s\n", W.str().c_str());
  } else {
    std::fprintf(stderr, "irlt-cgen: %s\n", Message.c_str());
  }
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string NestPath, ScriptText, ScriptPath, OutPath, CCPath, BindSpec;
  uint64_t Seed = 42;
  unsigned Reps = 0;
  uint64_t TimeoutMs = 60000;
  bool Run = false, OpenMP = true, Keep = false, JsonMode = false;

  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&](std::string &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = Argv[++I];
      return true;
    };
    if (A == "-s" || A == "--script") {
      if (!Next(ScriptText))
        return usage(Argv[0]), 1;
    } else if (A == "-f" || A == "--script-file") {
      if (!Next(ScriptPath))
        return usage(Argv[0]), 1;
    } else if (A == "--bind") {
      if (!Next(BindSpec))
        return usage(Argv[0]), 1;
    } else if (A == "--seed") {
      std::string V;
      if (!Next(V))
        return usage(Argv[0]), 1;
      Seed = strtoull(V.c_str(), nullptr, 10);
    } else if (A == "--reps") {
      std::string V;
      if (!Next(V))
        return usage(Argv[0]), 1;
      Reps = static_cast<unsigned>(strtoul(V.c_str(), nullptr, 10));
    } else if (A == "--timeout-ms") {
      std::string V;
      if (!Next(V))
        return usage(Argv[0]), 1;
      TimeoutMs = strtoull(V.c_str(), nullptr, 10);
    } else if (A == "-o") {
      if (!Next(OutPath))
        return usage(Argv[0]), 1;
    } else if (A == "--cc") {
      if (!Next(CCPath))
        return usage(Argv[0]), 1;
    } else if (A == "--run") {
      Run = true;
    } else if (A == "--no-openmp") {
      OpenMP = false;
    } else if (A == "--keep") {
      Keep = true;
    } else if (A == "--json") {
      JsonMode = true;
    } else if (A == "-h" || A == "--help") {
      usage(Argv[0]);
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      usage(Argv[0]);
      return 1;
    } else if (NestPath.empty()) {
      NestPath = A;
    } else {
      usage(Argv[0]);
      return 1;
    }
  }
  if (NestPath.empty()) {
    usage(Argv[0]);
    return 1;
  }

  // Default bindings cover the corpus's free parameters; --bind
  // overrides per key.
  std::map<std::string, int64_t> Bindings{{"n", 16}, {"m", 12}, {"b", 4}};
  if (!BindSpec.empty() && !parseBindings(BindSpec, Bindings))
    return fail(JsonMode, "malformed --bind '" + BindSpec + "'");

  std::string NestSource;
  if (!readFile(NestPath, NestSource))
    return fail(JsonMode, "cannot read " + NestPath);
  if (!ScriptPath.empty() && !readFile(ScriptPath, ScriptText))
    return fail(JsonMode, "cannot read " + ScriptPath);

  api::Pipeline P;
  ErrorOr<LoopNest> Nest = P.loadNest(NestSource);
  if (!Nest)
    return fail(JsonMode, "parse error: " + Nest.message());

  ErrorOr<LoopNest> Transformed = Failure("unset");
  bool HaveTransformed = !ScriptText.empty();
  if (HaveTransformed) {
    Transformed = P.applyScript(*Nest, ScriptText);
    if (!Transformed)
      return fail(JsonMode, "script error: " + Transformed.message());
  }
  const LoopNest *XformPtr = HaveTransformed ? &*Transformed : nullptr;

  std::string Reason = cgen::checkEmittable(*Nest);
  if (Reason.empty() && XformPtr)
    Reason = cgen::checkEmittable(*XformPtr);
  if (!Reason.empty())
    return fail(JsonMode, "not emittable: " + Reason);

  ErrorOr<std::vector<cgen::ArrayShape>> Shapes =
      cgen::arrayShapes(*Nest, Bindings, 1u << 22);
  if (!Shapes)
    return fail(JsonMode, "shape inference failed: " + Shapes.message());

  cgen::ProgramOptions PO;
  PO.Seed = Seed;
  PO.Bindings = Bindings;
  PO.TimingReps = Reps;
  PO.UseOpenMP = OpenMP;
  ErrorOr<std::string> Program = cgen::emitProgram(*Nest, XformPtr, *Shapes, PO);
  if (!Program)
    return fail(JsonMode, "emission failed: " + Program.message());

  if (!Run) {
    if (OutPath.empty()) {
      std::fputs(Program->c_str(), stdout);
    } else {
      std::ofstream Out(OutPath, std::ios::binary);
      Out << *Program;
      if (!Out)
        return fail(JsonMode, "cannot write " + OutPath);
    }
    if (JsonMode) {
      json::JsonWriter W;
      json::beginToolRecord(W, "irlt-cgen")
          .field("ok", true)
          .field("record", "emitted")
          .field("bytes", static_cast<uint64_t>(Program->size()))
          .field("out", OutPath.empty() ? "-" : OutPath)
          .endObject();
      std::printf("%s\n", W.str().c_str());
    }
    return 0;
  }

  cgen::NativeRunOptions RO;
  RO.Compiler = CCPath;
  RO.OpenMP = OpenMP;
  RO.RunTimeoutMs = TimeoutMs;
  RO.KeepFiles = Keep;
  cgen::NativeResult R = cgen::runNative(*Program, RO);

  if (JsonMode) {
    json::JsonWriter W;
    json::beginToolRecord(W, "irlt-cgen")
        .field("ok", R.Status == cgen::NativeStatus::Ok)
        .field("record", "native-run")
        .field("status", cgen::nativeStatusName(R.Status))
        .field("detail", R.Detail)
        .field("match", R.Match)
        .field("checksum_original",
               formatStr("0x%016llx",
                         static_cast<unsigned long long>(R.ChecksumOriginal)))
        .field("checksum_transformed",
               formatStr("0x%016llx", static_cast<unsigned long long>(
                                          R.ChecksumTransformed)))
        .field("oob_original", R.OobOriginal)
        .field("oob_transformed", R.OobTransformed)
        .field("ns_original", R.NsOriginal)
        .field("ns_transformed", R.NsTransformed)
        .field("threads", R.Threads)
        .field("cells", R.Cells)
        .field("source", R.SourcePath)
        .endObject();
    std::printf("%s\n", W.str().c_str());
  } else {
    std::printf("status: %s\n", cgen::nativeStatusName(R.Status));
    std::printf("detail: %s\n", R.Detail.c_str());
    if (R.Status == cgen::NativeStatus::Ok ||
        R.Status == cgen::NativeStatus::Mismatch) {
      std::printf("checksum original:    0x%016llx\n",
                  static_cast<unsigned long long>(R.ChecksumOriginal));
      std::printf("checksum transformed: 0x%016llx\n",
                  static_cast<unsigned long long>(R.ChecksumTransformed));
      if (R.NsOriginal || R.NsTransformed)
        std::printf("wall-clock: original %llu ns, transformed %llu ns "
                    "(%d thread(s))\n",
                    static_cast<unsigned long long>(R.NsOriginal),
                    static_cast<unsigned long long>(R.NsTransformed),
                    static_cast<int>(R.Threads));
    }
    if (!R.SourcePath.empty())
      std::printf("source: %s\n", R.SourcePath.c_str());
  }

  switch (R.Status) {
  case cgen::NativeStatus::Ok:
    return 0;
  case cgen::NativeStatus::Mismatch:
    return 2;
  case cgen::NativeStatus::NoCompiler:
    return 4;
  default:
    return 3;
  }
}
