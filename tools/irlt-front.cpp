//===- tools/irlt-front.cpp - Sharded multi-process serve front -----------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// irlt-front: the sharded multi-process front over irlt-serve
/// (docs/FRONT.md). Spawns N worker processes, routes every request
/// frame to the shard owning its canonical nest fingerprint, supervises
/// the workers (health probes, crash/hang detection, backed-off warm
/// restarts), and speaks the unchanged IRL1 framed protocol on its own
/// socket - irlt-servectl and any irlt-batch corpus work against it
/// as-is, byte-identical to a direct single-process run.
///
///   irlt-front (--socket PATH | --port N) --shards N [options]
///     --shards N           worker processes (default 2)
///     --serve-bin PATH     irlt-serve binary (default: next to argv[0])
///     --shard-base PATH    worker socket base; shard i gets <base>.w<i>
///                          (default: the front socket path)
///     --jobs N             worker threads *per worker process*
///     --no-cache / --cache-cap N / --queue-cap N / --deadline-ms N
///                          per-worker engine knobs (as irlt-serve)
///     --persist PATH       shard i journals to PATH.shard<i>; restarts
///                          replay it, so a respawned worker comes back
///                          warm
///     --journal-cap N      per-shard journal entry bound
///     --max-conns N        front connection bound
///     --max-frame-bytes N  client-visible frame bound (workers get
///                          headroom for the forwarding envelope)
///     --write-timeout-ms N response/forward write timeout
///     --window-cap N       per-shard outstanding-request window;
///                          past it the front sheds "overloaded"
///     --probe-interval-ms N / --probe-timeout-ms N
///                          worker health-probe cadence and bound
///     --pending-timeout-ms N  oldest in-flight request age past which
///                          a worker counts as hung and is SIGKILLed
///     --backoff-ms N / --backoff-max-ms N
///                          restart backoff (doubling, capped)
///     --startup-timeout-ms N  bound on one worker start
///     --fault SPEC         deterministic fault injection, forwarded to
///                          every worker ("list" prints kinds, exits 0)
///
/// SIGTERM/SIGINT drain: stop accepting, resolve every in-flight
/// request (completed or structured "shard_down"), SIGTERM every worker
/// so each persists its journal, and print one aggregated "drained"
/// record.
///
/// Exit status: 0 clean drain, 1 startup/usage errors, 2 when any
/// response write failed during the run.
///
//===----------------------------------------------------------------------===//

#include "front/Front.h"
#include "support/Json.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace irlt;
using namespace irlt::front;

namespace {

Front *GFront = nullptr;

void onSignal(int) {
  if (GFront)
    GFront->requestDrain(); // one async-signal-safe pipe write
}

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--socket PATH | --port N) [--shards N] [--serve-bin PATH]\n"
      "       [--shard-base PATH] [--jobs N] [--no-cache] [--cache-cap N]\n"
      "       [--queue-cap N] [--deadline-ms N] [--persist PATH]\n"
      "       [--journal-cap N] [--max-conns N] [--max-frame-bytes N]\n"
      "       [--write-timeout-ms N] [--window-cap N]\n"
      "       [--probe-interval-ms N] [--probe-timeout-ms N]\n"
      "       [--pending-timeout-ms N] [--backoff-ms N] [--backoff-max-ms N]\n"
      "       [--startup-timeout-ms N] [--fault SPEC]\n"
      "       (--fault list prints the supported fault kinds)\n"
      "sharded multi-process front over irlt-serve (docs/FRONT.md)\n"
      "exit status: 0 clean drain, 2 response-write failures, 1 tool "
      "error\n",
      Argv0);
}

int printFaultKinds() {
  for (const std::string &N : faultKindNames())
    std::fprintf(stdout, "%s\n", N.c_str());
  return 0;
}

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    uint64_t D = static_cast<uint64_t>(C - '0');
    if (V > (UINT64_MAX - D) / 10)
      return false;
    V = V * 10 + D;
  }
  Out = V;
  return true;
}

/// The worker binary ships next to this one; derive the default from
/// argv[0] so test trees and install trees both work unconfigured.
std::string defaultServeBinary(const char *Argv0) {
  std::string Self = Argv0;
  size_t Slash = Self.rfind('/');
  if (Slash == std::string::npos)
    return "./irlt-serve";
  return Self.substr(0, Slash + 1) + "irlt-serve";
}

} // namespace

int main(int argc, char **argv) {
  FrontOptions Opts;

  const char *FaultEnv = std::getenv("IRLT_FAULT");
  if (FaultEnv && std::strcmp(FaultEnv, "list") == 0)
    return printFaultKinds();
  std::string FaultErr;
  Opts.Faults = faultsFromEnv(&FaultErr);
  if (!FaultErr.empty()) {
    std::fprintf(stderr, "error: IRLT_FAULT: %s\n", FaultErr.c_str());
    return 1;
  }

  auto needArg = [&](int &I, const std::string &A) -> const char * {
    if (I + 1 >= argc) {
      std::fprintf(stderr, "error: %s needs an argument\n", A.c_str());
      return nullptr;
    }
    return argv[++I];
  };
  auto needU64 = [&](int &I, const std::string &A, uint64_t &Out) {
    const char *V = needArg(I, A);
    if (!V)
      return false;
    if (!parseU64(V, Out)) {
      std::fprintf(stderr, "error: %s expects a non-negative integer\n",
                   A.c_str());
      return false;
    }
    return true;
  };

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    uint64_t N = 0;
    if (A == "--socket") {
      const char *V = needArg(I, A);
      if (!V)
        return 1;
      Opts.SocketPath = V;
    } else if (A == "--port") {
      if (!needU64(I, A, N) || N > 65535) {
        std::fprintf(stderr, "error: --port expects 0..65535\n");
        return 1;
      }
      Opts.TcpPort = static_cast<int>(N);
    } else if (A == "--shards") {
      if (!needU64(I, A, N) || !N || N > 64) {
        std::fprintf(stderr, "error: --shards expects 1..64\n");
        return 1;
      }
      Opts.Shards = static_cast<unsigned>(N);
    } else if (A == "--serve-bin") {
      const char *V = needArg(I, A);
      if (!V)
        return 1;
      Opts.ServeBinary = V;
    } else if (A == "--shard-base") {
      const char *V = needArg(I, A);
      if (!V)
        return 1;
      Opts.ShardPathBase = V;
    } else if (A == "--jobs") {
      if (!needU64(I, A, N) || !N || N > 1024) {
        std::fprintf(stderr, "error: --jobs expects 1..1024\n");
        return 1;
      }
      Opts.WorkerJobs = static_cast<unsigned>(N);
    } else if (A == "--no-cache") {
      Opts.EnableCache = false;
    } else if (A == "--cache-cap") {
      if (!needU64(I, A, N))
        return 1;
      Opts.CacheCapacity = static_cast<size_t>(N);
    } else if (A == "--queue-cap") {
      if (!needU64(I, A, N) || !N)
        return 1;
      Opts.QueueCapacity = static_cast<size_t>(N);
    } else if (A == "--deadline-ms") {
      if (!needU64(I, A, N))
        return 1;
      Opts.DefaultDeadlineMillis = N;
    } else if (A == "--persist") {
      const char *V = needArg(I, A);
      if (!V)
        return 1;
      Opts.PersistPath = V;
    } else if (A == "--journal-cap") {
      if (!needU64(I, A, N))
        return 1;
      Opts.JournalCapacity = static_cast<size_t>(N);
    } else if (A == "--max-conns") {
      if (!needU64(I, A, N) || !N)
        return 1;
      Opts.MaxConns = static_cast<unsigned>(N);
    } else if (A == "--max-frame-bytes") {
      if (!needU64(I, A, N) || !N)
        return 1;
      Opts.MaxFrameBytes = static_cast<size_t>(N);
    } else if (A == "--write-timeout-ms") {
      if (!needU64(I, A, N))
        return 1;
      Opts.WriteTimeoutMillis = N;
    } else if (A == "--window-cap") {
      if (!needU64(I, A, N) || !N)
        return 1;
      Opts.WindowCapacity = static_cast<size_t>(N);
    } else if (A == "--probe-interval-ms") {
      if (!needU64(I, A, N))
        return 1;
      Opts.ProbeIntervalMillis = N;
    } else if (A == "--probe-timeout-ms") {
      if (!needU64(I, A, N))
        return 1;
      Opts.ProbeTimeoutMillis = N;
    } else if (A == "--pending-timeout-ms") {
      if (!needU64(I, A, N))
        return 1;
      Opts.PendingTimeoutMillis = N;
    } else if (A == "--backoff-ms") {
      if (!needU64(I, A, N) || !N)
        return 1;
      Opts.RestartBackoffMillis = N;
    } else if (A == "--backoff-max-ms") {
      if (!needU64(I, A, N) || !N)
        return 1;
      Opts.RestartBackoffMaxMillis = N;
    } else if (A == "--startup-timeout-ms") {
      if (!needU64(I, A, N) || !N)
        return 1;
      Opts.StartupTimeoutMillis = N;
    } else if (A == "--fault") {
      const char *V = needArg(I, A);
      if (!V)
        return 1;
      if (std::strcmp(V, "list") == 0)
        return printFaultKinds();
      ErrorOr<FaultConfig> FC = parseFaultSpec(V);
      if (!FC) {
        std::fprintf(stderr, "error: --fault: %s\n", FC.message().c_str());
        return 1;
      }
      Opts.Faults = *FC;
    } else if (A == "--help" || A == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      usage(argv[0]);
      return 1;
    }
  }
  if (Opts.ServeBinary.empty())
    Opts.ServeBinary = defaultServeBinary(argv[0]);

  Front F(Opts);
  ErrorOr<bool> Started = F.start();
  if (!Started) {
    std::fprintf(stderr, "error: %s\n", Started.message().c_str());
    return 1;
  }

  GFront = &F;
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  {
    json::JsonWriter W;
    json::beginToolRecord(W, "irlt-front");
    W.field("record", "serving");
    if (!Opts.SocketPath.empty())
      W.field("socket", Opts.SocketPath);
    else
      W.field("port", static_cast<uint64_t>(F.boundPort()));
    W.field("shards", static_cast<uint64_t>(F.shardCount()));
    W.field("jobs", static_cast<uint64_t>(Opts.WorkerJobs));
    W.endObject();
    std::fprintf(stdout, "%s\n", W.str().c_str());
    std::fflush(stdout);
  }

  bool Clean = F.run();
  GFront = nullptr;

  {
    const FrontStats &St = F.stats();
    const FrontDrainSummary &D = F.drainSummary();
    json::JsonWriter W;
    json::beginToolRecord(W, "irlt-front");
    W.field("record", "drained");
    W.field("shards", D.ShardCount);
    W.field("clean_worker_exits", D.CleanExits);
    W.field("served", St.Served.load());
    W.field("window_shed", St.WindowShed.load());
    W.field("shard_down_rejects", St.ShardDownRejects.load());
    W.field("drain_rejects", St.DrainRejects.load());
    W.field("bad_frames", St.BadFrames.load());
    W.field("write_failures", St.WriteFailures.load());
    W.field("restarts", St.Restarts.load());
    W.field("probe_failures", St.ProbeFailures.load());
    W.field("hang_kills", St.HangKills.load());
    W.field("worker_served", D.WorkerServed);
    W.field("worker_errors", D.WorkerErrors);
    W.field("persisted_entries", D.PersistedEntries);
    W.endObject();
    std::fprintf(stdout, "%s\n", W.str().c_str());
    std::fflush(stdout);
  }

  return Clean ? 0 : 2;
}
