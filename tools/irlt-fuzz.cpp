//===- tools/irlt-fuzz.cpp - Differential fuzzer for the IRLT pipeline ----===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// irlt-fuzz: seeded differential fuzzing of the transformation
/// pipeline. Generates random loop nests and transformation scripts,
/// cross-checks the uniform legality test against the type-state fast
/// path, verifies accepted sequences by concrete execution under several
/// parameter bindings, and checks that reduced() sequences stay
/// equivalent. Failures are shrunk and dumped as replayable reproducers.
///
///   irlt-fuzz [options]
///     --cases N            number of cases (default 100)
///     --seed S             run seed (default 1); (seed, index) fully
///                          determines every case
///     --shrink / --no-shrink
///                          minimize failing cases (default on)
///     --repro-dir DIR      where reproducers go (default irlt-fuzz-repro)
///     --max-depth N        deepest generated nest (default 3, max 4)
///     --max-steps N        longest generated script (default 4)
///     --max-instances N    per-evaluation instance budget (default 200000)
///     --time-budget-ms N   per-evaluation wall budget (default 0 = off,
///                          keeping runs fully deterministic)
///     --search             search mode: run the beam search on each
///                          generated nest and check that every reported
///                          candidate passes full legality and execution
///                          verification, thread-count-invariantly
///     --deps               dependence-oracle mode (docs/DEPENDENCE.md):
///                          diff the production dependence analyzer
///                          against the first-principles fm-exact
///                          backend on each generated nest; pipeline
///                          under-reporting is a dumped soundness
///                          failure, over-reporting is aggregated as
///                          precision statistics
///     --wire               wire mode: fuzz the irlt-serve framing
///                          parser (serve/Frame.h) instead - round-trip
///                          under arbitrary chunking, deterministic
///                          rejection of truncated/lying/garbage frames,
///                          bounded buffering (docs/SERVE.md)
///     --native             native mode (docs/CODEGEN.md): every Legal
///                          case is additionally compiled with the host
///                          C compiler and executed, and the native
///                          checksums must match the interpreter's on
///                          identically seeded arrays; without a host
///                          compiler the run degrades to the classic
///                          oracle with a clearly marked SKIPPED line
///     --verbose            per-case category lines
///     --json               emit one versioned JSON record (the shared
///                          schema of docs/API.md) instead of text
///
/// SIGINT/SIGTERM interrupt cooperatively: the in-flight case finishes
/// (reproducer dumps are never torn), the stats cover the completed
/// prefix, and the exit status is 3.
///
/// Exit status: 0 when no oracle failures, 1 otherwise, 3 when
/// interrupted, 2 on bad usage.
///
/// A thin client of the irlt::api facade (api/Pipeline.h, docs/API.md).
///
//===----------------------------------------------------------------------===//

#include "api/Pipeline.h"
#include "serve/WireFuzz.h"
#include "support/Json.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

using namespace irlt;
using namespace irlt::fuzz;

namespace {

/// Set by the SIGINT/SIGTERM handler; the fuzz loop polls it between
/// cases, so reproducer dumps are never torn.
std::atomic<bool> GStop{false};

void onSignal(int) { GStop.store(true); }

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--cases N] [--seed S] [--shrink|--no-shrink]\n"
               "          [--repro-dir DIR] [--max-depth N] [--max-steps N]\n"
               "          [--max-instances N] [--time-budget-ms N]"
               " [--search] [--deps] [--wire] [--native] [--verbose]"
               " [--json]\n",
               Argv0);
}

/// Strict decimal parse; false on empty / non-digit / overflow.
bool parseU64(const char *S, uint64_t &Out) {
  if (!*S)
    return false;
  uint64_t V = 0;
  for (; *S; ++S) {
    if (*S < '0' || *S > '9')
      return false;
    uint64_t D = static_cast<uint64_t>(*S - '0');
    if (V > (UINT64_MAX - D) / 10)
      return false;
    V = V * 10 + D;
  }
  Out = V;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  FuzzOptions Opts;
  bool JsonMode = false;
  bool WireMode = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto nextArg = [&](const char *What) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", What);
        return nullptr;
      }
      return argv[++I];
    };
    auto nextU64 = [&](const char *What, uint64_t &Out) {
      const char *V = nextArg(What);
      if (!V)
        return false;
      if (!parseU64(V, Out)) {
        std::fprintf(stderr, "error: %s expects a non-negative integer, got "
                             "'%s'\n",
                     What, V);
        return false;
      }
      return true;
    };

    uint64_t U;
    if (A == "--cases") {
      if (!nextU64("--cases", Opts.Cases))
        return 2;
    } else if (A == "--seed") {
      if (!nextU64("--seed", Opts.Seed))
        return 2;
    } else if (A == "--shrink") {
      Opts.Shrink = true;
    } else if (A == "--no-shrink") {
      Opts.Shrink = false;
    } else if (A == "--repro-dir") {
      const char *V = nextArg("--repro-dir");
      if (!V)
        return 2;
      Opts.ReproDir = V;
    } else if (A == "--max-depth") {
      if (!nextU64("--max-depth", U) || U < 1 || U > 4) {
        std::fprintf(stderr, "error: --max-depth expects 1..4\n");
        return 2;
      }
      Opts.MaxDepth = static_cast<unsigned>(U);
    } else if (A == "--max-steps") {
      if (!nextU64("--max-steps", U) || U < 1 || U > 16) {
        std::fprintf(stderr, "error: --max-steps expects 1..16\n");
        return 2;
      }
      Opts.MaxSteps = static_cast<unsigned>(U);
    } else if (A == "--max-instances") {
      if (!nextU64("--max-instances", Opts.MaxInstances) ||
          !Opts.MaxInstances) {
        std::fprintf(stderr, "error: --max-instances expects a positive "
                             "integer\n");
        return 2;
      }
    } else if (A == "--time-budget-ms") {
      if (!nextU64("--time-budget-ms", Opts.TimeBudgetMillis))
        return 2;
    } else if (A == "--search") {
      Opts.SearchMode = true;
    } else if (A == "--deps") {
      Opts.DepsMode = true;
    } else if (A == "--wire") {
      WireMode = true;
    } else if (A == "--native") {
      Opts.NativeMode = true;
    } else if (A == "--verbose" || A == "-v") {
      Opts.Verbose = true;
    } else if (A == "--json") {
      JsonMode = true;
    } else if (A == "--help" || A == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  Opts.StopFlag = &GStop;

  if (WireMode) {
    serve::WireFuzzOptions WO;
    WO.Seed = Opts.Seed;
    WO.Cases = Opts.Cases;
    serve::WireFuzzStats WS = serve::runWireFuzz(WO);
    if (JsonMode) {
      json::JsonWriter W;
      json::beginToolRecord(W, "irlt-fuzz");
      W.field("mode", "wire");
      W.field("ok", WS.Failures == 0);
      W.field("cases", WS.Cases);
      W.field("seed", WO.Seed);
      W.field("clean_streams", WS.CleanStreams);
      W.field("mutated_streams", WS.MutatedStreams);
      W.field("frames_parsed", WS.FramesParsed);
      W.field("rejects", WS.Rejects);
      W.field("failures", WS.Failures);
      if (WS.Failures)
        W.field("first_failure", WS.FirstFailure);
      W.endObject();
      std::printf("%s\n", W.take().c_str());
    } else {
      std::printf("irlt-fuzz --wire: %llu cases, seed %llu\n"
                  "  clean streams    %llu\n"
                  "  mutated streams  %llu\n"
                  "  frames parsed    %llu\n"
                  "  rejects          %llu\n"
                  "  failures         %llu\n",
                  static_cast<unsigned long long>(WS.Cases),
                  static_cast<unsigned long long>(WO.Seed),
                  static_cast<unsigned long long>(WS.CleanStreams),
                  static_cast<unsigned long long>(WS.MutatedStreams),
                  static_cast<unsigned long long>(WS.FramesParsed),
                  static_cast<unsigned long long>(WS.Rejects),
                  static_cast<unsigned long long>(WS.Failures));
      if (WS.Failures)
        std::printf("FAILURE (case seed %llu): %s\n",
                    static_cast<unsigned long long>(WS.FirstFailureSeed),
                    WS.FirstFailure.c_str());
    }
    return WS.Failures ? 1 : 0;
  }

  FuzzStats Stats = api::runFuzzer(Opts);

  static const Category Order[] = {
      Category::Legal,          Category::Illegal,
      Category::RejectedPrecondition, Category::OverflowRejected,
      Category::ParseRejected,  Category::SourceSkipped,
      Category::BudgetExceeded, Category::FastPathUnsound,
      Category::OracleFailure,
  };

  if (JsonMode) {
    json::JsonWriter W;
    json::beginToolRecord(W, "irlt-fuzz");
    W.field("ok", Stats.Failures.empty());
    W.field("cases", Stats.total());
    W.field("seed", Opts.Seed);
    W.field("interrupted", Stats.Interrupted);
    if (Opts.NativeMode) {
      W.field("native_unavailable", Stats.NativeUnavailable);
      W.field("native_checked", Stats.NativeChecked);
      W.field("native_skipped", Stats.NativeSkipped);
    }
    if (Opts.DepsMode) {
      W.field("deps_precision_gaps", Stats.DepsPrecisionGaps);
      W.field("deps_extra_vectors", Stats.DepsExtraVectors);
    }
    W.key("categories").beginObject();
    for (Category C : Order)
      W.field(categoryName(C), Stats.Count[static_cast<unsigned>(C)]);
    W.endObject();
    W.field("failures", static_cast<uint64_t>(Stats.Failures.size()));
    if (!Stats.Failures.empty())
      W.field("repro_dir", Opts.ReproDir);
    W.endObject();
    std::printf("%s\n", W.take().c_str());
    if (Stats.Interrupted)
      return 3;
    return Stats.Failures.empty() ? 0 : 1;
  }

  std::printf("irlt-fuzz: %llu cases, seed %llu\n",
              static_cast<unsigned long long>(Stats.total()),
              static_cast<unsigned long long>(Opts.Seed));
  for (Category C : Order)
    std::printf("  %-26s %llu\n", categoryName(C),
                static_cast<unsigned long long>(
                    Stats.Count[static_cast<unsigned>(C)]));

  if (Opts.DepsMode)
    std::printf("dependence oracle: %llu case(s) with a precision gap "
                "(%llu pipeline vector(s) beyond the exact set); "
                "under-reporting would appear above as %s\n",
                static_cast<unsigned long long>(Stats.DepsPrecisionGaps),
                static_cast<unsigned long long>(Stats.DepsExtraVectors),
                categoryName(Category::FastPathUnsound));

  if (Opts.NativeMode) {
    if (Stats.NativeUnavailable)
      std::printf("native oracle SKIPPED: no host C compiler (set IRLT_CC "
                  "or install cc/gcc/clang); interpreted oracle only\n");
    else
      std::printf("native oracle: %llu case(s) compiled+run, %llu "
                  "skipped (unemittable or over budget)\n",
                  static_cast<unsigned long long>(Stats.NativeChecked),
                  static_cast<unsigned long long>(Stats.NativeSkipped));
  }

  if (Stats.Interrupted)
    std::printf("interrupted after %llu case(s); counts cover the completed "
                "prefix\n",
                static_cast<unsigned long long>(Stats.total()));

  if (!Stats.Failures.empty()) {
    std::printf("%zu failure(s); reproducers in %s\n",
                Stats.Failures.size(), Opts.ReproDir.c_str());
    return Stats.Interrupted ? 3 : 1;
  }
  return Stats.Interrupted ? 3 : 0;
}
