//===- tools/irlt-opt.cpp - The IRLT command-line driver ------------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// irlt-opt: parse a loop nest, optionally apply a transformation script,
/// and report dependences, legality, transformed code, LB/UB/STEP
/// matrices, or emitted C. A thin client of the irlt::api facade
/// (api/Pipeline.h, docs/API.md).
///
///   irlt-opt FILE [options]
///     -s, --script TEXT     transformation script (see driver/Script.h)
///     -f, --script-file F   read the script from a file
///     --deps                print the dependence-vector set
///     --matrices            print the LB/UB/STEP matrices (Figure 5)
///     --legality            run the uniform legality test and explain
///     --fast-legality       same, via the type-state fast path
///     --emit {loop|c}       print transformed code (default: loop)
///     --emit-c              print the full differential C harness
///                           (original + transformed kernels, seeded
///                           arrays, checksum main; docs/CODEGEN.md) -
///                           bindings from --verify, default n=16,m=12,b=4
///     --verify BINDINGS     execute original and transformed nests with
///                           comma-separated bindings (n=32,b=4) and
///                           check equivalence
///     --analyze             run the static diagnostic engine over the
///                           sequence (docs/ANALYSIS.md): error findings
///                           explain the exact legality rejection,
///                           warnings lint legal-but-wasteful scripts
///     --reduce              reduce() the sequence before use
///     --auto OBJ            pick the sequence with the search engine
///                           (locality|par|both; see docs/SEARCH.md)
///     --witness             with --legality: print the machine-checkable
///                           certificate for the verdict (per-stage rule
///                           trace, or a concrete violating iteration
///                           pair) and self-check it (docs/LEGALITY.md)
///     --validate[=N]        with --auto: cross-check the winning
///                           candidates by bounded concrete execution
///                           (N = instance budget) and degrade gracefully
///                           to the next-best candidate, ultimately to
///                           the identity sequence
///     --validate=native[:N] same ladder plus the compile-and-run tier:
///                           winners are natively executed under bindings
///                           whose iteration spaces exceed any interpreted
///                           budget (docs/CODEGEN.md); without a host C
///                           compiler the interpreted verdict stands,
///                           annotated as native-skipped
///     --deps-diff           run the production dependence analyzer and
///                           the first-principles fm-exact backend side
///                           by side and cross-check them
///                           (docs/DEPENDENCE.md); a soundness
///                           divergence (pipeline under-reporting) exits 2
///     --export-scop         print the nest in the OpenScop-style
///                           exchange dialect (docs/DEPENDENCE.md) and
///                           stop
///     --import-scop         treat FILE as scop text: import it into a
///                           loop nest first (all other flags then apply
///                           to the imported nest)
///     --json                emit one versioned JSON record (the shared
///                           schema of docs/API.md) instead of text
///
/// Exit status: 0 on success (legal when --legality is given), 2 when the
/// sequence is illegal (or --deps-diff finds a soundness divergence), 1 on
/// tool/usage errors. The --validate identity fallback is success, not an
/// error. --json preserves the contract.
///
//===----------------------------------------------------------------------===//

#include "api/Pipeline.h"
#include "cgen/Cgen.h"
#include "deps/CrossCheck.h"
#include "deps/ScopIO.h"
#include "support/Json.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace irlt;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s FILE [-s SCRIPT | -f SCRIPTFILE | --auto locality|par|both]\n"
      "          [--deps] [--matrices] [--legality] [--fast-legality]\n"
      "          [--analyze] [--emit loop|c] [--emit-c] [--verify n=32,b=4]\n"
      "          [--reduce] [--witness] [--validate[=N|native[:N]]]\n"
      "          [--deps-diff] [--export-scop] [--import-scop] [--json]\n"
      "exit status: 0 success/legal, 2 illegal sequence, 1 error\n",
      Argv0);
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// Parses "n=32,b=4". Values are validated by hand: std::stoll would
/// throw (and the tool would die uncaught) on `--verify n=abc` or an
/// out-of-int64 literal.
bool parseBindings(const std::string &Spec,
                   std::map<std::string, int64_t> &Out) {
  std::istringstream SS(Spec);
  std::string Item;
  while (std::getline(SS, Item, ',')) {
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos || Eq == 0 || Eq + 1 == Item.size())
      return false;
    std::string Val = Item.substr(Eq + 1);
    size_t P = Val[0] == '-' ? 1 : 0;
    if (P == Val.size())
      return false;
    uint64_t Mag = 0;
    const uint64_t Limit = UINT64_C(1) << 63; // |INT64_MIN|
    for (; P < Val.size(); ++P) {
      if (Val[P] < '0' || Val[P] > '9')
        return false;
      uint64_t D = static_cast<uint64_t>(Val[P] - '0');
      if (Mag > (Limit - D) / 10)
        return false;
      Mag = Mag * 10 + D;
    }
    bool Neg = Val[0] == '-';
    if (!Neg && Mag == Limit)
      return false;
    Out[Item.substr(0, Eq)] =
        Neg ? (Mag == Limit ? INT64_MIN
                            : -static_cast<int64_t>(Mag))
            : static_cast<int64_t>(Mag);
  }
  return true;
}

/// JSON-mode failure record; text mode already wrote to stderr.
int fail(bool JsonMode, const std::string &Message) {
  if (JsonMode) {
    json::JsonWriter W;
    json::beginToolRecord(W, "irlt-opt");
    W.field("ok", false);
    W.key("error").beginObject();
    W.field("message", Message);
    W.endObject();
    W.endObject();
    std::printf("%s\n", W.take().c_str());
  }
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 1;
  }
  std::string NestPath = argv[1];
  std::string Script;
  bool WantDeps = false, WantMatrices = false, WantLegality = false;
  bool WantAnalyze = false;
  bool WantFastLegality = false, WantReduce = false, WantWitness = false;
  bool Validate = false, ValidateNative = false, JsonMode = false;
  bool EmitProgram = false;
  bool DepsDiff = false, ExportScop = false, ImportScop = false;
  uint64_t ValidateBudget = 200'000;
  std::string Emit;
  std::string VerifySpec;
  std::string Auto;

  for (int I = 2; I < argc; ++I) {
    std::string A = argv[I];
    auto nextArg = [&](const char *What) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", What);
        return nullptr;
      }
      return argv[++I];
    };
    if (A == "-s" || A == "--script") {
      const char *V = nextArg("--script");
      if (!V)
        return 1;
      Script = V;
    } else if (A == "-f" || A == "--script-file") {
      const char *V = nextArg("--script-file");
      if (!V)
        return 1;
      if (!readFile(V, Script)) {
        std::fprintf(stderr, "error: cannot read script file '%s'\n", V);
        return 1;
      }
    } else if (A == "--deps") {
      WantDeps = true;
    } else if (A == "--deps-diff") {
      DepsDiff = true;
    } else if (A == "--export-scop") {
      ExportScop = true;
    } else if (A == "--import-scop") {
      ImportScop = true;
    } else if (A == "--matrices") {
      WantMatrices = true;
    } else if (A == "--legality") {
      WantLegality = true;
    } else if (A == "--fast-legality") {
      WantFastLegality = true;
    } else if (A == "--analyze") {
      WantAnalyze = true;
    } else if (A == "--reduce") {
      WantReduce = true;
    } else if (A == "--witness") {
      WantWitness = true;
    } else if (A == "--json") {
      JsonMode = true;
    } else if (A == "--validate" || A.rfind("--validate=", 0) == 0) {
      Validate = true;
      if (A.size() > 10 && A[10] == '=') {
        std::string V = A.substr(11);
        // --validate=native[:N]: the compile-and-run tier on top of the
        // interpreted ladder (docs/CODEGEN.md); N overrides the raised
        // interpreted budget of the native preset.
        if (V == "native" || V.rfind("native:", 0) == 0) {
          ValidateNative = true;
          ValidateBudget = 0; // take the preset default unless N is given
          V = V.rfind("native:", 0) == 0 ? V.substr(7) : "";
        }
        if (!V.empty()) {
          std::map<std::string, int64_t> One;
          if (!parseBindings("v=" + V, One) || One["v"] <= 0) {
            std::fprintf(stderr,
                         "error: --validate= expects a positive instance "
                         "budget or 'native[:N]'\n");
            return 1;
          }
          ValidateBudget = static_cast<uint64_t>(One["v"]);
        }
      }
    } else if (A == "--emit-c") {
      EmitProgram = true;
    } else if (A == "--emit") {
      const char *V = nextArg("--emit");
      if (!V)
        return 1;
      Emit = V;
      if (Emit != "loop" && Emit != "c") {
        std::fprintf(stderr, "error: --emit expects 'loop' or 'c'\n");
        return 1;
      }
    } else if (A == "--verify") {
      const char *V = nextArg("--verify");
      if (!V)
        return 1;
      VerifySpec = V;
    } else if (A == "--auto") {
      const char *V = nextArg("--auto");
      if (!V)
        return 1;
      Auto = V;
      if (Auto != "locality" && Auto != "par" && Auto != "both") {
        std::fprintf(stderr,
                     "error: --auto expects locality, par, or both\n");
        return 1;
      }
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      usage(argv[0]);
      return 1;
    }
  }

  api::Pipeline P;

  std::string Source;
  if (!readFile(NestPath, Source)) {
    std::fprintf(stderr, "error: cannot read '%s'\n", NestPath.c_str());
    return fail(JsonMode, "cannot read '" + NestPath + "'");
  }
  // --import-scop: FILE carries the exchange dialect; everything
  // downstream sees the reconstructed loop nest.
  ErrorOr<LoopNest> NestOr =
      ImportScop ? deps::importScop(Source) : P.loadNest(Source);
  if (!NestOr) {
    std::fprintf(stderr, "%s: %s\n", NestPath.c_str(),
                 NestOr.message().c_str());
    return fail(JsonMode, NestPath + ": " + NestOr.message());
  }
  LoopNest Nest = NestOr.take();

  if (ExportScop) {
    ErrorOr<std::string> Scop = deps::exportScop(Nest);
    if (!Scop) {
      std::fprintf(stderr, "export-scop: %s\n", Scop.message().c_str());
      return fail(JsonMode, "export-scop: " + Scop.message());
    }
    if (JsonMode) {
      json::JsonWriter WS;
      json::beginToolRecord(WS, "irlt-opt");
      WS.field("ok", true);
      WS.field("mode", "export-scop");
      WS.field("scop", *Scop);
      WS.endObject();
      std::printf("%s\n", WS.take().c_str());
    } else {
      std::printf("%s", Scop->c_str());
    }
    return 0;
  }

  if (DepsDiff) {
    deps::DepResult Fast = deps::pipelineOracle().analyze(Nest);
    deps::DepResult Exact = deps::fmExactOracle().analyze(Nest);
    deps::CrossCheckResult CC = deps::crossCheckDeps(Fast, Exact);
    if (JsonMode) {
      json::JsonWriter WS;
      json::beginToolRecord(WS, "irlt-opt");
      WS.field("ok", CC.sound());
      WS.field("mode", "deps-diff");
      WS.field("pipeline", Fast.Deps.str());
      WS.field("fm_exact", Exact.Deps.str());
      WS.field("verdict", CC.str());
      WS.field("sound", CC.sound());
      WS.endObject();
      std::printf("%s\n", WS.take().c_str());
    } else {
      std::printf("pipeline:  %s\nfm-exact:  %s\nverdict:   %s\n",
                  Fast.Deps.str().c_str(), Exact.Deps.str().c_str(),
                  CC.str().c_str());
    }
    return CC.sound() ? 0 : 2;
  }

  // JSON mode buffers one record and prints it once every stage ran;
  // text mode prints as it goes, exactly as before.
  json::JsonWriter W;
  json::beginToolRecord(W, "irlt-opt");
  W.field("ok", true);
  W.field("mode", !Auto.empty() ? "auto" : "script");

  if (WantMatrices) {
    std::string M = P.boundsMatrices(Nest);
    if (JsonMode)
      W.field("matrices", M);
    else
      std::printf("%s", M.c_str());
  }

  std::shared_ptr<const DepSet> D = P.dependences(Nest);
  if (JsonMode)
    W.field("deps", D->str());
  else if (WantDeps)
    std::printf("dependences: %s\n", D->str().c_str());

  TransformSequence Seq;
  if (!Auto.empty()) {
    if (!Script.empty()) {
      std::fprintf(stderr, "error: --auto and --script are exclusive\n");
      return 1;
    }
    search::SearchOptions SO;
    SO.Obj = Auto == "locality"  ? search::Objective::Locality
             : Auto == "par"     ? search::Objective::Parallelism
                                 : search::Objective::Both;
    search::SearchResult SR = P.searchAuto(Nest, SO);
    if (!SR.Error.empty()) {
      std::fprintf(stderr, "auto: %s\n", SR.Error.c_str());
      return fail(JsonMode, "auto: " + SR.Error);
    }
    if (SR.Best)
      Seq = SR.Best->Seq;
    if (WantReduce)
      Seq = Seq.reduced();
    if (!JsonMode)
      std::printf("auto sequence: %s\n", Seq.str().c_str());

    // Guarded mode: cross-check the candidates by concrete execution
    // and degrade best-first -> next-best -> identity (never an error).
    if (Validate && SR.Best) {
      witness::ValidateOptions VO =
          ValidateNative ? witness::ValidateOptions::nativeDefaults()
                         : witness::ValidateOptions::defaults();
      if (ValidateBudget)
        VO.MaxInstances = ValidateBudget;
      std::vector<TransformSequence> Cands;
      for (const search::ScoredSequence &S : SR.Top)
        Cands.push_back(S.Seq);
      if (Cands.empty())
        Cands.push_back(SR.Best->Seq);
      witness::LadderResult LR = P.validate(Nest, Cands, VO);
      if (JsonMode) {
        W.key("validate").beginObject();
        W.field("chosen", static_cast<int64_t>(LR.Chosen));
        W.field("fell_back_to_identity", LR.fellBackToIdentity());
        W.key("outcomes").beginArray();
        for (const witness::CandidateOutcome &O : LR.Outcomes) {
          W.beginObject();
          W.field("status", witness::validateStatusName(O.Status));
          W.field("detail", O.Detail);
          if (!O.ReproPath.empty())
            W.field("reproducer", O.ReproPath);
          W.endObject();
        }
        W.endArray();
        W.endObject();
      } else {
        for (size_t K = 0; K < LR.Outcomes.size(); ++K) {
          const witness::CandidateOutcome &O = LR.Outcomes[K];
          std::printf("validate #%zu: %s - %s\n", K + 1,
                      witness::validateStatusName(O.Status),
                      O.Detail.c_str());
          if (!O.ReproPath.empty())
            std::printf("  reproducer: %s\n", O.ReproPath.c_str());
        }
      }
      if (LR.fellBackToIdentity()) {
        Seq = TransformSequence();
        if (!JsonMode)
          std::printf("validated sequence: identity (every candidate was "
                      "disproved)\n");
      } else {
        Seq = Cands[static_cast<size_t>(LR.Chosen)];
        if (WantReduce)
          Seq = Seq.reduced();
        if (!JsonMode)
          std::printf("validated sequence: %s\n", Seq.str().c_str());
      }
    }
  } else if (!Script.empty()) {
    ErrorOr<TransformSequence> SeqOr = P.parseScript(Script, Nest.numLoops());
    if (!SeqOr) {
      std::fprintf(stderr, "script: %s\n", SeqOr.message().c_str());
      return fail(JsonMode, "script: " + SeqOr.message());
    }
    Seq = SeqOr.take();
    if (WantReduce)
      Seq = Seq.reduced();
    if (!JsonMode)
      std::printf("sequence: %s\n", Seq.str().c_str());
  }
  if (JsonMode)
    W.field("sequence", Seq.str());

  bool Illegal = false;
  if (WantAnalyze) {
    analysis::AnalysisReport AR = P.analyze(Seq, Nest);
    if (JsonMode) {
      W.key("analysis");
      analysis::writeReport(W, AR);
    } else {
      std::printf("analysis: %u error(s), %u warning(s)\n", AR.errorCount(),
                  AR.warningCount());
      for (const analysis::Finding &F : AR.Findings)
        std::printf("%s: %s\n", analysis::severityName(F.Severity),
                    F.toDiag().str().c_str());
      if (AR.Fixed)
        std::printf("fixit: %s\n", AR.Fixed->str().c_str());
    }
    // Error-class findings predict (and explain) an illegal sequence;
    // keep the 0-legal/2-illegal exit contract.
    Illegal = Illegal || AR.hasErrors();
  }
  if (WantLegality || WantFastLegality || WantWitness) {
    LegalityResult L = WantFastLegality ? P.checkLegalityFast(Seq, Nest)
                                        : P.checkLegality(Seq, Nest);
    if (JsonMode) {
      W.field("legal", L.Legal);
      W.field("reject_kind", rejectKindName(L.Kind));
      if (!L.Legal)
        W.field("reason", L.Reason);
      else
        W.field("final_deps", L.FinalDeps.str());
    } else {
      std::printf("legal: %s\n", L.Legal ? "yes" : "no");
      std::printf("reject-kind: %s\n", rejectKindName(L.Kind));
      if (!L.Legal)
        std::printf("reason: %s\n", L.Reason.c_str());
      else
        std::printf("mapped dependences: %s\n", L.FinalDeps.str().c_str());
    }
    if (WantWitness) {
      // The certificate is produced by the full (not fast-path) test and
      // machine-checked on the spot; a check failure is a tool bug worth
      // a hard error.
      witness::Certificate C = P.certify(Seq, Nest);
      std::string E = P.checkCertificate(C, Seq, Nest);
      if (JsonMode) {
        W.key("witness").beginObject();
        W.field("certificate", C.str());
        W.field("check", E.empty() ? "ok" : E);
        W.endObject();
      } else {
        std::printf("%s", C.str().c_str());
        std::printf("witness-check: %s\n", E.empty() ? "ok" : E.c_str());
      }
      if (!E.empty()) {
        if (JsonMode) {
          W.endObject();
          std::printf("%s\n", W.take().c_str());
        }
        return 1;
      }
    }
    // Exit-code contract: 0 legal, 2 illegal, 1 tool/usage error.
    Illegal = Illegal || !L.Legal;
  }

  if (Illegal) {
    if (JsonMode) {
      W.endObject();
      std::printf("%s\n", W.take().c_str());
    }
    return 2;
  }

  // Transformed (or original, with an empty script) nest output.
  ErrorOr<LoopNest> Out = P.apply(Seq, Nest);
  if (!Out) {
    std::fprintf(stderr, "apply: %s\n", Out.message().c_str());
    return fail(JsonMode, "apply: " + Out.message());
  }

  if (EmitProgram) {
    // The full differential harness (docs/CODEGEN.md): original +
    // transformed kernels, seeded arrays, checksum main. Bindings come
    // from --verify when given, else the corpus defaults.
    std::map<std::string, int64_t> Bindings{{"n", 16}, {"m", 12}, {"b", 4}};
    if (!VerifySpec.empty() && !parseBindings(VerifySpec, Bindings))
      return fail(JsonMode, "malformed --verify bindings '" + VerifySpec +
                                "'");
    ErrorOr<std::vector<cgen::ArrayShape>> Shapes =
        cgen::arrayShapes(Nest, Bindings, 1u << 22);
    if (!Shapes)
      return fail(JsonMode, "shape inference failed: " + Shapes.message());
    cgen::ProgramOptions PO;
    PO.Bindings = Bindings;
    ErrorOr<std::string> Program =
        cgen::emitProgram(Nest, &*Out, *Shapes, PO);
    if (!Program)
      return fail(JsonMode, "emission failed: " + Program.message());
    if (JsonMode)
      W.field("output", *Program);
    else
      std::printf("%s", Program->c_str());
  } else if (Emit == "c") {
    std::string C = P.emit(*Out, api::EmitKind::C);
    if (JsonMode)
      W.field("output", C);
    else
      std::printf("%s", C.c_str());
  } else if (Emit == "loop" || (!WantDeps && !WantMatrices && !WantLegality &&
                                !WantFastLegality && VerifySpec.empty())) {
    std::string S = P.emit(*Out, api::EmitKind::Loop);
    if (JsonMode)
      W.field("output", S);
    else
      std::printf("%s", S.c_str());
  }

  int Exit = 0;
  if (!VerifySpec.empty()) {
    EvalConfig C;
    if (!parseBindings(VerifySpec, C.Params)) {
      std::fprintf(stderr, "error: malformed --verify bindings '%s'\n",
                   VerifySpec.c_str());
      return fail(JsonMode, "malformed --verify bindings '" + VerifySpec +
                                "'");
    }
    // A pathological binding must terminate with a clean "budget
    // exhausted" verdict rather than hang the tool.
    C.WallBudgetMillis = 30'000;
    VerifyResult V = P.verify(Nest, *Out, C);
    if (JsonMode) {
      W.key("verify").beginObject();
      W.field("bindings", VerifySpec);
      W.field("equivalent", V.Ok);
      if (!V.Ok)
        W.field("problem", V.Problem);
      W.endObject();
    } else {
      std::printf("verify(%s): %s\n", VerifySpec.c_str(),
                  V.Ok ? "equivalent" : V.Problem.c_str());
    }
    if (!V.Ok)
      Exit = 1;
  }

  if (JsonMode) {
    W.endObject();
    std::printf("%s\n", W.take().c_str());
  }
  return Exit;
}
