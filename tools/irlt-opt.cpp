//===- tools/irlt-opt.cpp - The IRLT command-line driver ------------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// irlt-opt: parse a loop nest, optionally apply a transformation script,
/// and report dependences, legality, transformed code, LB/UB/STEP
/// matrices, or emitted C.
///
///   irlt-opt FILE [options]
///     -s, --script TEXT     transformation script (see driver/Script.h)
///     -f, --script-file F   read the script from a file
///     --deps                print the dependence-vector set
///     --matrices            print the LB/UB/STEP matrices (Figure 5)
///     --legality            run the uniform legality test and explain
///     --fast-legality       same, via the type-state fast path
///     --emit {loop|c}       print transformed code (default: loop)
///     --verify BINDINGS     execute original and transformed nests with
///                           comma-separated bindings (n=32,b=4) and
///                           check equivalence
///     --reduce              reduce() the sequence before use
///     --auto OBJ            pick the sequence with the search engine
///                           (locality|par|both; see docs/SEARCH.md)
///     --witness             with --legality: print the machine-checkable
///                           certificate for the verdict (per-stage rule
///                           trace, or a concrete violating iteration
///                           pair) and self-check it (docs/LEGALITY.md)
///     --validate[=N]        with --auto: cross-check the winning
///                           candidates by bounded concrete execution
///                           (N = instance budget) and degrade gracefully
///                           to the next-best candidate, ultimately to
///                           the identity sequence
///
/// Exit status: 0 on success (legal when --legality is given), 2 when the
/// sequence is illegal, 1 on tool/usage errors. The --validate identity
/// fallback is success, not an error.
///
//===----------------------------------------------------------------------===//

#include "bounds/BoundsMatrices.h"
#include "codegen/CEmitter.h"
#include "dependence/DepAnalysis.h"
#include "driver/Script.h"
#include "eval/Verify.h"
#include "ir/Parser.h"
#include "search/Search.h"
#include "transform/TypeState.h"
#include "witness/Validate.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace irlt;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s FILE [-s SCRIPT | -f SCRIPTFILE | --auto locality|par|both]\n"
      "          [--deps] [--matrices] [--legality] [--fast-legality]\n"
      "          [--emit loop|c] [--verify n=32,b=4] [--reduce]\n"
      "          [--witness] [--validate[=N]]\n"
      "exit status: 0 success/legal, 2 illegal sequence, 1 error\n",
      Argv0);
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// Parses "n=32,b=4". Values are validated by hand: std::stoll would
/// throw (and the tool would die uncaught) on `--verify n=abc` or an
/// out-of-int64 literal.
bool parseBindings(const std::string &Spec,
                   std::map<std::string, int64_t> &Out) {
  std::istringstream SS(Spec);
  std::string Item;
  while (std::getline(SS, Item, ',')) {
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos || Eq == 0 || Eq + 1 == Item.size())
      return false;
    std::string Val = Item.substr(Eq + 1);
    size_t P = Val[0] == '-' ? 1 : 0;
    if (P == Val.size())
      return false;
    uint64_t Mag = 0;
    const uint64_t Limit = UINT64_C(1) << 63; // |INT64_MIN|
    for (; P < Val.size(); ++P) {
      if (Val[P] < '0' || Val[P] > '9')
        return false;
      uint64_t D = static_cast<uint64_t>(Val[P] - '0');
      if (Mag > (Limit - D) / 10)
        return false;
      Mag = Mag * 10 + D;
    }
    bool Neg = Val[0] == '-';
    if (!Neg && Mag == Limit)
      return false;
    Out[Item.substr(0, Eq)] =
        Neg ? (Mag == Limit ? INT64_MIN
                            : -static_cast<int64_t>(Mag))
            : static_cast<int64_t>(Mag);
  }
  return true;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 1;
  }
  std::string NestPath = argv[1];
  std::string Script;
  bool WantDeps = false, WantMatrices = false, WantLegality = false;
  bool WantFastLegality = false, WantReduce = false, WantWitness = false;
  bool Validate = false;
  uint64_t ValidateBudget = 200'000;
  std::string Emit;
  std::string VerifySpec;
  std::string Auto;

  for (int I = 2; I < argc; ++I) {
    std::string A = argv[I];
    auto nextArg = [&](const char *What) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", What);
        return nullptr;
      }
      return argv[++I];
    };
    if (A == "-s" || A == "--script") {
      const char *V = nextArg("--script");
      if (!V)
        return 1;
      Script = V;
    } else if (A == "-f" || A == "--script-file") {
      const char *V = nextArg("--script-file");
      if (!V)
        return 1;
      if (!readFile(V, Script)) {
        std::fprintf(stderr, "error: cannot read script file '%s'\n", V);
        return 1;
      }
    } else if (A == "--deps") {
      WantDeps = true;
    } else if (A == "--matrices") {
      WantMatrices = true;
    } else if (A == "--legality") {
      WantLegality = true;
    } else if (A == "--fast-legality") {
      WantFastLegality = true;
    } else if (A == "--reduce") {
      WantReduce = true;
    } else if (A == "--witness") {
      WantWitness = true;
    } else if (A == "--validate" || A.rfind("--validate=", 0) == 0) {
      Validate = true;
      if (A.size() > 10 && A[10] == '=') {
        std::map<std::string, int64_t> One;
        if (!parseBindings("v=" + A.substr(11), One) || One["v"] <= 0) {
          std::fprintf(stderr, "error: --validate= expects a positive "
                               "instance budget\n");
          return 1;
        }
        ValidateBudget = static_cast<uint64_t>(One["v"]);
      }
    } else if (A == "--emit") {
      const char *V = nextArg("--emit");
      if (!V)
        return 1;
      Emit = V;
      if (Emit != "loop" && Emit != "c") {
        std::fprintf(stderr, "error: --emit expects 'loop' or 'c'\n");
        return 1;
      }
    } else if (A == "--verify") {
      const char *V = nextArg("--verify");
      if (!V)
        return 1;
      VerifySpec = V;
    } else if (A == "--auto") {
      const char *V = nextArg("--auto");
      if (!V)
        return 1;
      Auto = V;
      if (Auto != "locality" && Auto != "par" && Auto != "both") {
        std::fprintf(stderr,
                     "error: --auto expects locality, par, or both\n");
        return 1;
      }
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      usage(argv[0]);
      return 1;
    }
  }

  std::string Source;
  if (!readFile(NestPath, Source)) {
    std::fprintf(stderr, "error: cannot read '%s'\n", NestPath.c_str());
    return 1;
  }
  ErrorOr<LoopNest> NestOr = parseLoopNest(Source);
  if (!NestOr) {
    std::fprintf(stderr, "%s: %s\n", NestPath.c_str(),
                 NestOr.message().c_str());
    return 1;
  }
  LoopNest Nest = NestOr.take();

  if (WantMatrices) {
    BoundsMatrices M = BoundsMatrices::fromNest(Nest);
    std::printf("%s", M.str().c_str());
  }

  DepSet D = analyzeDependences(Nest);
  if (WantDeps)
    std::printf("dependences: %s\n", D.str().c_str());

  TransformSequence Seq;
  if (!Auto.empty()) {
    if (!Script.empty()) {
      std::fprintf(stderr, "error: --auto and --script are exclusive\n");
      return 1;
    }
    search::SearchOptions SO;
    SO.Obj = Auto == "locality"  ? search::Objective::Locality
             : Auto == "par"     ? search::Objective::Parallelism
                                 : search::Objective::Both;
    search::SearchResult SR = search::searchTransformations(Nest, D, SO);
    if (!SR.Error.empty()) {
      std::fprintf(stderr, "auto: %s\n", SR.Error.c_str());
      return 1;
    }
    if (SR.Best)
      Seq = SR.Best->Seq;
    if (WantReduce)
      Seq = Seq.reduced();
    std::printf("auto sequence: %s\n", Seq.str().c_str());

    // Guarded mode: cross-check the candidates by concrete execution
    // and degrade best-first -> next-best -> identity (never an error).
    if (Validate && SR.Best) {
      witness::ValidateOptions VO = witness::ValidateOptions::defaults();
      VO.MaxInstances = ValidateBudget;
      std::vector<TransformSequence> Cands;
      for (const search::ScoredSequence &S : SR.Top)
        Cands.push_back(S.Seq);
      if (Cands.empty())
        Cands.push_back(SR.Best->Seq);
      witness::LadderResult LR = witness::validateLadder(Nest, Cands, VO);
      for (size_t K = 0; K < LR.Outcomes.size(); ++K) {
        const witness::CandidateOutcome &O = LR.Outcomes[K];
        std::printf("validate #%zu: %s - %s\n", K + 1,
                    witness::validateStatusName(O.Status), O.Detail.c_str());
        if (!O.ReproPath.empty())
          std::printf("  reproducer: %s\n", O.ReproPath.c_str());
      }
      if (LR.fellBackToIdentity()) {
        Seq = TransformSequence();
        std::printf("validated sequence: identity (every candidate was "
                    "disproved)\n");
      } else {
        Seq = Cands[static_cast<size_t>(LR.Chosen)];
        if (WantReduce)
          Seq = Seq.reduced();
        std::printf("validated sequence: %s\n", Seq.str().c_str());
      }
    }
  } else if (!Script.empty()) {
    ErrorOr<TransformSequence> SeqOr =
        parseTransformScript(Script, Nest.numLoops());
    if (!SeqOr) {
      std::fprintf(stderr, "script: %s\n", SeqOr.message().c_str());
      return 1;
    }
    Seq = SeqOr.take();
    if (WantReduce)
      Seq = Seq.reduced();
    std::printf("sequence: %s\n", Seq.str().c_str());
  }

  if (WantLegality || WantFastLegality || WantWitness) {
    LegalityResult L = WantFastLegality ? isLegalFast(Seq, Nest, D)
                                        : isLegal(Seq, Nest, D);
    std::printf("legal: %s\n", L.Legal ? "yes" : "no");
    std::printf("reject-kind: %s\n", rejectKindName(L.Kind));
    if (!L.Legal)
      std::printf("reason: %s\n", L.Reason.c_str());
    else
      std::printf("mapped dependences: %s\n", L.FinalDeps.str().c_str());
    if (WantWitness) {
      // The certificate is produced by the full (not fast-path) test and
      // machine-checked on the spot; a check failure is a tool bug worth
      // a hard error.
      witness::Certificate C = witness::certify(Seq, Nest, D);
      std::printf("%s", C.str().c_str());
      std::string E = witness::checkCertificate(C, Seq, Nest, D);
      std::printf("witness-check: %s\n", E.empty() ? "ok" : E.c_str());
      if (!E.empty())
        return 1;
    }
    // Exit-code contract: 0 legal, 2 illegal, 1 tool/usage error.
    if (!L.Legal)
      return 2;
  }

  // Transformed (or original, with an empty script) nest output.
  ErrorOr<LoopNest> Out = applySequence(Seq, Nest);
  if (!Out) {
    std::fprintf(stderr, "apply: %s\n", Out.message().c_str());
    return 1;
  }

  if (Emit == "c")
    std::printf("%s", emitC(*Out).c_str());
  else if (Emit == "loop" || (!WantDeps && !WantMatrices && !WantLegality &&
                              !WantFastLegality && VerifySpec.empty()))
    std::printf("%s", Out->str().c_str());

  if (!VerifySpec.empty()) {
    EvalConfig C;
    if (!parseBindings(VerifySpec, C.Params)) {
      std::fprintf(stderr, "error: malformed --verify bindings '%s'\n",
                   VerifySpec.c_str());
      return 1;
    }
    // A pathological binding must terminate with a clean "budget
    // exhausted" verdict rather than hang the tool.
    C.WallBudgetMillis = 30'000;
    VerifyResult V = verifyTransformed(Nest, *Out, C);
    std::printf("verify(%s): %s\n", VerifySpec.c_str(),
                V.Ok ? "equivalent" : V.Problem.c_str());
    if (!V.Ok)
      return 1;
  }
  return 0;
}
