//===- tools/irlt-search.cpp - Transformation search driver ---------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// irlt-search: parse a loop nest, run the cost-model-guided beam search
/// (docs/SEARCH.md) over transformation sequences, and print the winner.
/// A thin client of the irlt::api facade (api/Pipeline.h, docs/API.md).
///
///   irlt-search FILE [options]
///     --objective locality|par|both   what to optimize (default: both)
///     --beam N        frontier width per depth level (default: 8)
///     --depth N       max steps per sequence, excluding the trailing
///                     Parallelize (default: 2)
///     --tiles 8,16    Block tile-size candidate set
///     --threads N     worker threads; the result is byte-identical for
///                     any N (default: 1)
///     --params n=32   cost-model parameter bindings (default: all free
///                     symbols bound to 24)
///     --topk N        candidates reported by --explain (default: 5)
///     --explain       print the top-k candidates with costs and the
///                     deterministic search statistics
///     --emit          print the transformed nest under the winner
///     --validate[=N]  guarded mode (docs/LEGALITY.md): cross-check the
///                     winning candidates by bounded concrete execution
///                     (N = per-evaluation instance budget) and degrade
///                     gracefully - a disproved candidate falls through
///                     to the next-best one, ultimately to the identity
///                     sequence; disproofs are dumped as replayable
///                     reproducers
///     --validate=native[:N]
///                     the same ladder plus the compile-and-run tier
///                     (docs/CODEGEN.md): winners are natively executed
///                     under bindings beyond any interpreted budget;
///                     without a host C compiler the interpreted verdict
///                     stands, annotated as native-skipped
///     --json          emit one versioned JSON record (the shared schema
///                     of docs/API.md) instead of text
///
/// Exit status: 0 on success (including "no candidate beat nothing" and
/// the --validate identity fallback), 1 on errors.
///
//===----------------------------------------------------------------------===//

#include "api/Pipeline.h"
#include "support/Json.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace irlt;

namespace {

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s FILE [--objective locality|par|both] [--beam N]\n"
               "          [--depth N] [--tiles 8,16] [--threads N]\n"
               "          [--params n=32,m=16] [--topk N] [--explain] "
               "[--emit]\n"
               "          [--validate[=N|native[:N]]] [--json]\n",
               Argv0);
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

bool parseUnsigned(const std::string &S, unsigned &Out) {
  if (S.empty())
    return false;
  unsigned long V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<unsigned long>(C - '0');
    if (V > 1'000'000)
      return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

bool parseIntList(const std::string &S, std::vector<int64_t> &Out) {
  Out.clear();
  std::istringstream SS(S);
  std::string Item;
  while (std::getline(SS, Item, ',')) {
    if (Item.empty())
      return false;
    int64_t V = 0;
    for (char C : Item) {
      if (C < '0' || C > '9')
        return false;
      if (V > (INT64_MAX - (C - '0')) / 10)
        return false;
      V = V * 10 + (C - '0');
    }
    if (V <= 0)
      return false;
    Out.push_back(V);
  }
  return !Out.empty();
}

bool parseBindings(const std::string &Spec,
                   std::map<std::string, int64_t> &Out) {
  std::istringstream SS(Spec);
  std::string Item;
  while (std::getline(SS, Item, ',')) {
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos || Eq == 0 || Eq + 1 == Item.size())
      return false;
    std::string Val = Item.substr(Eq + 1);
    int64_t V = 0;
    for (char C : Val) {
      if (C < '0' || C > '9')
        return false;
      if (V > (INT64_MAX - (C - '0')) / 10)
        return false;
      V = V * 10 + (C - '0');
    }
    Out[Item.substr(0, Eq)] = V;
  }
  return true;
}

void printCandidate(const char *Tag, const search::ScoredSequence &C) {
  std::printf("%s: %s\n", Tag, C.Seq.str().c_str());
  std::printf("  cost: %.6f\n", C.Cost);
  if (C.MissRatio >= 0)
    std::printf("  miss-ratio: %.6f\n", C.MissRatio);
  std::printf("  par-score: %ld\n", C.ParScore);
  if (!C.ParallelLoops.empty()) {
    std::string Loops;
    for (unsigned P : C.ParallelLoops) {
      if (!Loops.empty())
        Loops += ',';
      Loops += std::to_string(P);
    }
    std::printf("  parallel-loops: %s\n", Loops.c_str());
  }
}

void writeCandidate(json::JsonWriter &W, const search::ScoredSequence &C) {
  W.beginObject();
  W.field("sequence", C.Seq.str());
  W.field("cost", C.Cost);
  W.field("miss_ratio", C.MissRatio);
  W.field("par_score", static_cast<int64_t>(C.ParScore));
  W.key("parallel_loops").beginArray();
  for (unsigned P : C.ParallelLoops)
    W.value(static_cast<uint64_t>(P));
  W.endArray();
  W.endObject();
}

int fail(bool JsonMode, const std::string &Message) {
  if (JsonMode) {
    json::JsonWriter W;
    json::beginToolRecord(W, "irlt-search");
    W.field("ok", false);
    W.key("error").beginObject();
    W.field("message", Message);
    W.endObject();
    W.endObject();
    std::printf("%s\n", W.take().c_str());
  }
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 1;
  }
  std::string NestPath = argv[1];
  search::SearchOptions Opts;
  bool Explain = false, Emit = false, Validate = false, JsonMode = false;
  bool ValidateNative = false;
  uint64_t ValidateBudget = 200'000;

  for (int I = 2; I < argc; ++I) {
    std::string A = argv[I];
    auto nextArg = [&](const char *What) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", What);
        return nullptr;
      }
      return argv[++I];
    };
    if (A == "--objective") {
      const char *V = nextArg("--objective");
      if (!V)
        return 1;
      std::string Obj = V;
      if (Obj == "locality")
        Opts.Obj = search::Objective::Locality;
      else if (Obj == "par")
        Opts.Obj = search::Objective::Parallelism;
      else if (Obj == "both")
        Opts.Obj = search::Objective::Both;
      else {
        std::fprintf(stderr,
                     "error: --objective expects locality, par, or both\n");
        return 1;
      }
    } else if (A == "--beam") {
      const char *V = nextArg("--beam");
      if (!V || !parseUnsigned(V, Opts.Beam) || Opts.Beam == 0) {
        std::fprintf(stderr, "error: --beam expects a positive integer\n");
        return 1;
      }
    } else if (A == "--depth") {
      const char *V = nextArg("--depth");
      if (!V || !parseUnsigned(V, Opts.Depth)) {
        std::fprintf(stderr, "error: --depth expects an integer\n");
        return 1;
      }
    } else if (A == "--tiles") {
      const char *V = nextArg("--tiles");
      if (!V || !parseIntList(V, Opts.Candidates.TileSizes)) {
        std::fprintf(stderr,
                     "error: --tiles expects a comma-separated list of "
                     "positive integers\n");
        return 1;
      }
    } else if (A == "--threads") {
      const char *V = nextArg("--threads");
      if (!V || !parseUnsigned(V, Opts.Threads) || Opts.Threads == 0) {
        std::fprintf(stderr, "error: --threads expects a positive integer\n");
        return 1;
      }
    } else if (A == "--params") {
      const char *V = nextArg("--params");
      if (!V || !parseBindings(V, Opts.CostParams)) {
        std::fprintf(stderr, "error: malformed --params bindings\n");
        return 1;
      }
    } else if (A == "--topk") {
      const char *V = nextArg("--topk");
      if (!V || !parseUnsigned(V, Opts.TopK) || Opts.TopK == 0) {
        std::fprintf(stderr, "error: --topk expects a positive integer\n");
        return 1;
      }
    } else if (A == "--explain") {
      Explain = true;
    } else if (A == "--emit") {
      Emit = true;
    } else if (A == "--json") {
      JsonMode = true;
    } else if (A == "--validate" || A.rfind("--validate=", 0) == 0) {
      Validate = true;
      if (A.size() > 10 && A[10] == '=') {
        std::string V = A.substr(11);
        // --validate=native[:N]: compile-and-run tier (docs/CODEGEN.md).
        if (V == "native" || V.rfind("native:", 0) == 0) {
          ValidateNative = true;
          ValidateBudget = 0; // preset default unless N overrides
          V = V.rfind("native:", 0) == 0 ? V.substr(7) : "";
        }
        if (!V.empty()) {
          unsigned B = 0;
          if (!parseUnsigned(V, B) || B == 0) {
            std::fprintf(stderr,
                         "error: --validate= expects a positive instance "
                         "budget or 'native[:N]'\n");
            return 1;
          }
          ValidateBudget = B;
        }
      }
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      usage(argv[0]);
      return 1;
    }
  }

  api::Pipeline P;

  std::string Source;
  if (!readFile(NestPath, Source)) {
    std::fprintf(stderr, "error: cannot read '%s'\n", NestPath.c_str());
    return fail(JsonMode, "cannot read '" + NestPath + "'");
  }
  ErrorOr<LoopNest> NestOr = P.loadNest(Source);
  if (!NestOr) {
    std::fprintf(stderr, "%s: %s\n", NestPath.c_str(),
                 NestOr.message().c_str());
    return fail(JsonMode, NestPath + ": " + NestOr.message());
  }
  LoopNest Nest = NestOr.take();

  search::SearchResult R = P.searchAuto(Nest, Opts);
  if (!R.Error.empty()) {
    std::fprintf(stderr, "error: %s\n", R.Error.c_str());
    return fail(JsonMode, R.Error);
  }

  json::JsonWriter W;
  json::beginToolRecord(W, "irlt-search");
  W.field("ok", true);

  if (!R.Best) {
    if (JsonMode) {
      W.nullField("winner");
      W.endObject();
      std::printf("%s\n", W.take().c_str());
    } else {
      std::printf("winner: none\n");
    }
    return 0;
  }
  if (JsonMode) {
    W.key("winner");
    writeCandidate(W, *R.Best);
    W.key("top").beginArray();
    for (const search::ScoredSequence &C : R.Top)
      writeCandidate(W, C);
    W.endArray();
    W.key("search_stats").beginObject();
    W.field("enumerated", R.Stats.Enumerated);
    W.field("pruned", R.Stats.Pruned);
    W.field("deduped", R.Stats.Deduped);
    W.field("leaves", R.Stats.Leaves);
    W.field("legal", R.Stats.Legal);
    W.field("analyzer_pruned", R.Stats.AnalyzerPruned);
    W.endObject();
  } else {
    printCandidate("winner", *R.Best);
    if (Explain) {
      std::printf("top-%zu:\n", R.Top.size());
      for (size_t I = 0; I < R.Top.size(); ++I)
        printCandidate(("  #" + std::to_string(I + 1)).c_str(), R.Top[I]);
      std::printf("stats: enumerated=%llu pruned=%llu deduped=%llu "
                  "leaves=%llu legal=%llu analyzer_pruned=%llu\n",
                  static_cast<unsigned long long>(R.Stats.Enumerated),
                  static_cast<unsigned long long>(R.Stats.Pruned),
                  static_cast<unsigned long long>(R.Stats.Deduped),
                  static_cast<unsigned long long>(R.Stats.Leaves),
                  static_cast<unsigned long long>(R.Stats.Legal),
                  static_cast<unsigned long long>(R.Stats.AnalyzerPruned));
    }
  }

  TransformSequence Final = R.Best->Seq;
  if (Validate) {
    witness::ValidateOptions VO =
        ValidateNative ? witness::ValidateOptions::nativeDefaults()
                       : witness::ValidateOptions::defaults();
    if (ValidateBudget)
      VO.MaxInstances = ValidateBudget;
    std::vector<TransformSequence> Cands;
    for (const search::ScoredSequence &S : R.Top)
      Cands.push_back(S.Seq);
    if (Cands.empty())
      Cands.push_back(R.Best->Seq);
    witness::LadderResult LR = P.validate(Nest, Cands, VO);
    if (JsonMode) {
      W.key("validate").beginObject();
      W.field("chosen", static_cast<int64_t>(LR.Chosen));
      W.field("fell_back_to_identity", LR.fellBackToIdentity());
      W.key("outcomes").beginArray();
      for (const witness::CandidateOutcome &O : LR.Outcomes) {
        W.beginObject();
        W.field("status", witness::validateStatusName(O.Status));
        W.field("detail", O.Detail);
        if (!O.ReproPath.empty())
          W.field("reproducer", O.ReproPath);
        W.endObject();
      }
      W.endArray();
      W.endObject();
    } else {
      for (size_t I = 0; I < LR.Outcomes.size(); ++I) {
        const witness::CandidateOutcome &O = LR.Outcomes[I];
        std::printf("validate #%zu: %s - %s\n", I + 1,
                    witness::validateStatusName(O.Status), O.Detail.c_str());
        if (!O.ReproPath.empty())
          std::printf("  reproducer: %s\n", O.ReproPath.c_str());
      }
    }
    if (LR.fellBackToIdentity()) {
      Final = TransformSequence();
      if (!JsonMode)
        std::printf("validated winner: identity (every candidate was "
                    "disproved)\n");
    } else {
      Final = Cands[static_cast<size_t>(LR.Chosen)];
      if (!JsonMode)
        std::printf("validated winner: %s\n", Final.str().c_str());
    }
  }
  if (JsonMode)
    W.field("sequence", Final.str());

  if (Emit) {
    ErrorOr<LoopNest> Out = P.apply(Final, Nest);
    if (!Out) {
      std::fprintf(stderr, "apply: %s\n", Out.message().c_str());
      return fail(JsonMode, "apply: " + Out.message());
    }
    if (JsonMode)
      W.field("output", P.emit(*Out, api::EmitKind::Loop));
    else
      std::printf("%s", Out->str().c_str());
  }
  if (JsonMode) {
    W.endObject();
    std::printf("%s\n", W.take().c_str());
  }
  return 0;
}
