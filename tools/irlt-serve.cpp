//===- tools/irlt-serve.cpp - Long-lived batch-engine daemon --------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// irlt-serve: the fault-tolerant service front of the batch engine
/// (docs/SERVE.md). Listens on a Unix-domain or loopback TCP socket,
/// speaks length-prefixed frames (serve/Frame.h) whose payloads are the
/// exact ndjson request records irlt-batch reads, and answers with the
/// exact result records irlt-batch writes - byte-identical at any
/// --jobs value, with a cold, warm, or journal-restored cache.
///
///   irlt-serve (--socket PATH | --port N) [options]
///     --jobs N           worker threads (default 1)
///     --no-cache         disable the shared memoization caches
///     --cache-cap N      bound each cache to N entries (LRU)
///     --queue-cap N      admission-queue bound (default 64); a full
///                        queue sheds with a structured "overloaded"
///                        record
///     --max-conns N      concurrent-connection bound (default 64)
///     --deadline-ms N    default per-request deadline (0 = none)
///     --persist PATH     crash-safe cache journal: tolerantly replayed
///                        on start, atomically dumped on drain and on
///                        the {"op":"persist"} request
///     --journal-cap N    journal entry bound (default: --cache-cap)
///     --write-timeout-ms N  response-write timeout (default 5000); a
///                        stalled client loses its connection, never a
///                        worker
///     --max-frame-bytes N  per-frame payload bound (default 4 MiB);
///                        irlt-front raises it on its workers so the
///                        forwarding envelope never shrinks the
///                        client-visible frame budget
///     --fault SPEC       deterministic fault injection (also via the
///                        IRLT_FAULT environment variable); SPEC "list"
///                        prints the supported kinds and exits 0
///
/// SIGTERM/SIGINT drain gracefully: stop accepting, finish every
/// admitted request, flush every response, persist the journal, exit 0.
/// The daemon prints one "serving" record to stdout when ready (TCP mode
/// includes the bound port) and one "drained" record on exit.
///
/// Exit status: 0 clean drain, 1 startup/usage errors, 2 when any
/// response write failed during the run.
///
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "support/Json.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace irlt;
using namespace irlt::serve;

namespace {

Server *GServer = nullptr;

void onSignal(int) {
  if (GServer)
    GServer->requestDrain(); // one async-signal-safe pipe write
}

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--socket PATH | --port N) [--jobs N] [--no-cache]\n"
      "       [--cache-cap N] [--queue-cap N] [--max-conns N]\n"
      "       [--deadline-ms N] [--persist PATH] [--journal-cap N]\n"
      "       [--write-timeout-ms N] [--max-frame-bytes N] [--fault SPEC]\n"
      "       (--fault list prints the supported fault kinds)\n"
      "long-lived framed-protocol daemon over the batch engine "
      "(docs/SERVE.md)\n"
      "exit status: 0 clean drain, 2 response-write failures, 1 tool "
      "error\n",
      Argv0);
}

/// `--fault list` / IRLT_FAULT=list: the supported kinds, one per line.
int printFaultKinds() {
  for (const std::string &N : faultKindNames())
    std::fprintf(stdout, "%s\n", N.c_str());
  return 0;
}

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    uint64_t D = static_cast<uint64_t>(C - '0');
    if (V > (UINT64_MAX - D) / 10)
      return false;
    V = V * 10 + D;
  }
  Out = V;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  ServeOptions Opts;
  bool JournalCapSet = false;

  const char *FaultEnv = std::getenv("IRLT_FAULT");
  if (FaultEnv && std::strcmp(FaultEnv, "list") == 0)
    return printFaultKinds();
  std::string FaultErr;
  Opts.Faults = faultsFromEnv(&FaultErr);
  if (!FaultErr.empty()) {
    std::fprintf(stderr, "error: IRLT_FAULT: %s\n", FaultErr.c_str());
    return 1;
  }

  auto needArg = [&](int &I, const std::string &A) -> const char * {
    if (I + 1 >= argc) {
      std::fprintf(stderr, "error: %s needs an argument\n", A.c_str());
      return nullptr;
    }
    return argv[++I];
  };
  auto needU64 = [&](int &I, const std::string &A, uint64_t &Out) {
    const char *V = needArg(I, A);
    if (!V)
      return false;
    if (!parseU64(V, Out)) {
      std::fprintf(stderr, "error: %s expects a non-negative integer\n",
                   A.c_str());
      return false;
    }
    return true;
  };

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    uint64_t N = 0;
    if (A == "--socket") {
      const char *V = needArg(I, A);
      if (!V)
        return 1;
      Opts.SocketPath = V;
    } else if (A == "--port") {
      if (!needU64(I, A, N) || N > 65535) {
        std::fprintf(stderr, "error: --port expects 0..65535\n");
        return 1;
      }
      Opts.TcpPort = static_cast<int>(N);
    } else if (A == "--jobs") {
      if (!needU64(I, A, N) || !N || N > 1024) {
        std::fprintf(stderr, "error: --jobs expects 1..1024\n");
        return 1;
      }
      Opts.Jobs = static_cast<unsigned>(N);
    } else if (A == "--no-cache") {
      Opts.EnableCache = false;
    } else if (A == "--cache-cap") {
      if (!needU64(I, A, N))
        return 1;
      Opts.CacheCapacity = static_cast<size_t>(N);
    } else if (A == "--queue-cap") {
      if (!needU64(I, A, N) || !N)
        return 1;
      Opts.QueueCapacity = static_cast<size_t>(N);
    } else if (A == "--max-conns") {
      if (!needU64(I, A, N) || !N)
        return 1;
      Opts.MaxConns = static_cast<unsigned>(N);
    } else if (A == "--deadline-ms") {
      if (!needU64(I, A, N))
        return 1;
      Opts.DefaultDeadlineMillis = N;
    } else if (A == "--persist") {
      const char *V = needArg(I, A);
      if (!V)
        return 1;
      Opts.PersistPath = V;
    } else if (A == "--journal-cap") {
      if (!needU64(I, A, N))
        return 1;
      Opts.JournalCapacity = static_cast<size_t>(N);
      JournalCapSet = true;
    } else if (A == "--write-timeout-ms") {
      if (!needU64(I, A, N))
        return 1;
      Opts.WriteTimeoutMillis = N;
    } else if (A == "--max-frame-bytes") {
      if (!needU64(I, A, N) || !N)
        return 1;
      Opts.MaxFrameBytes = static_cast<size_t>(N);
    } else if (A == "--fault") {
      const char *V = needArg(I, A);
      if (!V)
        return 1;
      if (std::strcmp(V, "list") == 0)
        return printFaultKinds();
      ErrorOr<FaultConfig> FC = parseFaultSpec(V);
      if (!FC) {
        std::fprintf(stderr, "error: --fault: %s\n", FC.message().c_str());
        return 1;
      }
      Opts.Faults = *FC;
    } else if (A == "--help" || A == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      usage(argv[0]);
      return 1;
    }
  }
  if (!JournalCapSet)
    Opts.JournalCapacity = Opts.CacheCapacity;

  // The worker-slow-start fault: delay the bind, so a supervisor's
  // bounded startup probing (irlt-front) is what the tests exercise.
  if (Opts.Faults.WorkerSlowStart)
    std::this_thread::sleep_for(std::chrono::milliseconds(1000));

  Server S(Opts);
  ErrorOr<bool> Started = S.start();
  if (!Started) {
    std::fprintf(stderr, "error: %s\n", Started.message().c_str());
    return 1;
  }

  GServer = &S;
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  {
    const JournalLoadResult &L = S.journalLoad();
    json::JsonWriter W;
    json::beginToolRecord(W, "irlt-serve");
    W.field("record", "serving");
    if (!Opts.SocketPath.empty())
      W.field("socket", Opts.SocketPath);
    else
      W.field("port", static_cast<uint64_t>(S.boundPort()));
    W.field("jobs", static_cast<uint64_t>(Opts.Jobs));
    W.field("journal_found", L.FileFound);
    W.field("journal_replayed", L.Replayed);
    W.field("journal_discarded", L.Discarded);
    W.endObject();
    std::fprintf(stdout, "%s\n", W.str().c_str());
    std::fflush(stdout);
  }

  bool Clean = S.run();
  GServer = nullptr;

  {
    const ServerStats &St = S.stats();
    json::JsonWriter W;
    json::beginToolRecord(W, "irlt-serve");
    W.field("record", "drained");
    W.field("served", St.Served.load());
    W.field("shed", St.Shed.load());
    W.field("errors", St.Errors.load());
    W.field("bad_frames", St.BadFrames.load());
    W.field("write_failures", St.WriteFailures.load());
    W.field("persisted_entries", S.persistedEntries());
    W.endObject();
    std::fprintf(stdout, "%s\n", W.str().c_str());
    std::fflush(stdout);
  }

  return Clean ? 0 : 2;
}
