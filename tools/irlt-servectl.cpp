//===- tools/irlt-servectl.cpp - Client driver for irlt-serve -------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// irlt-servectl: the client side of the irlt-serve wire protocol
/// (docs/SERVE.md), for scripts, tests, and the CI smoke lane.
///
///   irlt-servectl (--socket PATH | --port N) [--timeout-ms N] CMD ...
///     ping [--retry N]   send {"op":"healthz"}; with --retry, retry the
///                        connect every 50 ms up to N times (startup
///                        races in scripts)
///     stats              send {"op":"statz"} and print the record
///     persist            send {"op":"persist"} and print the record
///     send FILE [--retry-overloaded[=N]]
///                        send every request line of the ndjson FILE as
///                        one frame (pipelined), then print the response
///                        records to stdout in order - the same stream
///                        irlt-batch FILE would print. With
///                        --retry-overloaded, responses rejected with a
///                        retryable kind ("overloaded", "shard_down",
///                        "draining") are retried up to N times (default
///                        8) with capped, deterministically jittered
///                        backoff; the printed stream keeps request
///                        order, so an explicit-id corpus retried
///                        against irlt-front converges to the exact
///                        bytes of an uncontended run
///     fault KIND         send one deliberately broken interaction and
///                        report how the server handled it; KIND is one
///                        of truncated-frame, lying-length,
///                        garbage-frame, oversized-frame, slow-client
///
/// Exit status: 0 success (for fault: the server answered with a
/// structured reject or closed cleanly - no hang), 2 error responses or
/// a misbehaving server (hang/timeout), 1 tool/usage errors.
///
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "serve/Client.h"
#include "support/Json.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

using namespace irlt;
using namespace irlt::serve;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--socket PATH | --port N) [--timeout-ms N] CMD ...\n"
      "  ping [--retry N] | stats | persist\n"
      "  send FILE [--retry-overloaded[=N]] | fault KIND\n"
      "fault kinds: truncated-frame lying-length garbage-frame "
      "oversized-frame slow-client\n"
      "exit status: 0 success, 2 error responses / server misbehavior, "
      "1 tool error\n",
      Argv0);
}

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    uint64_t D = static_cast<uint64_t>(C - '0');
    if (V > (UINT64_MAX - D) / 10)
      return false;
    V = V * 10 + D;
  }
  Out = V;
  return true;
}

struct Target {
  std::string SocketPath;
  int Port = -1;
  uint64_t TimeoutMs = 5000;

  ErrorOr<ClientConn> connect() const {
    return SocketPath.empty() ? connectTcp(Port) : connectUnix(SocketPath);
  }
};

/// True when \p Record parses and carries "ok": true.
bool recordOk(const std::string &Record) {
  ErrorOr<json::JsonValue> Doc = json::JsonValue::parse(Record);
  return Doc && Doc->isObject() && Doc->boolOr("ok", false);
}

/// True when \p Record is a structured reject whose error kind marks a
/// transient server-side condition ("overloaded" shed, "shard_down"
/// worker crash, "draining" shutdown) rather than a verdict on the
/// request itself. Only these are safe to retry: the request was never
/// processed, so resending it cannot double-apply anything.
bool recordRetryable(const std::string &Record) {
  ErrorOr<json::JsonValue> Doc = json::JsonValue::parse(Record);
  if (!Doc || !Doc->isObject() || Doc->boolOr("ok", false))
    return false;
  const json::JsonValue *Err = Doc->find("error");
  if (!Err || !Err->isObject())
    return false;
  std::string Kind = Err->stringOr("kind", "");
  return Kind == engine::errkind::Overloaded ||
         Kind == engine::errkind::ShardDown ||
         Kind == engine::errkind::Draining;
}

/// Backoff before retry \p Attempt (1-based) of request line \p Index:
/// capped exponential plus a deterministic per-(line, attempt) jitter so
/// concurrent clients de-correlate without the tool losing replayable
/// behavior (no wall-clock or PRNG state).
uint64_t retryBackoffMillis(uint64_t Index, uint64_t Attempt) {
  uint64_t Shift = Attempt > 6 ? 6 : Attempt - 1;
  uint64_t Base = 25ull << Shift;
  if (Base > 1000)
    Base = 1000;
  uint64_t Jitter = (Index * 2654435761ull + Attempt * 40503ull) % 25;
  return Base + Jitter;
}

int runOp(const Target &T, const std::string &Op, uint64_t Retries) {
  ErrorOr<ClientConn> C = Failure(Diag::error("unconnected"));
  for (uint64_t Attempt = 0;; ++Attempt) {
    C = T.connect();
    if (C || Attempt >= Retries)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (!C) {
    std::fprintf(stderr, "error: %s\n", C.message().c_str());
    return 2;
  }
  if (!C->sendFrame("{\"op\":\"" + Op + "\"}")) {
    std::fprintf(stderr, "error: send failed\n");
    return 2;
  }
  ErrorOr<std::string> Resp = C->recvFrame(T.TimeoutMs);
  if (!Resp) {
    std::fprintf(stderr, "error: %s\n", Resp.message().c_str());
    return 2;
  }
  std::fprintf(stdout, "%s\n", Resp->c_str());
  return recordOk(*Resp) ? 0 : 2;
}

/// Re-send one request line on a fresh connection, up to \p MaxRetries
/// attempts, while the response stays a retryable reject. Returns the
/// final response (the last reject when retries are exhausted), or
/// failure when the server becomes unreachable and stays so.
ErrorOr<std::string> retryLine(const Target &T, const std::string &Line,
                               uint64_t Index, uint64_t MaxRetries,
                               std::string Current) {
  for (uint64_t Attempt = 1; Attempt <= MaxRetries; ++Attempt) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(retryBackoffMillis(Index, Attempt)));
    // A fresh connection per attempt: the transient kinds all describe
    // states (shed window, dead shard, drain) that a later connection
    // may not hit, and the original pipelined connection has already
    // half-closed its write side.
    ErrorOr<ClientConn> C = T.connect();
    if (!C) {
      if (Attempt == MaxRetries)
        return Failure(Diag::error("retry connect: " + C.message()));
      continue; // server restarting; back off and try again
    }
    if (!C->sendFrame(Line)) {
      if (Attempt == MaxRetries)
        return Failure(Diag::error("retry send failed"));
      continue;
    }
    ErrorOr<std::string> Resp = C->recvFrame(T.TimeoutMs);
    if (!Resp) {
      if (Attempt == MaxRetries)
        return Failure(Diag::error("retry recv: " + Resp.message()));
      continue;
    }
    Current = *Resp;
    if (!recordRetryable(Current))
      break; // a definitive answer (ok or a non-transient error)
  }
  return Current;
}

int runSend(const Target &T, const std::string &Path, uint64_t MaxRetries) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "error: cannot read '%s'\n", Path.c_str());
    return 1;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  std::vector<std::string> Lines = engine::splitLines(SS.str());

  ErrorOr<ClientConn> C = T.connect();
  if (!C) {
    std::fprintf(stderr, "error: %s\n", C.message().c_str());
    return 2;
  }
  std::vector<const std::string *> Reqs;
  for (const std::string &Line : Lines) {
    if (Line.empty())
      continue;
    if (!C->sendFrame(Line)) {
      std::fprintf(stderr, "error: send failed after %llu requests\n",
                   static_cast<unsigned long long>(Reqs.size()));
      return 2;
    }
    Reqs.push_back(&Line);
  }
  C->finishWrites();

  // Buffer the pipelined responses so retried lines can be patched in
  // place: the printed stream keeps request order regardless of how
  // many attempts any one line needed.
  std::vector<std::string> Resps;
  Resps.reserve(Reqs.size());
  for (uint64_t I = 0; I < Reqs.size(); ++I) {
    ErrorOr<std::string> Resp = C->recvFrame(T.TimeoutMs);
    if (!Resp) {
      std::fprintf(stderr, "error: response %llu/%llu: %s\n",
                   static_cast<unsigned long long>(I + 1),
                   static_cast<unsigned long long>(Reqs.size()),
                   Resp.message().c_str());
      return 2;
    }
    Resps.push_back(std::move(*Resp));
  }

  if (MaxRetries > 0) {
    for (uint64_t I = 0; I < Resps.size(); ++I) {
      if (!recordRetryable(Resps[I]))
        continue;
      ErrorOr<std::string> Final =
          retryLine(T, *Reqs[I], I, MaxRetries, Resps[I]);
      if (!Final) {
        std::fprintf(stderr, "error: line %llu: %s\n",
                     static_cast<unsigned long long>(I + 1),
                     Final.message().c_str());
        return 2;
      }
      Resps[I] = std::move(*Final);
    }
  }

  bool AnyError = false;
  for (const std::string &R : Resps) {
    std::fprintf(stdout, "%s\n", R.c_str());
    if (!recordOk(R))
      AnyError = true;
  }
  return AnyError ? 2 : 0;
}

int runFault(const Target &T, const std::string &Kind) {
  ErrorOr<ClientConn> C = T.connect();
  if (!C) {
    std::fprintf(stderr, "error: %s\n", C.message().c_str());
    return 2;
  }

  if (Kind == "slow-client") {
    // A valid request trickled one byte at a time: the server must
    // tolerate slow *requests* (its timeout guards writes) and answer.
    if (!C->sendFrame("{\"op\":\"healthz\"}", /*StallMillis=*/2)) {
      std::fprintf(stderr, "error: send failed\n");
      return 2;
    }
    ErrorOr<std::string> Resp = C->recvFrame(T.TimeoutMs);
    if (!Resp) {
      std::fprintf(stderr, "error: %s\n", Resp.message().c_str());
      return 2;
    }
    std::fprintf(stdout, "%s\n", Resp->c_str());
    return recordOk(*Resp) ? 0 : 2;
  }

  if (Kind == "truncated-frame") {
    // Declare 64 payload bytes, send 5, half-close.
    std::string Frame = encodeFrame(std::string(64, 'x'));
    C->sendRaw(Frame.substr(0, FrameHeaderBytes + 5));
    C->finishWrites();
  } else if (Kind == "lying-length") {
    // A bare header declaring a payload that never arrives.
    std::string Frame = encodeFrame(std::string(100, 'y'));
    C->sendRaw(Frame.substr(0, FrameHeaderBytes));
    C->finishWrites();
  } else if (Kind == "garbage-frame") {
    C->sendRaw("this is not a frame at all\n");
    C->finishWrites();
  } else if (Kind == "oversized-frame") {
    // Header declaring a 4 GiB-1 payload; the server must reject it
    // from the length field alone, before any payload is buffered.
    std::string Hdr(FrameMagic, sizeof(FrameMagic));
    for (int I = 0; I < 4; ++I)
      Hdr.push_back(static_cast<char>(0xff));
    C->sendRaw(Hdr);
    C->finishWrites();
  } else {
    std::fprintf(stderr, "error: unknown fault kind '%s'\n", Kind.c_str());
    return 1;
  }

  // The server behaved if it answers with a structured reject (printed)
  // or closes the connection; only a hang (timeout) is a failure.
  ErrorOr<std::string> Resp = C->recvFrame(T.TimeoutMs);
  if (Resp) {
    std::fprintf(stdout, "%s\n", Resp->c_str());
    return 0;
  }
  if (Resp.message().find("timed out") != std::string::npos) {
    std::fprintf(stderr, "error: server did not respond to fault '%s'\n",
                 Kind.c_str());
    return 2;
  }
  std::fprintf(stdout, "connection closed (%s)\n", Resp.message().c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  Target T;
  int I = 1;
  for (; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--socket") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: --socket needs an argument\n");
        return 1;
      }
      T.SocketPath = argv[++I];
    } else if (A == "--port") {
      uint64_t N = 0;
      if (I + 1 >= argc || !parseU64(argv[++I], N) || N > 65535) {
        std::fprintf(stderr, "error: --port expects 0..65535\n");
        return 1;
      }
      T.Port = static_cast<int>(N);
    } else if (A == "--timeout-ms") {
      uint64_t N = 0;
      if (I + 1 >= argc || !parseU64(argv[++I], N)) {
        std::fprintf(stderr, "error: --timeout-ms expects an integer\n");
        return 1;
      }
      T.TimeoutMs = N;
    } else if (A == "--help" || A == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      break; // the subcommand
    }
  }
  if (T.SocketPath.empty() && T.Port < 0) {
    std::fprintf(stderr, "error: need --socket PATH or --port N\n");
    usage(argv[0]);
    return 1;
  }
  if (I >= argc) {
    std::fprintf(stderr, "error: missing command\n");
    usage(argv[0]);
    return 1;
  }

  std::string Cmd = argv[I++];
  if (Cmd == "ping") {
    uint64_t Retries = 0;
    if (I < argc && std::string(argv[I]) == "--retry") {
      if (I + 1 >= argc || !parseU64(argv[I + 1], Retries)) {
        std::fprintf(stderr, "error: --retry expects an integer\n");
        return 1;
      }
      I += 2;
    }
    return runOp(T, "healthz", Retries);
  }
  if (Cmd == "stats")
    return runOp(T, "statz", 0);
  if (Cmd == "persist")
    return runOp(T, "persist", 0);
  if (Cmd == "send") {
    std::string File;
    uint64_t MaxRetries = 0;
    for (; I < argc; ++I) {
      std::string A = argv[I];
      if (A == "--retry-overloaded") {
        MaxRetries = 8;
      } else if (A.rfind("--retry-overloaded=", 0) == 0) {
        if (!parseU64(A.substr(19), MaxRetries)) {
          std::fprintf(stderr,
                       "error: --retry-overloaded expects an integer\n");
          return 1;
        }
      } else if (File.empty()) {
        File = A;
      } else {
        std::fprintf(stderr, "error: unexpected argument '%s'\n", A.c_str());
        return 1;
      }
    }
    if (File.empty()) {
      std::fprintf(stderr, "error: send needs a FILE\n");
      return 1;
    }
    return runSend(T, File, MaxRetries);
  }
  if (Cmd == "fault") {
    if (I >= argc) {
      std::fprintf(stderr, "error: fault needs a KIND\n");
      return 1;
    }
    return runFault(T, argv[I]);
  }
  std::fprintf(stderr, "error: unknown command '%s'\n", Cmd.c_str());
  usage(argv[0]);
  return 1;
}
