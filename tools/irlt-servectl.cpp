//===- tools/irlt-servectl.cpp - Client driver for irlt-serve -------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// irlt-servectl: the client side of the irlt-serve wire protocol
/// (docs/SERVE.md), for scripts, tests, and the CI smoke lane.
///
///   irlt-servectl (--socket PATH | --port N) [--timeout-ms N] CMD ...
///     ping [--retry N]   send {"op":"healthz"}; with --retry, retry the
///                        connect every 50 ms up to N times (startup
///                        races in scripts)
///     stats              send {"op":"statz"} and print the record
///     persist            send {"op":"persist"} and print the record
///     send FILE          send every request line of the ndjson FILE as
///                        one frame (pipelined), then print the response
///                        records to stdout in order - the same stream
///                        irlt-batch FILE would print
///     fault KIND         send one deliberately broken interaction and
///                        report how the server handled it; KIND is one
///                        of truncated-frame, lying-length,
///                        garbage-frame, oversized-frame, slow-client
///
/// Exit status: 0 success (for fault: the server answered with a
/// structured reject or closed cleanly - no hang), 2 error responses or
/// a misbehaving server (hang/timeout), 1 tool/usage errors.
///
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "serve/Client.h"
#include "support/Json.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

using namespace irlt;
using namespace irlt::serve;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--socket PATH | --port N) [--timeout-ms N] CMD ...\n"
      "  ping [--retry N] | stats | persist | send FILE | fault KIND\n"
      "fault kinds: truncated-frame lying-length garbage-frame "
      "oversized-frame slow-client\n"
      "exit status: 0 success, 2 error responses / server misbehavior, "
      "1 tool error\n",
      Argv0);
}

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    uint64_t D = static_cast<uint64_t>(C - '0');
    if (V > (UINT64_MAX - D) / 10)
      return false;
    V = V * 10 + D;
  }
  Out = V;
  return true;
}

struct Target {
  std::string SocketPath;
  int Port = -1;
  uint64_t TimeoutMs = 5000;

  ErrorOr<ClientConn> connect() const {
    return SocketPath.empty() ? connectTcp(Port) : connectUnix(SocketPath);
  }
};

/// True when \p Record parses and carries "ok": true.
bool recordOk(const std::string &Record) {
  ErrorOr<json::JsonValue> Doc = json::JsonValue::parse(Record);
  return Doc && Doc->isObject() && Doc->boolOr("ok", false);
}

int runOp(const Target &T, const std::string &Op, uint64_t Retries) {
  ErrorOr<ClientConn> C = Failure(Diag::error("unconnected"));
  for (uint64_t Attempt = 0;; ++Attempt) {
    C = T.connect();
    if (C || Attempt >= Retries)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (!C) {
    std::fprintf(stderr, "error: %s\n", C.message().c_str());
    return 2;
  }
  if (!C->sendFrame("{\"op\":\"" + Op + "\"}")) {
    std::fprintf(stderr, "error: send failed\n");
    return 2;
  }
  ErrorOr<std::string> Resp = C->recvFrame(T.TimeoutMs);
  if (!Resp) {
    std::fprintf(stderr, "error: %s\n", Resp.message().c_str());
    return 2;
  }
  std::fprintf(stdout, "%s\n", Resp->c_str());
  return recordOk(*Resp) ? 0 : 2;
}

int runSend(const Target &T, const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "error: cannot read '%s'\n", Path.c_str());
    return 1;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  std::vector<std::string> Lines = engine::splitLines(SS.str());

  ErrorOr<ClientConn> C = T.connect();
  if (!C) {
    std::fprintf(stderr, "error: %s\n", C.message().c_str());
    return 2;
  }
  uint64_t Sent = 0;
  for (const std::string &Line : Lines) {
    if (Line.empty())
      continue;
    if (!C->sendFrame(Line)) {
      std::fprintf(stderr, "error: send failed after %llu requests\n",
                   static_cast<unsigned long long>(Sent));
      return 2;
    }
    ++Sent;
  }
  C->finishWrites();

  bool AnyError = false;
  for (uint64_t I = 0; I < Sent; ++I) {
    ErrorOr<std::string> Resp = C->recvFrame(T.TimeoutMs);
    if (!Resp) {
      std::fprintf(stderr, "error: response %llu/%llu: %s\n",
                   static_cast<unsigned long long>(I + 1),
                   static_cast<unsigned long long>(Sent),
                   Resp.message().c_str());
      return 2;
    }
    std::fprintf(stdout, "%s\n", Resp->c_str());
    if (!recordOk(*Resp))
      AnyError = true;
  }
  return AnyError ? 2 : 0;
}

int runFault(const Target &T, const std::string &Kind) {
  ErrorOr<ClientConn> C = T.connect();
  if (!C) {
    std::fprintf(stderr, "error: %s\n", C.message().c_str());
    return 2;
  }

  if (Kind == "slow-client") {
    // A valid request trickled one byte at a time: the server must
    // tolerate slow *requests* (its timeout guards writes) and answer.
    if (!C->sendFrame("{\"op\":\"healthz\"}", /*StallMillis=*/2)) {
      std::fprintf(stderr, "error: send failed\n");
      return 2;
    }
    ErrorOr<std::string> Resp = C->recvFrame(T.TimeoutMs);
    if (!Resp) {
      std::fprintf(stderr, "error: %s\n", Resp.message().c_str());
      return 2;
    }
    std::fprintf(stdout, "%s\n", Resp->c_str());
    return recordOk(*Resp) ? 0 : 2;
  }

  if (Kind == "truncated-frame") {
    // Declare 64 payload bytes, send 5, half-close.
    std::string Frame = encodeFrame(std::string(64, 'x'));
    C->sendRaw(Frame.substr(0, FrameHeaderBytes + 5));
    C->finishWrites();
  } else if (Kind == "lying-length") {
    // A bare header declaring a payload that never arrives.
    std::string Frame = encodeFrame(std::string(100, 'y'));
    C->sendRaw(Frame.substr(0, FrameHeaderBytes));
    C->finishWrites();
  } else if (Kind == "garbage-frame") {
    C->sendRaw("this is not a frame at all\n");
    C->finishWrites();
  } else if (Kind == "oversized-frame") {
    // Header declaring a 4 GiB-1 payload; the server must reject it
    // from the length field alone, before any payload is buffered.
    std::string Hdr(FrameMagic, sizeof(FrameMagic));
    for (int I = 0; I < 4; ++I)
      Hdr.push_back(static_cast<char>(0xff));
    C->sendRaw(Hdr);
    C->finishWrites();
  } else {
    std::fprintf(stderr, "error: unknown fault kind '%s'\n", Kind.c_str());
    return 1;
  }

  // The server behaved if it answers with a structured reject (printed)
  // or closes the connection; only a hang (timeout) is a failure.
  ErrorOr<std::string> Resp = C->recvFrame(T.TimeoutMs);
  if (Resp) {
    std::fprintf(stdout, "%s\n", Resp->c_str());
    return 0;
  }
  if (Resp.message().find("timed out") != std::string::npos) {
    std::fprintf(stderr, "error: server did not respond to fault '%s'\n",
                 Kind.c_str());
    return 2;
  }
  std::fprintf(stdout, "connection closed (%s)\n", Resp.message().c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  Target T;
  int I = 1;
  for (; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--socket") {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "error: --socket needs an argument\n");
        return 1;
      }
      T.SocketPath = argv[++I];
    } else if (A == "--port") {
      uint64_t N = 0;
      if (I + 1 >= argc || !parseU64(argv[++I], N) || N > 65535) {
        std::fprintf(stderr, "error: --port expects 0..65535\n");
        return 1;
      }
      T.Port = static_cast<int>(N);
    } else if (A == "--timeout-ms") {
      uint64_t N = 0;
      if (I + 1 >= argc || !parseU64(argv[++I], N)) {
        std::fprintf(stderr, "error: --timeout-ms expects an integer\n");
        return 1;
      }
      T.TimeoutMs = N;
    } else if (A == "--help" || A == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      break; // the subcommand
    }
  }
  if (T.SocketPath.empty() && T.Port < 0) {
    std::fprintf(stderr, "error: need --socket PATH or --port N\n");
    usage(argv[0]);
    return 1;
  }
  if (I >= argc) {
    std::fprintf(stderr, "error: missing command\n");
    usage(argv[0]);
    return 1;
  }

  std::string Cmd = argv[I++];
  if (Cmd == "ping") {
    uint64_t Retries = 0;
    if (I < argc && std::string(argv[I]) == "--retry") {
      if (I + 1 >= argc || !parseU64(argv[I + 1], Retries)) {
        std::fprintf(stderr, "error: --retry expects an integer\n");
        return 1;
      }
      I += 2;
    }
    return runOp(T, "healthz", Retries);
  }
  if (Cmd == "stats")
    return runOp(T, "statz", 0);
  if (Cmd == "persist")
    return runOp(T, "persist", 0);
  if (Cmd == "send") {
    if (I >= argc) {
      std::fprintf(stderr, "error: send needs a FILE\n");
      return 1;
    }
    return runSend(T, argv[I]);
  }
  if (Cmd == "fault") {
    if (I >= argc) {
      std::fprintf(stderr, "error: fault needs a KIND\n");
      return 1;
    }
    return runFault(T, argv[I]);
  }
  std::fprintf(stderr, "error: unknown command '%s'\n", Cmd.c_str());
  usage(argv[0]);
  return 1;
}
